//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the slice of criterion's API the workspace's
//! benches use: [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology: each benchmark is warmed up, then an iteration count is
//! calibrated so one sample takes a few milliseconds, and `sample_size`
//! samples are measured. The median and mean nanoseconds per iteration
//! are printed in a `name ... median X ns/iter (mean Y, N samples)`
//! line — stable enough for before/after comparisons, with the median
//! robust to scheduler noise. A benchmark-name filter may be passed on
//! the command line, as with real criterion.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup (kept for API compatibility; the
/// stand-in times every routine call individually, excluding setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
    measure_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip flags (`--bench`, `--quiet`, ...) cargo forwards; the first
        // bare argument is a substring filter on benchmark names.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            default_sample_size: 20,
            measure_target: Duration::from_millis(4),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one(&mut self, name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            measure_target: self.measure_target,
            samples_ns_per_iter: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        let sample_size = self.sample_size.unwrap_or(self.harness.default_sample_size);
        self.harness.run_one(&full, sample_size, f);
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    measure_target: Duration,
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `routine` (its return value is black-boxed).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up and calibrate: how many iterations fill measure_target?
        let t0 = Instant::now();
        std_black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (self.measure_target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..(per_sample / 4).max(1) {
            std_black_box(routine());
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std_black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / per_sample as f64;
            self.samples_ns_per_iter.push(ns);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        std_black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.samples_ns_per_iter
                .push(t0.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns_per_iter.is_empty() {
            println!("{name:<56} (no samples)");
            return;
        }
        self.samples_ns_per_iter.sort_by(|a, b| a.total_cmp(b));
        let n = self.samples_ns_per_iter.len();
        let median = self.samples_ns_per_iter[n / 2];
        let mean = self.samples_ns_per_iter.iter().sum::<f64>() / n as f64;
        println!("{name:<56} median {median:>14.1} ns/iter (mean {mean:>14.1}, {n} samples)");
    }
}

/// Collects benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut b = Bencher {
            sample_size: 5,
            measure_target: Duration::from_micros(50),
            samples_ns_per_iter: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples_ns_per_iter.len(), 5);
        assert!(b.samples_ns_per_iter.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn iter_batched_records_samples() {
        let mut b = Bencher {
            sample_size: 4,
            measure_target: Duration::from_micros(50),
            samples_ns_per_iter: Vec::new(),
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples_ns_per_iter.len(), 4);
    }
}
