//! Offline stand-in for a rayon-style work-stealing threadpool.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the slice of a data-parallel API the workspace needs:
//! scoped, blocking parallel iteration over *index ranges*
//! ([`ThreadPool::map_index`] / [`ThreadPool::for_each_index`]) plus a
//! two-way [`ThreadPool::join`]. Workers are persistent OS threads; an
//! operation splits `0..n` into one contiguous sub-range per participant
//! and idle participants *steal the upper half* of the largest remaining
//! range (classic range stealing, the shape rayon's parallel-for
//! ultimately compiles to). Contiguous ranges keep scans cache-friendly;
//! stealing rebalances skewed work.
//!
//! Design constraints that matter to callers:
//!
//! * **Scoped**: `map_index` does not return until every index has run
//!   *and* every worker has detached from the operation, so the closure
//!   may borrow from the caller's stack (the pool erases the lifetime
//!   internally and the barrier makes it sound).
//! * **Deterministic result order**: results are placed by index, so the
//!   output `Vec` is independent of which worker ran which index — the
//!   property the engine's fixed-order aggregate merges rely on.
//! * **Caller participates**: the calling thread claims indices too, so
//!   an operation makes progress even on a pool with zero workers, and
//!   `parallelism = 1` runs strictly inline (no cross-thread handoff).
//! * **Panic propagation**: a panicking closure does not poison the pool;
//!   the first payload is captured and re-thrown on the caller after the
//!   operation drains.
//!
//! One operation runs at a time; a second caller falls back to inline
//! execution rather than queueing (cache scans are coarse enough that
//! this keeps the pool simple without a scheduler).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Number of worker threads (plus the caller) the machine supports.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1)
}

/// A type-erased view of one running operation.
struct Op {
    /// Runs one index. Points at a stack closure owned by the blocked
    /// caller; valid until `borrowers` drops to zero.
    run: *const (dyn Fn(usize) + Sync),
    /// Per-participant index ranges (`[lo, hi)`); slot 0 is the caller.
    ranges: Vec<Mutex<(usize, usize)>>,
    /// Next unclaimed participant slot. The caller owns slot 0; each
    /// worker claims a *distinct* slot from here, and workers that find
    /// every slot taken do not join — this is what enforces the
    /// requested parallelism and guarantees no two participants ever
    /// treat the same range as their own (range writes in `steal_half`
    /// assume a unique owner per slot).
    next_slot: AtomicUsize,
    /// Indices not yet completed.
    remaining: AtomicUsize,
    /// Participants (workers + caller) still touching this op.
    borrowers: AtomicUsize,
    /// First panic payload thrown by `run`.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    panicked: AtomicBool,
}

// The raw closure pointer is only dereferenced while the owning caller is
// blocked in `map_index`, which waits for `borrowers == 0` before
// returning; sharing it across worker threads is then sound.
unsafe impl Send for Op {}
unsafe impl Sync for Op {}

struct Shared {
    /// The currently published operation, if any.
    op: Mutex<Option<Arc<Op>>>,
    /// Signals workers that an op was published or shutdown requested.
    work_cv: Condvar,
    /// Signals the caller that op state changed (completion / detach).
    done: Mutex<()>,
    done_cv: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size pool of persistent worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with `workers` persistent worker threads. The *effective*
    /// parallelism of an operation is `workers + 1` (the caller helps);
    /// `ThreadPool::new(0)` is a valid, purely-inline pool.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            op: Mutex::new(None),
            work_cv: Condvar::new(),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("workpool-{slot}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn workpool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// The process-wide pool. Sized to `available_parallelism() - 1`
    /// workers (a full-width operation uses every core once, counting
    /// the caller), with a floor of 7 so an explicit parallelism request
    /// up to 8 exercises real cross-thread execution even on small
    /// machines — parked workers just wait on a condvar.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(available_parallelism().saturating_sub(1).max(7)))
    }

    /// Worker threads in this pool (effective max parallelism is one
    /// more: the caller participates).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(i)` for every `i in 0..n` with at most `parallelism`
    /// concurrent participants (caller included), returning the results
    /// in index order. Blocks until every index completed; re-throws the
    /// first panic after the operation drains.
    pub fn map_index<T, F>(&self, n: usize, parallelism: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut results: Vec<Mutex<Option<T>>> = Vec::with_capacity(n);
        results.resize_with(n, || Mutex::new(None));
        let run = |i: usize| {
            let value = f(i);
            *results[i].lock().unwrap() = Some(value);
        };
        self.run_op(n, parallelism, &run);
        results
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("index completed"))
            .collect()
    }

    /// [`ThreadPool::map_index`] without collecting results.
    pub fn for_each_index<F>(&self, n: usize, parallelism: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_op(n, parallelism, &f);
    }

    /// Runs `a` and `b`, potentially in parallel, returning both results.
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
    {
        let mut slot_a: Option<RA> = None;
        let mut slot_b: Option<RB> = None;
        {
            let cell_a = Mutex::new(Some(a));
            let cell_b = Mutex::new(Some(b));
            let out_a = Mutex::new(&mut slot_a);
            let out_b = Mutex::new(&mut slot_b);
            self.for_each_index(2, 2, |i| {
                if i == 0 {
                    if let Some(f) = cell_a.lock().unwrap().take() {
                        **out_a.lock().unwrap() = Some(f());
                    }
                } else if let Some(f) = cell_b.lock().unwrap().take() {
                    **out_b.lock().unwrap() = Some(f());
                }
            });
        }
        (
            slot_a.expect("join arm a ran"),
            slot_b.expect("join arm b ran"),
        )
    }

    /// Publishes an op, participates as slot 0, waits for full drain.
    fn run_op(&self, n: usize, parallelism: usize, run: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        let parallelism = parallelism.clamp(1, self.workers.len() + 1);
        if parallelism == 1 || n == 1 {
            for i in 0..n {
                run(i);
            }
            return;
        }
        let slots = parallelism.min(n);
        // Erase the stack lifetime; soundness argument on `impl Send`.
        #[allow(clippy::missing_transmute_annotations)]
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(run as *const (dyn Fn(usize) + Sync)) };
        let op = Arc::new(Op {
            run: erased,
            ranges: split_ranges(n, slots),
            next_slot: AtomicUsize::new(1), // slot 0 is the caller's
            remaining: AtomicUsize::new(n),
            borrowers: AtomicUsize::new(1), // the caller
            panic: Mutex::new(None),
            panicked: AtomicBool::new(false),
        });
        {
            let mut published = self.shared.op.lock().unwrap();
            if published.is_some() {
                // Another op is in flight (concurrent caller): run inline.
                drop(published);
                op.borrowers.store(0, Ordering::Release);
                for i in 0..n {
                    run(i);
                }
                return;
            }
            *published = Some(Arc::clone(&op));
        }
        self.shared.work_cv.notify_all();
        // Participate from slot 0.
        claim_loop(&op, 0);
        // Unpublish BEFORE waiting: registration happens under the same
        // lock, so after this no new worker can borrow the op, and the
        // wait below sees a monotonically decreasing borrower count.
        {
            *self.shared.op.lock().unwrap() = None;
        }
        self.shared.work_cv.notify_all();
        if op.borrowers.fetch_sub(1, Ordering::AcqRel) != 1 {
            let mut guard = self.shared.done.lock().unwrap();
            while op.borrowers.load(Ordering::Acquire) != 0 {
                guard = self.shared.done_cv.wait(guard).unwrap();
            }
        }
        if op.panicked.load(Ordering::Acquire) {
            if let Some(payload) = op.panic.lock().unwrap().take() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Even split of `0..n` into `slots` contiguous ranges.
fn split_ranges(n: usize, slots: usize) -> Vec<Mutex<(usize, usize)>> {
    let base = n / slots;
    let extra = n % slots;
    let mut lo = 0usize;
    (0..slots)
        .map(|s| {
            let len = base + usize::from(s < extra);
            let range = (lo, lo + len);
            lo += len;
            Mutex::new(range)
        })
        .collect()
}

fn worker_loop(shared: &Shared) {
    loop {
        let op = {
            let mut guard = shared.op.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match guard.as_ref() {
                    // Register as a borrower while the publish lock is
                    // held, so the caller cannot observe zero borrowers
                    // and free the closure while we are about to run it.
                    Some(op) => {
                        op.borrowers.fetch_add(1, Ordering::AcqRel);
                        break Arc::clone(op);
                    }
                    None => guard = shared.work_cv.wait(guard).unwrap(),
                }
            }
        };
        // Claim a distinct participant slot; when every slot is taken
        // the op already has its requested parallelism and this worker
        // sits the round out (it still must deregister below).
        let slot = op.next_slot.fetch_add(1, Ordering::AcqRel);
        if slot < op.ranges.len() {
            claim_loop(&op, slot);
        }
        let last = op.borrowers.fetch_sub(1, Ordering::AcqRel) == 1;
        if last || op.remaining.load(Ordering::Acquire) == 0 {
            let _guard = shared.done.lock().unwrap();
            shared.done_cv.notify_all();
        }
        // Don't spin on the same drained op: wait until it is unpublished.
        let mut guard = shared.op.lock().unwrap();
        while !shared.shutdown.load(Ordering::Acquire) {
            match guard.as_ref() {
                Some(current) if Arc::ptr_eq(current, &op) => {
                    guard = shared.work_cv.wait(guard).unwrap();
                }
                _ => break,
            }
        }
    }
}

/// Claims indices for participant `slot`: drain the own range, then steal
/// the upper half of the largest remaining range until all ranges are dry.
fn claim_loop(op: &Op, slot: usize) {
    // SAFETY: the publishing caller blocks until `borrowers == 0`, and we
    // are registered as a borrower for the duration of this loop.
    let run = unsafe { &*op.run };
    loop {
        // Pop from the participant's own range.
        let next = {
            let mut range = op.ranges[slot].lock().unwrap();
            if range.0 < range.1 {
                let i = range.0;
                range.0 += 1;
                Some(i)
            } else {
                None
            }
        };
        let index = match next {
            Some(i) => i,
            None => {
                if op.panicked.load(Ordering::Acquire) {
                    // Abandon remaining work; drain so the caller wakes.
                    drain_all(op);
                    return;
                }
                // Steal the upper half of the largest remaining range.
                match steal_half(op, slot) {
                    Some(i) => i,
                    None => return,
                }
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| run(index)));
        if let Err(payload) = outcome {
            if !op.panicked.swap(true, Ordering::AcqRel) {
                *op.panic.lock().unwrap() = Some(payload);
            }
        }
        op.remaining.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Takes the upper half of the largest other range, moves it into
/// `slot`'s range, and returns its first index.
fn steal_half(op: &Op, slot: usize) -> Option<usize> {
    loop {
        let mut victim: Option<(usize, usize)> = None; // (participant, len)
        for (p, range) in op.ranges.iter().enumerate() {
            if p == slot {
                continue;
            }
            let r = range.lock().unwrap();
            let len = r.1.saturating_sub(r.0);
            if len > 0 && victim.is_none_or(|(_, best)| len > best) {
                victim = Some((p, len));
            }
        }
        let (p, _) = victim?;
        // Re-lock the victim; its range may have shrunk meanwhile.
        let stolen = {
            let mut r = op.ranges[p].lock().unwrap();
            let len = r.1.saturating_sub(r.0);
            if len == 0 {
                continue; // raced to empty; rescan
            }
            let take = len.div_ceil(2);
            let lo = r.1 - take;
            r.1 = lo;
            (lo, lo + take)
        };
        let first = stolen.0;
        let mut own = op.ranges[slot].lock().unwrap();
        *own = (stolen.0 + 1, stolen.1);
        return Some(first);
    }
}

/// Empties every range (post-panic abandonment), accounting for the
/// skipped indices so `remaining` still reaches zero.
fn drain_all(op: &Op) {
    let mut skipped = 0usize;
    for range in &op.ranges {
        let mut r = range.lock().unwrap();
        skipped += r.1.saturating_sub(r.0);
        r.0 = r.1;
    }
    if skipped > 0 {
        op.remaining.fetch_sub(skipped, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_index_covers_every_index_once_in_order() {
        let pool = ThreadPool::new(3);
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let out = pool.map_index(n, 4, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                i * 3
            });
            assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallelism_one_runs_inline_on_the_caller() {
        let pool = ThreadPool::new(2);
        let caller = std::thread::current().id();
        let threads: Vec<std::thread::ThreadId> = pool
            .map_index(16, 1, |_| std::thread::current().id())
            .into_iter()
            .collect();
        assert!(threads.iter().all(|&t| t == caller));
    }

    #[test]
    fn zero_worker_pool_still_completes() {
        let pool = ThreadPool::new(0);
        let sum: u64 = pool.map_index(100, 8, |i| i as u64).into_iter().sum();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn skewed_work_is_stolen_across_participants() {
        // Front-loaded work: without stealing, participant 0 would run
        // ~all the expensive indices while others idle. Assert more than
        // one thread ends up running expensive indices.
        let pool = ThreadPool::new(3);
        let ids = Mutex::new(HashSet::new());
        pool.for_each_index(64, 4, |i| {
            if i < 16 {
                // Expensive prefix.
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                assert_ne!(acc, 1);
                ids.lock().unwrap().insert(std::thread::current().id());
            }
        });
        // On a single-core host the scheduler may still serialize onto
        // one thread; only assert the op completed there.
        let distinct = ids.lock().unwrap().len();
        assert!(distinct >= 1);
    }

    #[test]
    fn parallelism_cap_is_enforced() {
        // More workers than the requested parallelism: only `cap`
        // participants (caller included) may run closures concurrently.
        let pool = ThreadPool::new(7);
        for cap in [1usize, 2, 3] {
            let active = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            pool.for_each_index(48, cap, |_| {
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(300));
                active.fetch_sub(1, Ordering::SeqCst);
            });
            let peak = peak.load(Ordering::SeqCst);
            assert!(peak <= cap, "peak {peak} exceeded requested cap {cap}");
        }
    }

    #[test]
    fn no_indices_lost_with_more_workers_than_slots() {
        // Regression: workers beyond the slot count used to alias the
        // last slot and clobber each other's stolen ranges, silently
        // dropping indices.
        let pool = ThreadPool::new(6);
        let expected: Vec<usize> = (0..37).collect();
        for _ in 0..200 {
            assert_eq!(pool.map_index(37, 2, |i| i), expected);
        }
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(1);
        let (a, b) = pool.join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn panics_propagate_to_the_caller_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_index(32, 3, |i| {
                if i == 17 {
                    panic!("boom {i}");
                }
            });
        }));
        assert!(result.is_err());
        // Pool is still usable afterwards.
        let out = pool.map_index(8, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn results_are_deterministic_across_repeated_runs() {
        let pool = ThreadPool::new(3);
        let reference: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(31)).collect();
        for _ in 0..20 {
            let out = pool.map_index(257, 4, |i| (i as u64).wrapping_mul(31));
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn global_pool_is_shared_and_sized_to_the_machine() {
        let pool = ThreadPool::global();
        assert_eq!(pool.workers(), (available_parallelism() - 1).max(7));
        let sum: usize = pool.map_index(64, usize::MAX, |i| i).into_iter().sum();
        assert_eq!(sum, 2016);
    }

    #[test]
    fn nested_parallel_calls_fall_back_inline() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        pool.for_each_index(4, 3, |_| {
            // Inner op while the outer is in flight: must complete inline.
            pool.for_each_index(8, 3, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 28);
    }
}
