//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) API surface the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`] for
//! `f64`/`bool`, and [`Rng::random_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic across platforms, and far better than the workload
//! generators need. It is **not** cryptographically secure, which is fine
//! for dataset/workload generation and tests.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin, integers uniform).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` half-open, `a..=b` closed).
    /// The sample type is a method generic — as in the real `rand` — so
    /// integer literals infer their type from the call site's result use.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a standard distribution for [`Rng::random`].
pub trait Standard: Sized {
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut impl RngCore) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    #[inline]
    fn sample(rng: &mut impl RngCore) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges [`Rng::random_range`] accepts, producing samples of type `T`.
/// Blanket-implemented for `Range<T>` / `RangeInclusive<T>` over every
/// [`SampleUniform`] type — a single generic impl, so type inference can
/// unify the range's literal type with the call site's result type.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

/// Uniform `u64` in `[0, span)` (span > 0) by widening multiply, which
/// avoids the heavy modulo bias of naive `% span` without rejection loops.
#[inline]
fn uniform_below(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(lo: $t, hi: $t, inclusive: bool, rng: &mut impl RngCore) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range in random_range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
                } else {
                    assert!(lo < hi, "empty range in random_range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(lo: f64, hi: f64, _inclusive: bool, rng: &mut impl RngCore) -> f64 {
        assert!(lo < hi, "empty range in random_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 — the same
    /// construction the real `rand` crate's small RNGs use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = rng.random_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            seen_lo |= y == -5;
            seen_hi |= y == 5;
            let f = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must be reachable");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
