//! End-to-end tests for the TCP serving layer: wire equivalence against
//! local serial execution, bounded-admission shedding, and graceful
//! shutdown draining in-flight queries.

use recache::data::FaultPlan;
use recache::types::Error;
use recache::QueryRequest;
use recache_server::dataset::{serving_session, serving_workload, CSV_TABLE, JSON_TABLE};
use recache_server::{Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::{mpsc, Arc, Barrier};
use std::time::Duration;

const SF: f64 = 0.0005;
const SEED: u64 = 11;

fn boot(
    config: ServerConfig,
) -> (
    recache_server::ServerHandle,
    SocketAddr,
    Arc<recache::ReCache>,
) {
    let server = Server::bind(config, Arc::new(serving_session(SF, SEED))).expect("bind");
    let addr = server.local_addr();
    let session = server.session();
    (server.spawn(), addr, session)
}

/// N client threads replay a mixed CSV/JSON workload over the wire; every
/// result must equal local serial execution of the same seeded workload.
#[test]
fn concurrent_clients_match_serial_execution() {
    let specs = serving_workload(SF, SEED, 24);
    let serial = serving_session(SF, SEED);
    let expected: Vec<_> = specs
        .iter()
        .map(|s| {
            serial
                .execute(&QueryRequest::spec(s.clone()))
                .unwrap()
                .rows
                .clone()
        })
        .collect();

    let (handle, addr, _) = boot(ServerConfig::default());
    let clients = 3;
    std::thread::scope(|scope| {
        for t in 0..clients {
            let specs = &specs;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (i, spec) in specs.iter().enumerate() {
                    if i % clients != t {
                        continue;
                    }
                    let reply = client
                        .query(&QueryRequest::spec(spec.clone()).tag(format!("q{i}")))
                        .unwrap_or_else(|e| panic!("query {i} failed over the wire: {e}"));
                    assert_eq!(reply.rows, expected[i], "query {i} differs over the wire");
                }
            });
        }
    });

    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    assert!(stats.queries_run >= specs.len() as u64);
    assert!(stats.admission.admitted >= specs.len() as u64);
    assert_eq!(stats.admission.running, 0, "all permits released");
    let histogram_total: u64 = stats.latency_buckets.iter().map(|&(_, c)| c).sum();
    assert!(histogram_total >= specs.len() as u64);

    // Connection lifecycle counters ride the same stats frame: every
    // worker connection plus this one was accepted, the workers' clean
    // disconnects are classified, and a healthy run kills nothing.
    let counter = |name: &str| {
        stats
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("stats frame has no counter {name:?}"))
    };
    assert!(counter("conn_accepted") > clients as u64);
    assert!(counter("conn_active") >= 1, "this stats probe is active");
    for name in [
        "conn_shed_at_accept",
        "conn_idle_reaped",
        "conn_frame_deadline_kills",
        "conn_query_panics",
    ] {
        assert_eq!(counter(name), 0, "{name} must stay zero on a clean run");
    }
    // The workers' disconnects classify as clean EOFs once the server's
    // read loop observes them (bounded wait: the FIN races this probe).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client.stats().expect("stats");
        let closed = stats
            .counters
            .iter()
            .find(|(n, _)| n == "conn_closed_clean")
            .map(|&(_, v)| v)
            .unwrap();
        if closed >= clients as u64 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker disconnects must classify as clean EOFs"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    handle.shutdown().expect("drain");
}

/// A tiny admission gate (1 running, 0 queued) under a slow scan sheds
/// concurrent queries with a typed, transient `Overloaded` error — and
/// the server keeps serving afterwards.
#[test]
fn overload_sheds_with_typed_error_and_server_survives() {
    let (handle, addr, session) = boot(ServerConfig {
        max_running: 1,
        max_queued: 0,
        ..ServerConfig::default()
    });
    // Every raw chunk read on the CSV table stalls 300ms, so the one
    // admitted query holds its permit long enough for the rest of the
    // burst to arrive and shed.
    assert!(session.set_fault_plan(
        CSV_TABLE,
        Some(FaultPlan::new(1).latency(1.0, Duration::from_millis(300)))
    ));

    let burst = 6;
    let barrier = Barrier::new(burst);
    let sql =
        format!("SELECT sum(l_extendedprice), count(*) FROM {CSV_TABLE} WHERE l_quantity >= 1");
    let outcomes: Vec<Result<_, Error>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..burst)
            .map(|_| {
                let barrier = &barrier;
                let sql = &sql;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    client.query(&QueryRequest::sql(sql.clone()))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let oks = outcomes.iter().filter(|o| o.is_ok()).count();
    let sheds = outcomes
        .iter()
        .filter(|o| matches!(o, Err(Error::Overloaded)))
        .count();
    assert!(oks >= 1, "the admitted query must succeed: {outcomes:?}");
    assert!(
        sheds >= 1,
        "a zero-depth queue must shed the burst: {outcomes:?}"
    );
    assert_eq!(
        oks + sheds,
        burst,
        "only Ok or Overloaded expected: {outcomes:?}"
    );
    for outcome in &outcomes {
        if let Err(e) = outcome {
            assert!(
                e.is_transient(),
                "Overloaded must stay transient over the wire"
            );
        }
    }

    // The server is still live: clear the fault and serve another query.
    session.set_fault_plan(CSV_TABLE, None);
    let mut client = Client::connect(addr).expect("reconnect");
    let reply = client
        .query(&QueryRequest::sql(format!(
            "SELECT count(*) FROM {JSON_TABLE}"
        )))
        .expect("server must keep serving after shedding");
    assert!(!reply.rows.is_empty());
    let stats = client.stats().expect("stats");
    assert!(stats.admission.shed >= sheds as u64);
    handle.shutdown().expect("drain");
}

/// A `SHUTDOWN` frame while a slow query is on the wire: the in-flight
/// query still completes with the correct result, and the server thread
/// exits cleanly once it drained.
#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let (handle, addr, session) = boot(ServerConfig::default());
    assert!(session.set_fault_plan(
        CSV_TABLE,
        Some(FaultPlan::new(2).latency(1.0, Duration::from_millis(400)))
    ));

    let slow_sql =
        format!("SELECT sum(l_extendedprice), count(*) FROM {CSV_TABLE} WHERE l_quantity >= 1");
    let expected = serving_session(SF, SEED)
        .execute(&QueryRequest::sql(slow_sql.clone()))
        .unwrap()
        .rows
        .clone();

    let (sent, in_flight) = mpsc::channel();
    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        // Prove the connection is established and serving before the
        // slow query goes out, so the shutdown below races the query's
        // execution, not its connection setup.
        client
            .query(&QueryRequest::sql(format!(
                "SELECT count(*) FROM {JSON_TABLE}"
            )))
            .expect("warm-up query");
        sent.send(()).unwrap();
        client.query(&QueryRequest::sql(slow_sql))
    });

    in_flight.recv().expect("warm-up finished");
    // Give the slow request time to be read and admitted (its scan then
    // stalls on the injected 400ms latency), then pull the plug.
    std::thread::sleep(Duration::from_millis(150));
    let mut shutter = Client::connect(addr).expect("connect shutter");
    shutter.shutdown_server().expect("shutdown acknowledged");
    assert!(handle.is_shutting_down());

    let reply = slow
        .join()
        .unwrap()
        .expect("in-flight query must drain to completion");
    assert_eq!(
        reply.rows, expected,
        "drained query returns the correct result"
    );
    handle.wait().expect("server run loop exits cleanly");
}
