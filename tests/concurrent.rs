//! Concurrent query admission, end to end: multi-session replay
//! equivalence against serial execution, single-flight coalescing of
//! duplicate in-flight scans, seeded-interleaving determinism, and
//! registry race invariants (byte budget, double-eviction, counter
//! reconciliation).
//!
//! The CI `concurrency-stress` job runs this suite under a
//! `{sessions ∈ 2,4} × {threads ∈ 1,4}` matrix via the
//! `RECACHE_SESSIONS` / `RECACHE_THREADS` environment variables.

mod common;

use recache::cache::eviction::Lru;
use recache::cache::registry::{range_signature, CacheRegistry, LeafRange};
use recache::data::gen::tpch;
use recache::data::{csv as data_csv, json as data_json, FileFormat};
use recache::layout::{CacheData, OffsetStore};
use recache::types::Value;
use recache::workload::{
    seeded_turns, spa_workload, split_round_robin, tpch_spj_workload, Domains, PoolPhase,
    SpaConfig, SpjConfig,
};
use recache::{QueryRequest, ReCache, Scheduler, SharedScanConfig};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Shared TPC-H fixture with a default-policy session.
fn tpch_session(sf: f64, seed: u64) -> (ReCache, HashMap<String, Domains>) {
    common::tpch_session(ReCache::builder(), sf, seed)
}

/// Matrix knob: number of concurrent sessions (default 4).
fn sessions_knob() -> usize {
    std::env::var("RECACHE_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4)
}

/// Matrix knob: pool-wide thread budget (default 0 = machine).
fn threads_knob() -> usize {
    std::env::var("RECACHE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// A mixed SPA/SPJ workload: SPA range scans over `lineitem` interleaved
/// with SPJ joins over the TPC-H tables.
fn mixed_spa_spj(
    domains: &HashMap<String, Domains>,
    count: usize,
    seed: u64,
) -> Vec<recache::sql::QuerySpec> {
    let spa = spa_workload(
        "lineitem",
        &domains["lineitem"],
        &[(PoolPhase::AllAttrs, count)],
        &SpaConfig::default(),
        seed,
    );
    let spj = tpch_spj_workload(domains, count, &SpjConfig::default(), seed);
    spa.into_iter()
        .zip(spj)
        .flat_map(|(a, b)| [a, b])
        .take(count)
        .collect()
}

/// Acceptance criterion: a multi-session concurrent replay of the mixed
/// SPA/SPJ workload produces the same per-query results as the same
/// queries run serially on a fresh session.
#[test]
fn concurrent_replay_matches_serial() {
    let sessions = sessions_knob();
    let threads = threads_knob();
    let sf = 0.0004;
    let (serial_session, domains) = tpch_session(sf, 7);
    let specs = mixed_spa_spj(&domains, 32, 7);
    let serial: Vec<Vec<Value>> = specs
        .iter()
        .map(|s| {
            serial_session
                .execute(&QueryRequest::spec(s.clone()))
                .unwrap()
                .rows
                .clone()
        })
        .collect();

    let (shared, _) = tpch_session(sf, 7);
    let streams = split_round_robin(&specs, sessions);
    let scheduler = Scheduler::new(threads);
    let results = scheduler.run_streams(&shared, &streams).unwrap();
    for (i, expected) in serial.iter().enumerate() {
        let got = &results[i % sessions][i / sessions];
        assert_eq!(
            &got.rows, expected,
            "query {i} differs between concurrent ({sessions} sessions, {threads} threads) and serial execution"
        );
    }
    // Every stream's queries ran; the shared cache did real work.
    assert_eq!(shared.queries_run() as usize, specs.len());
    assert!(shared.cache().counters().admissions > 0);
}

/// Acceptance criterion: duplicate in-flight cacheable scans coalesce —
/// the second session waits for the first's admission and reuses it
/// (C-phase cost paid once), leaving exactly one entry for the
/// signature.
#[test]
fn single_flight_coalesces_duplicate_scans() {
    let sessions = sessions_knob();
    let q = "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity >= 10";
    let mut coalesced_seen = false;
    // The overlap window is the leader's whole raw scan (milliseconds);
    // a barrier start makes a miss-while-in-flight all but certain. A few
    // retries absorb scheduler flukes without making the test flaky.
    for _attempt in 0..20 {
        let (session, _) = tpch_session(0.0008, 11);
        let session = &session;
        let expected = {
            let (baseline, _) = tpch_session(0.0008, 11);
            baseline
                .execute(&QueryRequest::sql(q))
                .unwrap()
                .rows
                .clone()
        };
        let barrier = Barrier::new(sessions);
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for _ in 0..sessions {
                scope.spawn(|| {
                    barrier.wait();
                    let result = session.execute(&QueryRequest::sql(q)).unwrap();
                    assert_eq!(result.rows, expected);
                });
            }
        });
        let counters = session.cache().counters();
        let entries = session
            .cache()
            .snapshot()
            .into_iter()
            .filter(|e| e.source == "lineitem")
            .count();
        assert_eq!(
            entries, 1,
            "duplicate admissions must collapse to one entry"
        );
        assert_eq!(counters.admissions, 1, "the C-phase cost is paid once");
        if counters.coalesced >= 1 {
            coalesced_seen = true;
            break;
        }
    }
    assert!(
        coalesced_seen,
        "no run coalesced an admission: followers never overlapped a leader"
    );
}

/// Mixed-format replay: the same SPA workload shape runs over the CSV
/// `lineitem` and over a flat-JSON copy of the same rows, interleaved
/// across concurrent sessions — so the sharded registry and the
/// single-flight table are exercised by both raw formats at once (flat
/// JSON misses now take the batched tokenizer path, CSV misses the
/// batched CSV path). Per-query results must match a serial replay, the
/// CSV and JSON twins must answer identically, and both sources must
/// end up resident in the shared registry.
#[test]
fn mixed_csv_json_replay_matches_serial() {
    let sessions = sessions_knob();
    let threads = threads_knob();
    let seed = 13;
    let (_, lineitems) = tpch::gen_orders_and_lineitems(0.0004, seed);
    let li_schema = tpch::lineitem_schema();
    let li_records: Vec<Value> = lineitems.iter().map(|r| Value::Struct(r.clone())).collect();
    let domains = Domains::compute(&li_schema, li_records.iter());
    let csv_bytes = data_csv::write_csv(&li_schema, &lineitems);
    let json_bytes = data_json::write_json(&li_schema, &li_records);
    let build = || {
        let mut session = ReCache::builder().build();
        session.register_csv_bytes("lineitem", csv_bytes.clone(), li_schema.clone());
        session.register_json_bytes("lineitem_json", json_bytes.clone(), li_schema.clone());
        session
    };
    // Same seed over the same domains: the JSON stream asks the exact
    // queries the CSV stream does, just against the other format.
    let spa = |source: &'static str| {
        spa_workload(
            source,
            &domains,
            &[(PoolPhase::AllAttrs, 16)],
            &SpaConfig::default(),
            seed,
        )
    };
    let specs: Vec<recache::sql::QuerySpec> = spa("lineitem")
        .into_iter()
        .zip(spa("lineitem_json"))
        .flat_map(|(a, b)| [a, b])
        .collect();

    let serial_session = build();
    let serial: Vec<Vec<Value>> = specs
        .iter()
        .map(|s| {
            serial_session
                .execute(&QueryRequest::spec(s.clone()))
                .unwrap()
                .rows
                .clone()
        })
        .collect();
    // The two formats are copies of one table: twin queries must agree.
    for (i, pair) in serial.chunks(2).enumerate() {
        assert_eq!(
            pair[0], pair[1],
            "query {i}: CSV and JSON copies answered differently"
        );
    }

    let shared = build();
    let streams = split_round_robin(&specs, sessions);
    let scheduler = Scheduler::new(threads);
    let results = scheduler.run_streams(&shared, &streams).unwrap();
    for (i, expected) in serial.iter().enumerate() {
        let got = &results[i % sessions][i / sessions];
        assert_eq!(
            &got.rows, expected,
            "query {i} differs between mixed-format concurrent ({sessions} sessions, \
             {threads} threads) and serial execution"
        );
    }
    assert_eq!(shared.queries_run() as usize, specs.len());
    let snapshot = shared.cache().snapshot();
    assert!(
        snapshot.iter().any(|e| e.source == "lineitem"),
        "CSV source must be resident"
    );
    assert!(
        snapshot.iter().any(|e| e.source == "lineitem_json"),
        "JSON source must be resident"
    );

    // Single-flight across the JSON format: duplicate in-flight scans of
    // the same JSON query collapse to one admission (the CSV variant is
    // covered by `single_flight_coalesces_duplicate_scans`).
    let q = "SELECT count(*), sum(l_extendedprice) FROM lineitem_json WHERE l_quantity >= 10";
    let fresh = build();
    let expected = {
        let baseline = build();
        baseline
            .execute(&QueryRequest::sql(q))
            .unwrap()
            .rows
            .clone()
    };
    let barrier = Barrier::new(sessions);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for _ in 0..sessions {
            scope.spawn(|| {
                barrier.wait();
                assert_eq!(fresh.execute(&QueryRequest::sql(q)).unwrap().rows, expected);
            });
        }
    });
    let entries = fresh
        .cache()
        .snapshot()
        .into_iter()
        .filter(|e| e.source == "lineitem_json")
        .count();
    assert_eq!(
        entries, 1,
        "duplicate JSON admissions must collapse to one entry"
    );
    assert_eq!(fresh.cache().counters().admissions, 1);
}

/// Seeded-interleaving determinism: the same seed produces the same
/// admitted-entry set, run over run and across thread budgets.
#[test]
fn seeded_interleaving_same_seed_same_admitted_set() {
    let sessions = sessions_knob();
    let sf = 0.0004;
    let admitted = |seed: u64, threads: usize| -> BTreeSet<(String, String)> {
        let (session, domains) = tpch_session(sf, 5);
        let specs = mixed_spa_spj(&domains, 24, 5);
        let streams = split_round_robin(&specs, sessions);
        let lens: Vec<usize> = streams.iter().map(Vec::len).collect();
        let turns = seeded_turns(&lens, seed);
        let scheduler = Scheduler::new(threads);
        scheduler
            .run_streams_interleaved(&session, &streams, &turns)
            .unwrap();
        session
            .cache()
            .snapshot()
            .into_iter()
            .map(|e| (e.source, e.signature))
            .collect()
    };
    let threads = threads_knob();
    let first = admitted(42, threads);
    assert!(!first.is_empty());
    assert_eq!(
        first,
        admitted(42, threads),
        "same seed must admit the same entry set"
    );
    // The admitted set is a function of the replay order, not of the
    // per-session thread budget.
    assert_eq!(first, admitted(42, 1));
}

/// Subsumption coalescing: a follower whose predicate is *contained* in
/// a different in-flight query's admitted range waits for that leader
/// and filters its answer from the leader's cache entry — one raw pass
/// serves the whole subsumed group. Shared scans are disabled here to
/// isolate the in-flight range-registration mechanism.
#[test]
fn subsumed_inflight_scans_reuse_the_leaders_single_raw_pass() {
    let disabled = SharedScanConfig {
        enabled: false,
        ..SharedScanConfig::default()
    };
    let broad = "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity >= 5";
    let narrows = [
        "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity >= 20",
        "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity >= 30",
        "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity >= 40",
    ];
    let k = 1 + narrows.len();
    let expected: Vec<Vec<Value>> = {
        let (baseline, _) = common::tpch_session(
            ReCache::builder().shared_scans(disabled.clone()),
            0.0008,
            11,
        );
        std::iter::once(broad)
            .chain(narrows.iter().copied())
            .map(|q| {
                baseline
                    .execute(&QueryRequest::sql(q))
                    .unwrap()
                    .rows
                    .clone()
            })
            .collect()
    };
    let mut subsumed_seen = false;
    // The subsumption window is the broad leader's raw scan; a barrier
    // start plus a nudge for the narrow queries makes overlap all but
    // certain, and a few retries absorb scheduler flukes.
    for _attempt in 0..20 {
        let (session, _) = common::tpch_session(
            ReCache::builder().shared_scans(disabled.clone()),
            0.0008,
            11,
        );
        let session = &session;
        let expected = &expected;
        let barrier = Barrier::new(k);
        let barrier = &barrier;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                barrier.wait();
                let result = session.execute(&QueryRequest::sql(broad)).unwrap();
                assert_eq!(result.rows, expected[0]);
            });
            for (i, q) in narrows.iter().enumerate() {
                scope.spawn(move || {
                    barrier.wait();
                    // Let the broad leader register its range first.
                    std::thread::sleep(Duration::from_millis(1));
                    let result = session.execute(&QueryRequest::sql(*q)).unwrap();
                    assert_eq!(result.rows, expected[i + 1], "narrow query {i}");
                });
            }
        });
        let counters = session.cache().counters();
        if counters.coalesced_subsumed >= 1 {
            subsumed_seen = true;
            // Every subsumed follower skipped its own raw scan: strictly
            // fewer admissions (= raw passes here) than queries.
            assert!(
                counters.admissions < k as u64,
                "subsumed followers must not re-scan raw: {} admissions for {k} queries",
                counters.admissions
            );
            let snapshot = session.cache().snapshot();
            assert_eq!(
                counters.admissions,
                snapshot.len() as u64 + counters.evictions + counters.removals,
                "counters must reconcile at quiescence"
            );
            break;
        }
    }
    assert!(
        subsumed_seen,
        "no run coalesced a subsumed scan: narrow queries never overlapped the broad leader"
    );
}

/// Shared multi-predicate scans: K concurrently-admitted queries with
/// partially-overlapping (non-subsuming) predicates over one cold source
/// batch into a single raw pass that splits per-query results on the way
/// out — strictly fewer raw passes than K, with every query's answer
/// bit-identical to a serial run.
#[test]
fn shared_scan_batches_overlapping_predicates_into_fewer_raw_passes() {
    let config = SharedScanConfig {
        enabled: true,
        max_participants: 16,
        // Generous window: the rendezvous happens before any scan work,
        // so a barrier start lands every query inside it.
        gather_window: Duration::from_millis(50),
    };
    // Pairwise overlapping ranges, none containing another — subsumption
    // cannot serve these; only the shared pass can.
    let queries = [
        "SELECT count(*), sum(l_extendedprice) FROM lineitem \
         WHERE l_quantity >= 10 AND l_quantity <= 30",
        "SELECT count(*), sum(l_extendedprice) FROM lineitem \
         WHERE l_quantity >= 20 AND l_quantity <= 40",
        "SELECT count(*), sum(l_extendedprice) FROM lineitem \
         WHERE l_quantity >= 30 AND l_quantity <= 50",
        "SELECT count(*), avg(l_discount) FROM lineitem \
         WHERE l_quantity >= 1 AND l_quantity <= 15",
    ];
    let k = queries.len() as u64;
    let expected: Vec<Vec<Value>> = {
        let (baseline, _) = tpch_session(0.0008, 11);
        queries
            .iter()
            .map(|q| {
                baseline
                    .execute(&QueryRequest::sql(*q))
                    .unwrap()
                    .rows
                    .clone()
            })
            .collect()
    };
    let mut shared_seen = false;
    for _attempt in 0..10 {
        let (session, _) =
            common::tpch_session(ReCache::builder().shared_scans(config.clone()), 0.0008, 11);
        let session = &session;
        let expected = &expected;
        let barrier = Barrier::new(queries.len());
        let barrier = &barrier;
        std::thread::scope(|scope| {
            for (i, q) in queries.iter().enumerate() {
                scope.spawn(move || {
                    barrier.wait();
                    let result = session.execute(&QueryRequest::sql(*q)).unwrap();
                    assert_eq!(
                        result.rows, expected[i],
                        "query {i} differs between shared and serial execution"
                    );
                });
            }
        });
        let counters = session.cache().counters();
        if counters.shared_scans >= 1 {
            shared_seen = true;
            assert!(
                counters.shared_scan_participants >= 2,
                "a shared pass must serve at least two queries"
            );
            // Each shared pass with p participants replaces p raw scans
            // with one: total raw passes are strictly fewer than K.
            assert!(
                counters.shared_scan_participants > counters.shared_scans,
                "shared passes must save raw scans: {} passes for {} participants (K = {k})",
                counters.shared_scans,
                counters.shared_scan_participants
            );
            break;
        }
    }
    assert!(
        shared_seen,
        "no run formed a shared scan: queries never overlapped inside the gather window"
    );
}

/// The full overlap matrix under the default sharing config: subsumed,
/// partially-overlapping, and disjoint predicate groups over one source,
/// replayed across concurrent sessions — per-query results must match a
/// serial replay and the registry counters must reconcile at quiescence
/// whatever mix of sharing, subsumption, and solo scans the timing
/// produced.
#[test]
fn overlap_matrix_replay_matches_serial_and_reconciles_counters() {
    let sessions = sessions_knob();
    let queries = [
        // Subsumed group.
        "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity >= 5",
        "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity >= 25",
        "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity >= 45",
        // Partially overlapping group.
        "SELECT count(*), min(l_shipdate) FROM lineitem \
         WHERE l_quantity >= 10 AND l_quantity <= 30",
        "SELECT count(*), min(l_shipdate) FROM lineitem \
         WHERE l_quantity >= 20 AND l_quantity <= 40",
        // Disjoint group.
        "SELECT count(*), sum(l_tax) FROM lineitem WHERE l_quantity >= 1 AND l_quantity <= 10",
        "SELECT count(*), sum(l_tax) FROM lineitem WHERE l_quantity >= 21 AND l_quantity <= 30",
        "SELECT count(*), sum(l_tax) FROM lineitem WHERE l_quantity >= 41 AND l_quantity <= 50",
    ];
    let expected: Vec<Vec<Value>> = {
        let (baseline, _) = tpch_session(0.0008, 17);
        queries
            .iter()
            .map(|q| {
                baseline
                    .execute(&QueryRequest::sql(*q))
                    .unwrap()
                    .rows
                    .clone()
            })
            .collect()
    };
    let (session, _) = tpch_session(0.0008, 17);
    let session = &session;
    let expected = &expected;
    let barrier = Barrier::new(sessions);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for s in 0..sessions {
            scope.spawn(move || {
                barrier.wait();
                // Round-robin split, in stream order — as run_streams does.
                for i in (s..queries.len()).step_by(sessions) {
                    let result = session.execute(&QueryRequest::sql(queries[i])).unwrap();
                    assert_eq!(
                        result.rows, expected[i],
                        "query {i} differs between concurrent matrix and serial execution"
                    );
                }
            });
        }
    });
    assert_eq!(session.queries_run() as usize, queries.len());
    let counters = session.cache().counters();
    let snapshot = session.cache().snapshot();
    assert_eq!(
        counters.admissions,
        snapshot.len() as u64 + counters.evictions + counters.removals,
        "admissions must reconcile with residents + evictions + removals at quiescence"
    );
}

/// Registry race invariants: concurrent admit/evict/lookup/remove loops
/// never exceed the byte budget at quiescence, never double-evict, and
/// the counters reconcile with the final entry set.
#[test]
fn registry_races_keep_budget_and_counters_consistent() {
    let capacity = 6_000usize;
    let registry = Arc::new(CacheRegistry::new(Box::new(Lru), Some(capacity)));
    let data = |bytes: usize| {
        let ids = (0..(bytes.saturating_sub(8) / 4) as u32).collect();
        CacheData::Offsets(Arc::new(OffsetStore::build(ids, 10)))
    };
    let removed = Arc::new(AtomicUsize::new(0));
    let workers = sessions_knob().max(4);
    std::thread::scope(|scope| {
        for t in 0..workers as u64 {
            let registry = Arc::clone(&registry);
            let removed = Arc::clone(&removed);
            scope.spawn(move || {
                for i in 0..80u64 {
                    registry.tick();
                    let leaf = (t * 1000 + i) as usize;
                    let ranges = vec![LeafRange {
                        leaf,
                        lo: 0.0,
                        hi: 1.0,
                    }];
                    let signature = range_signature(&ranges);
                    let id = registry.admit(
                        "t",
                        FileFormat::Csv,
                        signature.clone(),
                        ranges.clone(),
                        true,
                        data(400 + (i as usize % 5) * 64),
                        1_000,
                        100,
                        1,
                    );
                    let (m, lookup_ns) = registry.lookup("t", &signature, &ranges);
                    if let Some(hit) = m.entry() {
                        registry.record_reuse(hit, 10, lookup_ns);
                    }
                    // Occasionally remove our own entry; `remove` reports
                    // whether this call won (evictions race with it).
                    if i % 7 == 3 && registry.remove(id) {
                        removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let counters = registry.counters();
    let snapshot = registry.snapshot();
    assert!(
        registry.total_bytes() <= capacity,
        "byte budget exceeded at quiescence: {} > {capacity}",
        registry.total_bytes()
    );
    assert_eq!(
        registry.total_bytes(),
        snapshot.iter().map(|e| e.stats.bytes).sum::<usize>(),
        "atomic byte total must equal the sum over resident entries"
    );
    // Every admitted entry is accounted for exactly once: still resident,
    // evicted by capacity enforcement, or explicitly removed. A double
    // eviction (or an eviction/remove double count) breaks this balance.
    assert_eq!(
        counters.admissions,
        snapshot.len() as u64 + counters.evictions + removed.load(Ordering::Relaxed) as u64,
        "admissions must reconcile with residents + evictions + removals"
    );
    // No resident entry id appears twice.
    let ids: BTreeSet<u64> = snapshot.iter().map(|e| e.id).collect();
    assert_eq!(ids.len(), snapshot.len());
}
