//! Cross-configuration equivalence: whatever the cache does — layouts,
//! admission modes, eviction pressure, subsumption rewrites — query
//! results must be identical to a cache-free session.

use recache::data::gen::{spam, tpch, yelp};
use recache::data::{csv, json};
use recache::types::Value;
use recache::workload::{
    mixed_spa_workload, spa_workload, spam_mixed_workload, tpch_spj_workload, Domains, PoolPhase,
    SpaConfig, SpamMixConfig, SpjConfig,
};
use recache::{Admission, Eviction, LayoutPolicy, QueryRequest, ReCache, ReCacheBuilder};
use std::collections::HashMap;

fn register_nested(session: &mut ReCache, sf: f64, seed: u64) -> Domains {
    let records = tpch::gen_order_lineitems(sf, seed);
    let schema = tpch::order_lineitems_schema();
    let domains = Domains::compute(&schema, records.iter());
    session.register_json_bytes(
        "orderLineitems",
        json::write_json(&schema, &records),
        schema,
    );
    domains
}

fn register_tpch(session: &mut ReCache, sf: f64, seed: u64) -> HashMap<String, Domains> {
    let mut domains = HashMap::new();
    let to_records = |rows: &[Vec<Value>]| -> Vec<Value> {
        rows.iter().map(|r| Value::Struct(r.clone())).collect()
    };
    let (orders, lineitems) = tpch::gen_orders_and_lineitems(sf, seed);
    for (name, schema, rows) in [
        ("orders", tpch::orders_schema(), orders),
        ("lineitem", tpch::lineitem_schema(), lineitems),
        (
            "customer",
            tpch::customer_schema(),
            tpch::gen_customer(sf, seed),
        ),
        ("part", tpch::part_schema(), tpch::gen_part(sf, seed)),
        (
            "partsupp",
            tpch::partsupp_schema(),
            tpch::gen_partsupp(sf, seed),
        ),
    ] {
        domains.insert(
            name.to_owned(),
            Domains::compute(&schema, to_records(&rows).iter()),
        );
        session.register_csv_bytes(name, csv::write_csv(&schema, &rows), schema);
    }
    domains
}

/// Runs the workload on every configuration and asserts identical
/// results per query.
fn assert_all_configs_agree(
    configs: Vec<(&str, ReCacheBuilder)>,
    register: &dyn Fn(&mut ReCache),
    specs: &[recache::sql::QuerySpec],
) {
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for (name, builder) in configs {
        let mut session = builder.build();
        register(&mut session);
        let results: Vec<Vec<Value>> = specs
            .iter()
            .map(|spec| {
                session
                    .execute(&QueryRequest::spec(spec.clone()))
                    .expect("query")
                    .rows
                    .clone()
            })
            .collect();
        match &reference {
            None => reference = Some(results),
            Some(expected) => {
                for (i, (got, want)) in results.iter().zip(expected).enumerate() {
                    assert_eq!(
                        got,
                        want,
                        "config '{name}' diverged on query {i}: {}",
                        recache::workload::spec_to_sql(&specs[i])
                    );
                }
            }
        }
    }
}

#[test]
fn nested_spa_results_are_layout_independent() {
    let sf = 0.0004;
    let seed = 17;
    let mut probe = ReCache::builder().build();
    let domains = register_nested(&mut probe, sf, seed);
    let specs = spa_workload(
        "orderLineitems",
        &domains,
        &[
            (PoolPhase::AllAttrs, 20),
            (PoolPhase::NonNestedOnly, 20),
            (PoolPhase::NestedFraction(0.5), 20),
        ],
        &SpaConfig::default(),
        seed,
    );
    assert_all_configs_agree(
        vec![
            ("no-caching", ReCache::builder().no_caching()),
            ("auto", ReCache::builder().layout_policy(LayoutPolicy::Auto)),
            (
                "fixed-columnar",
                ReCache::builder()
                    .layout_policy(LayoutPolicy::FixedColumnar)
                    .admission(Admission::eager_only()),
            ),
            (
                "fixed-dremel",
                ReCache::builder()
                    .layout_policy(LayoutPolicy::FixedDremel)
                    .admission(Admission::eager_only()),
            ),
            (
                "fixed-row",
                ReCache::builder()
                    .layout_policy(LayoutPolicy::FixedRow)
                    .admission(Admission::eager_only()),
            ),
            ("lazy", ReCache::builder().admission(Admission::lazy_only())),
        ],
        &|s| {
            register_nested(s, sf, seed);
        },
        &specs,
    );
}

#[test]
fn spj_results_survive_eviction_pressure() {
    let sf = 0.0004;
    let seed = 23;
    let mut probe = ReCache::builder().build();
    let domains = register_tpch(&mut probe, sf, seed);
    let specs = tpch_spj_workload(&domains, 25, &SpjConfig::default(), seed);
    assert_all_configs_agree(
        vec![
            ("no-caching", ReCache::builder().no_caching()),
            ("unlimited", ReCache::builder()),
            (
                "tiny-cache-greedy",
                ReCache::builder()
                    .cache_capacity_bytes(20_000)
                    .eviction(Eviction::GreedyDual),
            ),
            (
                "tiny-cache-lru",
                ReCache::builder()
                    .cache_capacity_bytes(20_000)
                    .eviction(Eviction::Lru),
            ),
            (
                "tiny-cache-monetdb",
                ReCache::builder()
                    .cache_capacity_bytes(20_000)
                    .eviction(Eviction::MonetDb),
            ),
        ],
        &|s| {
            register_tpch(s, sf, seed);
        },
        &specs,
    );
}

#[test]
fn spam_mix_results_are_config_independent() {
    let seed = 31;
    let n = 400;
    let register = |session: &mut ReCache| {
        let records = spam::gen_spam_json(n, seed);
        let schema = spam::spam_json_schema();
        session.register_json_bytes("spam_json", json::write_json(&schema, &records), schema);
        let rows = spam::gen_spam_csv(n, seed);
        let schema = spam::spam_csv_schema();
        session.register_csv_bytes("spam_csv", csv::write_csv(&schema, &rows), schema);
    };
    let mut probe = ReCache::builder().build();
    register(&mut probe);
    let records = spam::gen_spam_json(n, seed);
    let jd = Domains::compute(&spam::spam_json_schema(), records.iter());
    let rows: Vec<Value> = spam::gen_spam_csv(n, seed)
        .into_iter()
        .map(Value::Struct)
        .collect();
    let cd = Domains::compute(&spam::spam_csv_schema(), rows.iter());
    let specs = spam_mixed_workload(
        "spam_json",
        &jd,
        "spam_csv",
        &cd,
        40,
        &SpamMixConfig::default(),
        seed,
    );
    assert_all_configs_agree(
        vec![
            ("no-caching", ReCache::builder().no_caching()),
            ("auto", ReCache::builder()),
            (
                "columnar-small-cache",
                ReCache::builder()
                    .layout_policy(LayoutPolicy::FixedColumnar)
                    .cache_capacity_bytes(100_000),
            ),
        ],
        &register,
        &specs,
    );
}

#[test]
fn yelp_large_collections_are_layout_independent() {
    let seed = 5;
    let register = |session: &mut ReCache| {
        let business = yelp::gen_business(120, seed);
        let schema = yelp::business_schema();
        session.register_json_bytes("business", json::write_json(&schema, &business), schema);
        let user = yelp::gen_user(150, seed);
        let schema = yelp::user_schema();
        session.register_json_bytes("user", json::write_json(&schema, &user), schema);
    };
    let business = yelp::gen_business(120, seed);
    let bd = Domains::compute(&yelp::business_schema(), business.iter());
    let user = yelp::gen_user(150, seed);
    let ud = Domains::compute(&yelp::user_schema(), user.iter());
    let specs = mixed_spa_workload(
        &[("business", &bd), ("user", &ud)],
        0.6,
        40,
        &SpaConfig::default(),
        seed,
    );
    assert_all_configs_agree(
        vec![
            ("no-caching", ReCache::builder().no_caching()),
            ("auto", ReCache::builder()),
            (
                "dremel",
                ReCache::builder()
                    .layout_policy(LayoutPolicy::FixedDremel)
                    .admission(Admission::eager_only()),
            ),
            (
                "columnar",
                ReCache::builder()
                    .layout_policy(LayoutPolicy::FixedColumnar)
                    .admission(Admission::eager_only()),
            ),
        ],
        &register,
        &specs,
    );
}
