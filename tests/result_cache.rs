//! The semantic result cache, end to end: hits serve identical rows
//! with zero executor work, per-request toggles override the session
//! default, registry eviction/removal of a pinned source *precisely*
//! invalidates dependent results (forcing re-execution — no stale
//! serves), SQL-text variants of one query collapse to one cache key,
//! and concurrent admit/evict races never produce a wrong answer.

mod common;

use recache::types::Value;
use recache::workload::{spa_workload, Domains, PoolPhase, SpaConfig};
use recache::{CacheOutcome, QueryRequest, ReCache};
use std::collections::HashMap;

const Q: &str = "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity >= 30";

fn session_with_results(sf: f64, seed: u64) -> (ReCache, HashMap<String, Domains>) {
    common::tpch_session(ReCache::builder().result_cache_enabled(true), sf, seed)
}

/// Acceptance criterion: a repeated query is served from the result
/// cache — outcome `ResultHit`, zero data/compute/exec nanoseconds,
/// identical rows — without even probing the data cache.
#[test]
fn result_hits_serve_identical_rows_without_executor_work() {
    let (session, _) = session_with_results(0.0005, 3);
    let first = session.execute(&QueryRequest::sql(Q)).unwrap();
    assert_eq!(first.telemetry.outcome, CacheOutcome::Miss);
    let second = session
        .execute(&QueryRequest::sql(Q).tag("repeat"))
        .unwrap();
    assert_eq!(second.telemetry.outcome, CacheOutcome::ResultHit);
    assert_eq!(second.rows, first.rows);
    assert_eq!(second.rows_aggregated, first.rows_aggregated);
    assert_eq!(second.telemetry.data_ns, 0);
    assert_eq!(second.telemetry.compute_ns, 0);
    assert_eq!(second.telemetry.exec_ns, 0);
    assert_eq!(second.stats.exec_ns, 0);
    assert_eq!(second.telemetry.tag.as_deref(), Some("repeat"));
    // Result hits still count as queries (serving stats), and the
    // executor/data cache never saw the repeat.
    assert_eq!(session.queries_run(), 2);
    let c = session.cache().counters();
    assert_eq!(c.result_hits, 1);
    assert_eq!(c.result_misses, 1);
    assert_eq!(
        c.hits_exact, 0,
        "data cache must not be probed on a result hit"
    );
}

/// Textual variants of one query — whitespace, keyword case, int vs
/// float literals, conjunct order, BETWEEN vs explicit bounds — collapse
/// to one key; a genuinely different predicate does not.
#[test]
fn normalization_collapses_variants_end_to_end() {
    let (session, _) = session_with_results(0.0005, 3);
    let base = session.execute(&QueryRequest::sql(Q)).unwrap();
    for variant in [
        "select   COUNT(*), SUM(l_extendedprice)\n FROM lineitem  WHERE l_quantity >= 30.0",
        "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity BETWEEN 30 AND 50 \
         AND l_quantity <= 50",
    ] {
        let response = session.execute(&QueryRequest::sql(variant)).unwrap();
        if variant.contains("BETWEEN") {
            // Different predicate: BETWEEN caps the range at 50, so it
            // must execute (possibly as a subsuming data-cache hit) —
            // never serve from the result cache.
            assert_ne!(response.telemetry.outcome, CacheOutcome::ResultHit);
        } else {
            assert_eq!(
                response.telemetry.outcome,
                CacheOutcome::ResultHit,
                "variant should hit: {variant}"
            );
            assert_eq!(response.rows, base.rows);
        }
    }
    // The BETWEEN form and its >=/<= expansion do share a key.
    let expanded = session
        .execute(&QueryRequest::sql(
            "SELECT count(*), sum(l_extendedprice) FROM lineitem \
             WHERE l_quantity <= 50 AND l_quantity >= 30 AND l_quantity <= 50",
        ))
        .unwrap();
    assert_eq!(expanded.telemetry.outcome, CacheOutcome::ResultHit);
}

/// The per-request toggle overrides the session default in both
/// directions.
#[test]
fn per_request_toggle_overrides_session_default() {
    // Session default OFF: repeats re-execute unless the request opts in.
    let (session, _) = common::tpch_session(ReCache::builder(), 0.0005, 3);
    assert!(!session.result_cache().is_enabled());
    session.execute(&QueryRequest::sql(Q)).unwrap();
    let repeat = session.execute(&QueryRequest::sql(Q)).unwrap();
    assert_ne!(repeat.telemetry.outcome, CacheOutcome::ResultHit);
    assert_eq!(session.cache().counters().result_hits, 0);
    // Opting in per request populates and then serves the cache.
    session
        .execute(&QueryRequest::sql(Q).result_cache(true))
        .unwrap();
    let opted = session
        .execute(&QueryRequest::sql(Q).result_cache(true))
        .unwrap();
    assert_eq!(opted.telemetry.outcome, CacheOutcome::ResultHit);
    // Session default ON, request opts out: no result hit.
    session.result_cache().set_enabled(true);
    let bypass = session
        .execute(&QueryRequest::sql(Q).result_cache(false))
        .unwrap();
    assert_ne!(bypass.telemetry.outcome, CacheOutcome::ResultHit);
    assert_eq!(bypass.rows, opted.rows);
}

/// Acceptance criterion: removing/evicting a data-cache entry a result
/// is pinned to drops the result — the repeat re-executes instead of
/// serving from the result cache.
#[test]
fn removing_pinned_entry_forces_reexecution() {
    let (session, _) = session_with_results(0.0005, 3);
    let first = session.execute(&QueryRequest::sql(Q)).unwrap();
    assert!(!session.result_cache().is_empty());
    // Remove the lineitem data-cache entry the result pinned.
    let victims: Vec<u64> = session
        .cache()
        .snapshot()
        .iter()
        .filter(|e| e.source == "lineitem")
        .map(|e| e.id)
        .collect();
    assert!(!victims.is_empty(), "the first run should have admitted");
    for id in victims {
        assert!(session.cache().remove(id));
    }
    let c = session.cache().counters();
    assert!(
        c.result_invalidations >= 1,
        "removal of a pinned entry must invalidate the dependent result"
    );
    assert_eq!(session.result_cache().len(), 0);
    // The repeat re-executes (a fresh miss), with the same answer.
    let again = session.execute(&QueryRequest::sql(Q)).unwrap();
    assert_ne!(again.telemetry.outcome, CacheOutcome::ResultHit);
    assert_eq!(again.rows, first.rows);
}

/// Same contract under capacity pressure: when the registry's own
/// eviction (not an explicit remove) expels the pinned entry, the
/// dependent result goes with it.
#[test]
fn capacity_eviction_invalidates_dependent_results() {
    let (session, domains) = common::tpch_session(
        // Small enough that a stream of distinct selections keeps
        // evicting, large enough to admit entries at all.
        ReCache::builder()
            .result_cache_enabled(true)
            .cache_capacity_bytes(64 << 10),
        0.0005,
        3,
    );
    session.execute(&QueryRequest::sql(Q)).unwrap();
    assert!(!session.result_cache().is_empty());
    // Chew through distinct range selections until eviction fires.
    let specs = spa_workload(
        "lineitem",
        &domains["lineitem"],
        &[(PoolPhase::AllAttrs, 24)],
        &SpaConfig::default(),
        17,
    );
    for spec in &specs {
        session.execute(&QueryRequest::spec(spec.clone())).unwrap();
        if session.cache().counters().evictions > 0 {
            break;
        }
    }
    let c = session.cache().counters();
    assert!(c.evictions > 0, "capacity pressure should have evicted");
    assert!(
        c.result_invalidations > 0,
        "evicting pinned entries must invalidate dependent results"
    );
}

/// Re-registering a source (a source change) invalidates every result
/// computed from it, and the fresh registration answers queries against
/// the *new* bytes.
#[test]
fn source_reregistration_invalidates_results() {
    use recache::data::{csv, gen::tpch};
    let mut session = ReCache::builder().result_cache_enabled(true).build();
    let schema = tpch::lineitem_schema();
    let (_, rows) = tpch::gen_orders_and_lineitems(0.0005, 3);
    session.register_csv_bytes("lineitem", csv::write_csv(&schema, &rows), schema);
    let first = session.execute(&QueryRequest::sql(Q)).unwrap();
    assert_eq!(session.result_cache().len(), 1);
    // Replace the source with a halved dataset.
    let schema = tpch::lineitem_schema();
    let half: Vec<_> = rows[..rows.len() / 2].to_vec();
    session.register_csv_bytes("lineitem", csv::write_csv(&schema, &half), schema);
    assert_eq!(
        session.result_cache().len(),
        0,
        "source change must drop dependent results"
    );
    assert!(session.cache().counters().result_invalidations >= 1);
    let after = session.execute(&QueryRequest::sql(Q)).unwrap();
    assert_ne!(after.telemetry.outcome, CacheOutcome::ResultHit);
    assert!(
        after.rows_aggregated <= first.rows_aggregated,
        "the re-registered (smaller) source must answer, not the stale result"
    );
}

/// Stale-result impossibility under races: concurrent sessions hammer a
/// small pool of repeated queries against a capacity-constrained shared
/// session (admissions and evictions racing result inserts and
/// invalidations the whole time); every single answer must equal the
/// no-caching truth, and the result-cache counters must reconcile.
#[test]
fn concurrent_admit_evict_races_never_serve_stale_results() {
    let sf = 0.0004;
    let (truth_session, domains) = common::tpch_session(ReCache::builder().no_caching(), sf, 7);
    let specs = spa_workload(
        "lineitem",
        &domains["lineitem"],
        &[(PoolPhase::AllAttrs, 8)],
        &SpaConfig::default(),
        7,
    );
    let truth: Vec<Vec<Value>> = specs
        .iter()
        .map(|s| {
            truth_session
                .execute(&QueryRequest::spec(s.clone()))
                .unwrap()
                .rows
                .clone()
        })
        .collect();

    let (shared, _) = common::tpch_session(
        ReCache::builder()
            .result_cache_enabled(true)
            // Tight data-cache budget: entries keep getting evicted,
            // firing result invalidation concurrently with lookups.
            .cache_capacity_bytes(48 << 10),
        sf,
        7,
    );
    let workers = 4;
    std::thread::scope(|scope| {
        for t in 0..workers {
            let shared = &shared;
            let specs = &specs;
            let truth = &truth;
            scope.spawn(move || {
                for i in 0..40usize {
                    let j = (t + i) % specs.len();
                    let response = shared
                        .execute(&QueryRequest::spec(specs[j].clone()))
                        .unwrap();
                    assert_eq!(
                        response.rows, truth[j],
                        "query {j} (worker {t}, iter {i}) diverged from the no-caching truth"
                    );
                }
            });
        }
    });
    let c = shared.cache().counters();
    // Every query either hit or missed the result cache; at quiescence
    // the resident results are bounded by inserts minus departures.
    assert_eq!(c.result_hits + c.result_misses, (workers * 40) as u64);
    assert!(c.result_hits > 0, "repeats should produce result hits");
    assert!(
        (shared.result_cache().len() as u64)
            <= c.result_misses - c.result_evictions - c.result_invalidations,
        "residents cannot exceed inserts minus evictions/invalidations"
    );
}
