//! Chaos suite: seeded fault injection across the execution stack.
//!
//! The matrix — fault mix × {CSV, JSON} × threads {1, 2, 8} × sessions
//! {1, 4} — asserts the hardening contract end to end: every query
//! either returns the fault-free-identical result or a typed error
//! (`Timeout` / `Cancelled` / `Io`), nothing hangs, and the registry's
//! invariants (byte budget, accounted-bytes == resident bytes, and the
//! reconciliation `admissions == residents + evictions + removals`)
//! hold at quiescence. Failed scans never admit, so they do not appear
//! in the reconciliation identity — they are tracked separately by
//! `failed_scans`.
//!
//! The CI `chaos` job runs this suite under `RECACHE_FAULT_SEED` with a
//! hard job timeout, so a hang is a failure, not a stall.

use recache::data::gen::tpch;
use recache::data::{
    csv as data_csv, json as data_json, FaultKind, FaultPlan, FaultSite, FileFormat, RetryPolicy,
};
use recache::engine::exec::ExecOptions;
use recache::sql::{parse_query, QuerySpec};
use recache::types::{CancelToken, Error, Schema, Value};
use recache::workload::split_round_robin;
use recache::{QueryRequest, ReCache, Scheduler};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Base seed for every fault plan in the suite. The CI matrix varies it
/// via `RECACHE_FAULT_SEED`; any value must pass.
fn fault_seed() -> u64 {
    std::env::var("RECACHE_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC1A0_5EED)
}

/// Scale factor sized so `lineitem` spans several batched-scan chunks
/// (~12k records over 4096-row windows), giving chunk-granularity
/// faults and retries something real to hit.
const SF: f64 = 0.002;

/// Retry policy for chaos runs: a couple more attempts than the
/// default and near-zero backoff so the suite stays fast.
const CHAOS_RETRY: RetryPolicy = RetryPolicy {
    max_attempts: 6,
    base_backoff: Duration::from_micros(5),
    max_backoff: Duration::from_micros(50),
};

/// Serialized `lineitem` fixture, generated once and shared by every
/// session in the suite.
fn lineitem_fixture() -> &'static (Schema, Vec<u8>, Vec<u8>) {
    static FIXTURE: OnceLock<(Schema, Vec<u8>, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let schema = tpch::lineitem_schema();
        let (_, rows) = tpch::gen_orders_and_lineitems(SF, 7);
        let csv_bytes = data_csv::write_csv(&schema, &rows);
        let records: Vec<Value> = rows.iter().map(|r| Value::Struct(r.clone())).collect();
        let json_bytes = data_json::write_json(&schema, &records);
        (schema, csv_bytes, json_bytes)
    })
}

/// A fresh session with `lineitem` registered in the given format.
fn lineitem_session(format: FileFormat) -> ReCache {
    let (schema, csv_bytes, json_bytes) = lineitem_fixture();
    let mut session = ReCache::builder().build();
    match format {
        FileFormat::Csv => {
            session.register_csv_bytes("lineitem", csv_bytes.clone(), schema.clone())
        }
        FileFormat::Json => {
            session.register_json_bytes("lineitem", json_bytes.clone(), schema.clone())
        }
    }
    session
}

/// The chaos workload: SPA range scans with repeats, so runs exercise
/// misses, admissions, exact hits, and subsumption under faults.
fn chaos_specs() -> Vec<QuerySpec> {
    let mut texts = Vec::new();
    for lo in [1, 11, 21, 31, 41] {
        texts.push(format!(
            "SELECT count(*), sum(l_extendedprice) FROM lineitem \
             WHERE l_quantity >= {lo} AND l_quantity <= {hi}",
            hi = lo + 14
        ));
    }
    // Repeats of the first ranges: cache-hit paths under faults.
    texts.push(texts[0].clone());
    texts.push(texts[1].clone());
    // A narrower probe subsumed by the first range.
    texts.push(
        "SELECT count(*), sum(l_extendedprice) FROM lineitem \
         WHERE l_quantity >= 3 AND l_quantity <= 9"
            .to_owned(),
    );
    texts.iter().map(|t| parse_query(t).unwrap()).collect()
}

/// Fault-free reference rows for [`chaos_specs`], per format.
fn reference_rows(format: FileFormat) -> Vec<Vec<Value>> {
    let clean = lineitem_session(format);
    chaos_specs()
        .iter()
        .map(|spec| {
            clean
                .execute(&QueryRequest::spec(spec.clone()))
                .unwrap()
                .rows
                .clone()
        })
        .collect()
}

/// The hardening contract for one query outcome: fault-free-identical
/// rows, or a typed error from the allowed set.
fn assert_clean_or_typed(outcome: &Result<Vec<Value>, Error>, expected: &[Value], context: &str) {
    match outcome {
        Ok(rows) => assert_eq!(
            rows.as_slice(),
            expected,
            "{context}: injected faults changed a successful query's result"
        ),
        Err(e) => assert!(
            matches!(e, Error::Io(_) | Error::Timeout | Error::Cancelled),
            "{context}: fault surfaced as untyped error: {e}"
        ),
    }
}

/// Registry invariants at quiescence: accounted bytes equal resident
/// bytes, the byte budget holds, and admissions reconcile with
/// residents + evictions + removals.
fn assert_registry_invariants(session: &ReCache, context: &str) {
    let cache = session.cache();
    let counters = cache.counters();
    let snapshot = cache.snapshot();
    let resident_bytes: usize = snapshot.iter().map(|e| e.stats.bytes).sum();
    assert_eq!(
        cache.total_bytes(),
        resident_bytes,
        "{context}: accounted bytes diverge from resident snapshot bytes"
    );
    if let Some(capacity) = cache.capacity() {
        assert!(
            cache.total_bytes() <= capacity,
            "{context}: byte budget exceeded: {} > {capacity}",
            cache.total_bytes()
        );
    }
    assert_eq!(
        counters.admissions,
        snapshot.len() as u64 + counters.evictions + counters.removals,
        "{context}: admissions do not reconcile with residents + evictions + removals"
    );
}

/// The ISSUE matrix: fault mix × format × threads × sessions, seeded.
/// Every cell runs the full workload on a freshly faulted session and
/// checks the contract plus registry invariants at quiescence.
#[test]
fn chaos_matrix_returns_clean_results_or_typed_errors() {
    type FaultMix = fn(FaultPlan) -> FaultPlan;
    let base_seed = fault_seed();
    let fault_mixes: [(&str, FaultMix); 2] = [
        ("transient", |p| p.transient(0.25).short_reads(0.1)),
        ("mixed", |p| {
            p.transient(0.2).persistent(0.05).short_reads(0.05)
        }),
    ];
    for format in [FileFormat::Csv, FileFormat::Json] {
        let specs = chaos_specs();
        let reference = reference_rows(format);
        for (mix_name, mix) in fault_mixes {
            for threads in [1usize, 2, 8] {
                for sessions in [1usize, 4] {
                    let context =
                        format!("{format:?}/{mix_name}/threads={threads}/sessions={sessions}");
                    // Vary the plan seed per cell so the matrix explores
                    // different fault placements, all reproducibly.
                    let cell_seed = base_seed
                        ^ (threads as u64) << 8
                        ^ (sessions as u64) << 16
                        ^ (mix_name.len() as u64) << 24;
                    let session = lineitem_session(format);
                    assert!(
                        session.set_fault_plan("lineitem", Some(mix(FaultPlan::new(cell_seed))))
                    );
                    assert!(session.set_retry_policy("lineitem", CHAOS_RETRY));
                    if sessions == 1 {
                        let options = ExecOptions {
                            vectorized: true,
                            threads,
                            cancel: None,
                            reprice: None,
                        };
                        for (spec, expected) in specs.iter().zip(&reference) {
                            let outcome = session
                                .execute(&QueryRequest::spec(spec.clone()).options(options.clone()))
                                .map(|r| r.rows.clone());
                            assert_clean_or_typed(&outcome, expected, &context);
                        }
                    } else {
                        let streams = split_round_robin(&specs, sessions);
                        let scheduler = Scheduler::new(threads);
                        match scheduler.run_streams(&session, &streams) {
                            Ok(results) => {
                                for (i, expected) in reference.iter().enumerate() {
                                    assert_eq!(
                                        &results[i % sessions][i / sessions].rows,
                                        expected,
                                        "{context}: query {i} diverged from the fault-free result"
                                    );
                                }
                            }
                            // A stream stops at its first failed query, so
                            // per-query comparison is unavailable — the
                            // error itself must still be typed.
                            Err(e) => assert!(
                                matches!(e, Error::Io(_) | Error::Timeout | Error::Cancelled),
                                "{context}: stream fault surfaced as untyped error: {e}"
                            ),
                        }
                        assert_eq!(
                            scheduler.active_sessions(),
                            0,
                            "{context}: leaked session slot"
                        );
                    }
                    assert_registry_invariants(&session, &context);
                }
            }
        }
    }
}

/// Transient faults below the retry budget are absorbed completely:
/// every query succeeds with the fault-free result, and the registry
/// records the chunk retries that made that happen.
#[test]
fn transient_faults_are_absorbed_by_retry() {
    let specs = chaos_specs();
    let reference = reference_rows(FileFormat::Csv);
    let generous = RetryPolicy {
        max_attempts: 12,
        ..CHAOS_RETRY
    };
    let options = ExecOptions {
        vectorized: true,
        threads: 2,
        cancel: None,
        reprice: None,
    };
    // A single plan can (rarely) draw no faults on the chunks the scans
    // actually visit; accumulating over a few derived plan seeds keeps
    // the retry assertion deterministic for any base seed.
    let mut total_retried = 0u64;
    for round in 0..8u64 {
        let session = lineitem_session(FileFormat::Csv);
        assert!(session.set_fault_plan(
            "lineitem",
            Some(FaultPlan::new(fault_seed().wrapping_add(round)).transient(0.4))
        ));
        assert!(session.set_retry_policy("lineitem", generous));
        for (spec, expected) in specs.iter().zip(&reference) {
            let rows = session
                .execute(&QueryRequest::spec(spec.clone()).options(options.clone()))
                .unwrap()
                .rows
                .clone();
            assert_eq!(&rows, expected, "retried query diverged from clean result");
        }
        let counters = session.cache().counters();
        assert_eq!(counters.failed_scans, 0);
        assert_eq!(counters.timeouts, 0);
        assert_registry_invariants(&session, "transient-retry");
        total_retried += counters.retried_chunks;
        if total_retried > 0 {
            break;
        }
    }
    assert!(
        total_retried > 0,
        "a 40% transient rate over several chunks must retry at least once"
    );
}

/// Persistent faults exhaust the retry budget and surface as typed
/// `Io` errors — never wrong results — and are counted as failed scans.
#[test]
fn persistent_faults_surface_typed_io_errors() {
    let specs = chaos_specs();
    let session = lineitem_session(FileFormat::Csv);
    assert!(session.set_fault_plan(
        "lineitem",
        Some(FaultPlan::new(fault_seed()).persistent(1.0))
    ));
    assert!(session.set_retry_policy("lineitem", CHAOS_RETRY));
    for spec in &specs {
        let err = session
            .execute(&QueryRequest::spec(spec.clone()))
            .unwrap_err();
        assert!(
            matches!(err, Error::Io(_)),
            "persistent fault must surface as Io, got: {err}"
        );
    }
    let counters = session.cache().counters();
    assert_eq!(counters.failed_scans, specs.len() as u64);
    assert_eq!(counters.admissions, 0, "failed scans must never admit");
    assert_eq!(session.cache().len(), 0);
    assert_registry_invariants(&session, "persistent-io");
}

/// A batched raw scan that hits a persistent chunk fault degrades to
/// the row-at-a-time path and still produces the fault-free result.
/// The seed is searched so the chunk grid faults while the row-scan
/// ordinals stay clean — deterministic for any `RECACHE_FAULT_SEED`.
#[test]
fn degraded_fallback_completes_on_batched_scan_faults() {
    let reference = reference_rows(FileFormat::Csv);
    let specs = chaos_specs();
    let rate = 0.3;
    let session = lineitem_session(FileFormat::Csv);
    let n_chunks = session.source("lineitem").unwrap().batch_chunks() as u64;
    assert!(n_chunks >= 2, "fixture must span multiple chunks");
    let seed = (fault_seed()..fault_seed() + 20_000)
        .find(|&s| {
            let plan = FaultPlan::new(s).persistent(rate);
            let chunk_hit = (0..n_chunks).any(|c| plan.decide(FaultSite::Chunk, c, 0).is_some());
            let rows_clean =
                (0..12).all(|o| (0..4).all(|a| plan.decide(FaultSite::RowScan, o, a).is_none()));
            chunk_hit && rows_clean
        })
        .expect("a seed with faulty chunks and a clean row path exists");
    assert!(session.set_fault_plan("lineitem", Some(FaultPlan::new(seed).persistent(rate))));
    let options = ExecOptions {
        vectorized: true,
        threads: 2,
        cancel: None,
        reprice: None,
    };
    let result = session
        .execute(&QueryRequest::spec(specs[0].clone()).options(options.clone()))
        .unwrap();
    assert_eq!(
        result.rows, reference[0],
        "degraded fallback must reproduce the fault-free result"
    );
    assert!(
        result.stats.exec.tables.iter().any(|t| t.degraded_fallback),
        "the batched scan should have fallen back to the row path"
    );
    assert!(session.cache().counters().degraded_fallbacks >= 1);
    assert_registry_invariants(&session, "degraded-fallback");
}

/// Deadlines and cancellation: an expired deadline and a pre-cancelled
/// token return their typed errors promptly (and are counted), while a
/// generous deadline leaves the result untouched.
#[test]
fn deadlines_and_cancellation_return_typed_errors() {
    let reference = reference_rows(FileFormat::Csv);
    let specs = chaos_specs();
    let session = lineitem_session(FileFormat::Csv);
    let options = ExecOptions {
        vectorized: true,
        threads: 2,
        cancel: None,
        reprice: None,
    };

    // An already-expired deadline fails before any scan work.
    let err = session
        .execute(
            &QueryRequest::spec(specs[0].clone())
                .options(options.clone())
                .deadline(Duration::ZERO),
        )
        .unwrap_err();
    assert!(matches!(err, Error::Timeout), "got: {err}");
    assert_eq!(session.cache().counters().timeouts, 1);

    // A pre-cancelled token is reported as cancellation, not timeout.
    let cancelled = Arc::new(CancelToken::new());
    cancelled.cancel();
    let cancel_options = ExecOptions {
        cancel: Some(cancelled),
        reprice: None,
        ..options.clone()
    };
    let err = session
        .execute(&QueryRequest::spec(specs[0].clone()).options(cancel_options))
        .unwrap_err();
    assert!(matches!(err, Error::Cancelled), "got: {err}");

    // Injected latency spikes push execution past a short deadline.
    assert!(session.set_fault_plan(
        "lineitem",
        Some(FaultPlan::new(fault_seed()).latency(1.0, Duration::from_millis(30)))
    ));
    let err = session
        .execute(
            &QueryRequest::spec(specs[0].clone())
                .options(options.clone())
                .deadline(Duration::from_millis(5)),
        )
        .unwrap_err();
    assert!(matches!(err, Error::Timeout), "got: {err}");

    // With the spikes removed and a generous deadline, the same query
    // completes with the fault-free result.
    assert!(session.set_fault_plan("lineitem", None));
    let result = session
        .execute(
            &QueryRequest::spec(specs[0].clone())
                .options(options.clone())
                .deadline(Duration::from_secs(60)),
        )
        .unwrap();
    assert_eq!(result.rows, reference[0]);
    assert_registry_invariants(&session, "deadlines");
}

/// Panic faults on a shared session exercise leader failover: the
/// panicking stream is identified, and the whole run either completes
/// with clean results or surfaces a typed/panic-tagged error — while
/// the registry stays consistent.
#[test]
fn panic_faults_keep_the_registry_consistent() {
    let specs = chaos_specs();
    let reference = reference_rows(FileFormat::Csv);
    let session = lineitem_session(FileFormat::Csv);
    assert!(session.set_fault_plan("lineitem", Some(FaultPlan::new(fault_seed()).panics(0.3))));
    let streams = split_round_robin(&specs, 4);
    let scheduler = Scheduler::new(4);
    match scheduler.run_streams(&session, &streams) {
        Ok(results) => {
            for (i, expected) in reference.iter().enumerate() {
                assert_eq!(&results[i % 4][i / 4].rows, expected);
            }
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("panicked") && msg.contains("injected panic"),
                "panic fault must be surfaced with its payload, got: {msg}"
            );
        }
    }
    assert_eq!(scheduler.active_sessions(), 0, "leaked session slot");
    assert_registry_invariants(&session, "panic-faults");

    // The session is still usable after the panics: clear the plan and
    // re-run the workload clean.
    assert!(session.set_fault_plan("lineitem", None));
    for (spec, expected) in specs.iter().zip(&reference) {
        assert_eq!(
            &session
                .execute(&QueryRequest::spec(spec.clone()))
                .unwrap()
                .rows,
            expected
        );
    }
    assert_registry_invariants(&session, "panic-faults/recovered");
}

/// A fault kind sanity net for the suite itself: every configured kind
/// is reachable from the plan the matrix uses.
#[test]
fn fault_plans_draw_every_configured_kind() {
    let plan = FaultPlan::new(fault_seed())
        .transient(0.3)
        .persistent(0.1)
        .short_reads(0.2);
    let mut kinds = std::collections::BTreeSet::new();
    for chunk in 0..256 {
        for attempt in 0..4 {
            if let Some(kind) = plan.decide(FaultSite::Chunk, chunk, attempt) {
                kinds.insert(format!("{kind:?}"));
            }
        }
    }
    for expected in [
        FaultKind::TransientIo,
        FaultKind::PersistentIo,
        FaultKind::ShortRead,
    ] {
        assert!(
            kinds.contains(&format!("{expected:?}")),
            "kind {expected:?} never drawn over 1024 decisions"
        );
    }
}
