//! Vectorized ↔ row-at-a-time equivalence, across a thread matrix.
//!
//! Whatever the execution mode — typed batch kernels or per-row
//! `Expr::eval_bool`, single-threaded or fanned out across the work
//! pool — `QueryOutput.values` and `rows_aggregated` must be
//! *bit-identical* across all four cache layouts plus raw access, on
//! flat TPC-H, nested TPC-H, Yelp-style, spam-generator, NULL-heavy
//! (JSON and CSV) and high-cardinality-string data, for record-level and
//! element-level scans. The suite runs at `threads ∈ {1, 2, 8}`; exact
//! summation (`ExactSum`) plus fixed-order partial merges are what make
//! float aggregates independent of the parallel task decomposition.
//!
//! Two axes added with the batched raw-scan / dictionary work:
//! * **raw batched vs row** — every *flat* dataset (CSV, and flat JSON
//!   since the batched JSON tokenizer landed) runs the raw access path
//!   in both modes (vectorized raw scans tokenize into typed batches;
//!   the row mode is the per-record tokenizer), first-scan and
//!   posmap-mapped; nested JSON datasets assert the row fallback
//!   engages instead;
//! * **dict vs plain** — stores built with dictionary encoding enabled
//!   (the default) and disabled must agree with each other and with the
//!   row path; the high-cardinality dataset must *not* dictionary-encode.

use rand::{rngs::StdRng, Rng, SeedableRng};
use recache::data::gen::{spam, tpch, yelp};
use recache::data::{csv, json, FileFormat, RawFile};
use recache::engine::exec::{execute_with, ExecOptions};
use recache::engine::expr::{CmpOp, Expr};
use recache::engine::plan::{AccessPath, AggFunc, AggSpec, QueryPlan, TablePlan};
use recache::layout::{ColumnStore, DremelStore, OffsetStore, RowStore};
use recache::types::{DataType, Field, FieldPath, Schema, Value};
use std::sync::Arc;

const ROW: ExecOptions = ExecOptions {
    vectorized: false,
    threads: 1,
    cancel: None,
    reprice: None,
};

const fn vectorized(threads: usize) -> ExecOptions {
    ExecOptions {
        vectorized: true,
        threads,
        cancel: None,
        reprice: None,
    }
}

struct Dataset {
    name: &'static str,
    schema: Schema,
    records: Vec<Value>,
    format: FileFormat,
}

fn flat_rows(records: &[Value]) -> Vec<Vec<Value>> {
    records
        .iter()
        .map(|r| match r {
            Value::Struct(fields) => fields.clone(),
            other => panic!("expected struct record, got {other:?}"),
        })
        .collect()
}

fn datasets() -> Vec<Dataset> {
    let (_, lineitems) = tpch::gen_orders_and_lineitems(0.0005, 7);
    let lineitem_records: Vec<Value> = lineitems.into_iter().map(Value::Struct).collect();
    let null_heavy_schema = Schema::new(vec![
        Field::new("x", DataType::Int),
        Field::new("s", DataType::Str),
        Field::new("tags", DataType::List(Box::new(DataType::Float))),
    ]);
    // Dense nulls in every column, plus empty/absent lists.
    let null_heavy: Vec<Value> = (0..600i64)
        .map(|i| {
            let x = if i % 3 == 0 {
                Value::Null
            } else {
                Value::Int(i % 50)
            };
            let s = match i % 4 {
                0 => Value::Null,
                1 => Value::Str(String::new()),
                _ => Value::Str(format!("s{}", i % 17)),
            };
            let tags = match i % 5 {
                0 => Value::Null,
                1 => Value::List(vec![]),
                _ => Value::List((0..i % 4).map(|j| Value::Float(j as f64 * 0.5)).collect()),
            };
            Value::Struct(vec![x, s, tags])
        })
        .collect();
    // Flat CSV with dense nulls in every column: exercises the batched
    // raw tokenizer's null handling and validity bitmaps.
    let null_heavy_csv_schema = Schema::new(vec![
        Field::new("x", DataType::Int),
        Field::new("s", DataType::Str),
        Field::new("f", DataType::Float),
    ]);
    let null_heavy_csv: Vec<Value> = (0..700i64)
        .map(|i| {
            let x = if i % 3 == 0 {
                Value::Null
            } else {
                Value::Int(i % 40)
            };
            let s = if i % 4 == 0 {
                Value::Null
            } else {
                Value::Str(format!("s{}", i % 11))
            };
            let f = if i % 5 == 0 {
                Value::Null
            } else {
                Value::Float(i as f64 * 0.125 - 20.0)
            };
            Value::Struct(vec![x, s, f])
        })
        .collect();
    // Every string unique: must NOT dictionary-encode, and dict-vs-plain
    // equivalence degenerates to plain-vs-plain (still asserted).
    let high_card_schema = Schema::new(vec![
        Field::required("k", DataType::Int),
        Field::required("u", DataType::Str),
    ]);
    let high_card: Vec<Value> = (0..800i64)
        .map(|i| Value::Struct(vec![Value::Int(i), Value::Str(format!("uniq-{i:05}"))]))
        .collect();
    // Flat JSON: every top-level field scalar, so the batched JSON
    // tokenizer serves the raw path. Absent keys (the writer omits
    // nulls) and a bool column exercise the staging walk.
    let flat_json_schema = Schema::new(vec![
        Field::required("k", DataType::Int),
        Field::new("v", DataType::Float),
        Field::new("tag", DataType::Str),
        Field::new("flag", DataType::Bool),
    ]);
    let flat_json: Vec<Value> = (0..900i64)
        .map(|i| {
            Value::Struct(vec![
                Value::Int(i % 120),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Float(i as f64 * 0.5 - 55.0)
                },
                if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Str(format!("t{}", i % 19))
                },
                if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Bool(i % 2 == 0)
                },
            ])
        })
        .collect();
    // NULL-/missing-key-heavy flat JSON: most keys absent on most
    // records (the writer drops null fields), so the batched walk's
    // missing-key staging dominates.
    let sparse_json_schema = Schema::new(vec![
        Field::new("x", DataType::Int),
        Field::new("s", DataType::Str),
        Field::new("f", DataType::Float),
    ]);
    let sparse_json: Vec<Value> = (0..700i64)
        .map(|i| {
            Value::Struct(vec![
                if i % 2 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 40)
                },
                if i % 3 != 1 {
                    Value::Null
                } else {
                    Value::Str(format!("s{}", i % 11))
                },
                if i % 4 != 2 {
                    Value::Null
                } else {
                    Value::Float(i as f64 * 0.125 - 20.0)
                },
            ])
        })
        .collect();
    vec![
        Dataset {
            name: "tpch_lineitem_csv",
            schema: tpch::lineitem_schema(),
            records: lineitem_records,
            format: FileFormat::Csv,
        },
        Dataset {
            name: "null_heavy_csv",
            schema: null_heavy_csv_schema,
            records: null_heavy_csv,
            format: FileFormat::Csv,
        },
        Dataset {
            name: "high_card_str_csv",
            schema: high_card_schema,
            records: high_card,
            format: FileFormat::Csv,
        },
        Dataset {
            name: "flat_json",
            schema: flat_json_schema,
            records: flat_json,
            format: FileFormat::Json,
        },
        Dataset {
            name: "null_heavy_flat_json",
            schema: sparse_json_schema,
            records: sparse_json,
            format: FileFormat::Json,
        },
        Dataset {
            name: "tpch_order_lineitems_json",
            schema: tpch::order_lineitems_schema(),
            records: tpch::gen_order_lineitems(0.0005, 7),
            format: FileFormat::Json,
        },
        Dataset {
            name: "yelp_business_json",
            schema: yelp::business_schema(),
            records: yelp::gen_business(150, 7),
            format: FileFormat::Json,
        },
        Dataset {
            name: "spam_json",
            schema: spam::spam_json_schema(),
            records: spam::gen_spam_json(400, 7),
            format: FileFormat::Json,
        },
        Dataset {
            name: "null_heavy_json",
            schema: null_heavy_schema,
            records: null_heavy,
            format: FileFormat::Json,
        },
    ]
}

/// Builds queries over a dataset: every numeric leaf gets a range query,
/// the first string leaf equality/inequality/ordered queries (against
/// `string_lit`, a literal sampled from the data so predicates actually
/// select), plus an unfiltered scan and a non-compilable (OR) predicate
/// to exercise the fallback path. Both record-level (non-repeated leaves
/// only) and element-level variants are generated where the schema
/// allows.
fn queries(schema: &Schema, string_lit: Option<&str>) -> Vec<(Vec<usize>, Option<Expr>, bool)> {
    let leaves = schema.leaves();
    let numeric: Vec<usize> = (0..leaves.len())
        .filter(|&l| {
            matches!(
                leaves[l].scalar_type,
                recache::types::ScalarType::Int | recache::types::ScalarType::Float
            )
        })
        .collect();
    let strings: Vec<usize> = (0..leaves.len())
        .filter(|&l| leaves[l].scalar_type == recache::types::ScalarType::Str)
        .collect();
    let record_level = |accessed: &[usize]| accessed.iter().all(|&l| leaves[l].max_rep == 0);

    let mut out = Vec::new();
    // Range filter + aggregate over consecutive numeric leaf pairs.
    for pair in numeric.windows(2).step_by(2) {
        let accessed = vec![pair[0], pair[1]];
        let pred = Some(Expr::between(0, 2.0, 5_000.0));
        out.push((accessed.clone(), pred, record_level(&accessed)));
    }
    // Strict / inequality operators on the first numeric leaf.
    if let Some(&leaf) = numeric.first() {
        for op in [CmpOp::Lt, CmpOp::Gt, CmpOp::Ne, CmpOp::Eq] {
            out.push((
                vec![leaf],
                Some(Expr::cmp(0, op, 10i64)),
                record_level(&[leaf]),
            ));
        }
    }
    // String equality and ordering: both a fixed probe and, when the
    // caller sampled one, a literal that actually occurs in the data —
    // exercising the dict kernels' exact-match and code-range paths with
    // real selections (and their miss paths via the probe).
    if let Some(&leaf) = strings.first() {
        let accessed = vec![leaf];
        let rl = record_level(&accessed);
        out.push((accessed.clone(), Some(Expr::cmp(0, CmpOp::Ge, "m")), rl));
        let mut lits = vec!["m".to_owned()];
        if let Some(lit) = string_lit {
            lits.push(lit.to_owned());
        }
        for lit in lits {
            for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Gt] {
                out.push((accessed.clone(), Some(Expr::cmp(0, op, lit.as_str())), rl));
            }
        }
    }
    // Unfiltered element-level scan over the widest projection, plus a
    // record-level scan over the non-repeated leaves (the planner only
    // sets `record_level` when no repeated leaf is accessed).
    let all: Vec<usize> = (0..leaves.len()).collect();
    out.push((all, None, false));
    let non_repeated: Vec<usize> = (0..leaves.len())
        .filter(|&l| leaves[l].max_rep == 0)
        .collect();
    if !non_repeated.is_empty() {
        out.push((non_repeated, None, true));
    }
    // Non-compilable OR predicate: exercises the row fallback even in
    // vectorized mode.
    if numeric.len() >= 2 {
        let accessed = vec![numeric[0], numeric[1]];
        let pred = Some(Expr::Or(vec![
            Expr::cmp(0, CmpOp::Lt, 5i64),
            Expr::cmp(1, CmpOp::Gt, 100i64),
        ]));
        out.push((accessed.clone(), pred, record_level(&accessed)));
    }
    out
}

fn aggregates_for(accessed: &[usize]) -> Vec<AggSpec> {
    let mut aggs = vec![AggSpec {
        table: 0,
        slot: None,
        func: AggFunc::Count,
    }];
    for (slot, _) in accessed.iter().enumerate().take(3) {
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            aggs.push(AggSpec {
                table: 0,
                slot: Some(slot),
                func,
            });
        }
    }
    aggs
}

fn plan_for(access: AccessPath, query: &(Vec<usize>, Option<Expr>, bool)) -> QueryPlan {
    let (accessed, predicate, record_level) = query;
    QueryPlan {
        tables: vec![TablePlan {
            name: "t".into(),
            access,
            accessed: accessed.clone(),
            predicate: predicate.clone(),
            record_level: *record_level,
            collect_satisfying: false,
        }],
        joins: vec![],
        aggregates: aggregates_for(accessed),
    }
}

#[test]
fn vectorized_equals_row_across_layouts_and_datasets() {
    equivalence_suite(1);
}

#[test]
fn parallel_2_threads_equals_row_across_layouts_and_datasets() {
    equivalence_suite(2);
}

#[test]
fn parallel_8_threads_equals_row_across_layouts_and_datasets() {
    equivalence_suite(8);
}

/// First non-null value of the first string leaf, for predicates that
/// actually select rows.
fn sample_string_literal(schema: &Schema, records: &[Value]) -> Option<String> {
    let leaves = schema.leaves();
    let leaf =
        (0..leaves.len()).find(|&l| leaves[l].scalar_type == recache::types::ScalarType::Str)?;
    for record in records {
        for row in recache::types::flatten_record(schema, record) {
            if let Value::Str(s) = &row[leaf] {
                if !s.is_empty() {
                    return Some(s.clone());
                }
            }
        }
    }
    None
}

fn equivalence_suite(threads: usize) {
    let options = vectorized(threads);
    for ds in datasets() {
        let bytes = match ds.format {
            FileFormat::Csv => csv::write_csv(&ds.schema, &flat_rows(&ds.records)),
            FileFormat::Json => json::write_json(&ds.schema, &ds.records),
        };
        // Two raw files per CSV dataset: a cold one whose batched-vs-row
        // axis covers the *first-scan* tokenizers, and a warm one (posmap
        // built) covering the mapped scans and the offsets path.
        let cold_file = Arc::new(RawFile::from_bytes(
            bytes.clone(),
            ds.format,
            ds.schema.clone(),
        ));
        let file = Arc::new(RawFile::from_bytes(bytes, ds.format, ds.schema.clone()));
        let all = vec![true; file.leaves().len()];
        file.scan_projected(&all, &mut |_, _| {}).unwrap();
        let offsets = Arc::new(OffsetStore::build(
            (0..ds.records.len() as u32).collect(),
            0,
        ));
        let columnar = Arc::new(ColumnStore::build(&ds.schema, ds.records.iter()));
        let dremel = Arc::new(DremelStore::build(&ds.schema, ds.records.iter()));
        let row = Arc::new(RowStore::build(&ds.schema, ds.records.iter()));
        // The dict-vs-plain axis: encoding disabled outright.
        let columnar_plain = Arc::new(ColumnStore::build_with_dict(
            &ds.schema,
            ds.records.iter(),
            None,
        ));
        let dremel_plain = Arc::new(DremelStore::build_with_dict(
            &ds.schema,
            ds.records.iter(),
            None,
        ));
        let string_lit = sample_string_literal(&ds.schema, &ds.records);

        for (qi, query) in queries(&ds.schema, string_lit.as_deref())
            .iter()
            .enumerate()
        {
            let mut accesses: Vec<(&str, AccessPath)> = vec![
                ("raw_mapped", AccessPath::Raw(Arc::clone(&file))),
                (
                    "offsets",
                    AccessPath::Offsets {
                        file: Arc::clone(&file),
                        store: Arc::clone(&offsets),
                    },
                ),
                ("columnar", AccessPath::Columnar(Arc::clone(&columnar))),
                ("dremel", AccessPath::Dremel(Arc::clone(&dremel))),
                ("row", AccessPath::Row(Arc::clone(&row))),
                (
                    "columnar_plain",
                    AccessPath::Columnar(Arc::clone(&columnar_plain)),
                ),
                (
                    "dremel_plain",
                    AccessPath::Dremel(Arc::clone(&dremel_plain)),
                ),
            ];
            if cold_file.supports_batch_scan() {
                // Cold flat raw file (CSV or flat JSON): the vectorized
                // run is the batched first scan. Reset per query so every
                // predicate shape hits the tokenizer, not the map its
                // predecessor built. Nested JSON files never enter this
                // axis — they take the row fallback, asserted separately.
                cold_file.reset_scan_state();
                accesses.insert(
                    0,
                    ("raw_first_scan", AccessPath::Raw(Arc::clone(&cold_file))),
                );
            }
            let reference =
                execute_with(&plan_for(AccessPath::Raw(Arc::clone(&file)), query), &ROW).unwrap();
            for (path_name, access) in accesses {
                let plan = plan_for(access, query);
                let row_out = execute_with(&plan, &ROW).unwrap();
                if path_name == "raw_first_scan" {
                    cold_file.reset_scan_state();
                }
                let vec_out = execute_with(&plan, &options).unwrap();
                let ctx = format!(
                    "dataset {} query {qi} path {path_name} threads {threads}",
                    ds.name
                );
                assert_eq!(
                    row_out.values, vec_out.values,
                    "{ctx}: vectorized values diverged from row-at-a-time"
                );
                assert_eq!(
                    row_out.rows_aggregated, vec_out.rows_aggregated,
                    "{ctx}: vectorized row count diverged"
                );
                assert_eq!(
                    vec_out.values, reference.values,
                    "{ctx}: cache path diverged from raw reference"
                );
                assert_eq!(
                    vec_out.rows_aggregated, reference.rows_aggregated,
                    "{ctx}: cache path row count diverged from raw reference"
                );
            }
        }
    }
}

#[test]
fn vectorized_cache_scans_report_nondegenerate_cost_split() {
    // Dremel element-level scans must attribute both assembly (C) and
    // value gathering (D); columnar scans must report their cost as
    // (almost entirely) data access — the split Eq. 4 of the paper needs.
    let records = tpch::gen_order_lineitems(0.001, 3);
    let schema = tpch::order_lineitems_schema();
    let dremel = Arc::new(DremelStore::build(&schema, records.iter()));
    let columnar = Arc::new(ColumnStore::build(&schema, records.iter()));
    let q = schema
        .leaf_index(&FieldPath::parse("lineitems.l_quantity"))
        .unwrap();
    let p = schema
        .leaf_index(&FieldPath::parse("lineitems.l_extendedprice"))
        .unwrap();
    let query = (
        vec![q.min(p), q.max(p)],
        Some(Expr::between(0, 5.0, 45.0)),
        false,
    );

    let out = execute_with(
        &plan_for(AccessPath::Dremel(dremel), &query),
        &vectorized(1),
    )
    .unwrap();
    let cost = out.stats.tables[0].cache_scan.expect("cache scan cost");
    assert!(
        cost.compute_ns > 0,
        "dremel assembly must show compute cost"
    );
    assert!(cost.data_ns > 0, "dremel gather must show data cost");
    assert!(cost.rows > 0);

    let out = execute_with(
        &plan_for(AccessPath::Columnar(columnar), &query),
        &vectorized(1),
    )
    .unwrap();
    let cost = out.stats.tables[0].cache_scan.expect("cache scan cost");
    assert!(cost.total_ns() > 0);
    assert!(cost.rows_visited > 0);
}

#[test]
fn dict_encoding_triggers_only_for_low_cardinality_leaves() {
    for ds in datasets() {
        let columnar = ColumnStore::build(&ds.schema, ds.records.iter());
        let leaves = ds.schema.leaves();
        for (leaf, meta) in leaves.iter().enumerate() {
            if meta.scalar_type != recache::types::ScalarType::Str {
                assert!(
                    !columnar.leaf_is_dict(leaf),
                    "{}: non-string leaf {leaf} must never dict-encode",
                    ds.name
                );
            }
        }
        match ds.name {
            // 64 distinct comments over thousands of rows.
            "tpch_lineitem_csv" => {
                let comment = ds
                    .schema
                    .leaf_index(&FieldPath::parse("l_comment"))
                    .unwrap();
                assert!(
                    columnar.leaf_is_dict(comment),
                    "l_comment is low-cardinality and must dict-encode"
                );
            }
            // 11 tags (plus nulls) over 700 rows.
            "null_heavy_csv" => {
                let s = ds.schema.leaf_index(&FieldPath::parse("s")).unwrap();
                assert!(columnar.leaf_is_dict(s));
            }
            // Unique per row: must NOT dict-encode.
            "high_card_str_csv" => {
                let u = ds.schema.leaf_index(&FieldPath::parse("u")).unwrap();
                assert!(
                    !columnar.leaf_is_dict(u),
                    "high-cardinality strings must stay plain"
                );
            }
            _ => {}
        }
    }
    // The Dremel builder applies the same rule.
    let records = tpch::gen_order_lineitems(0.0005, 7);
    let schema = tpch::order_lineitems_schema();
    let dremel = DremelStore::build(&schema, records.iter());
    let comment = schema
        .leaf_index(&FieldPath::parse("lineitems.l_comment"))
        .unwrap();
    assert!(dremel.leaf_is_dict(comment));
    let plain = DremelStore::build_with_dict(&schema, records.iter(), None);
    assert!(!plain.leaf_is_dict(comment));
}

#[test]
fn dict_encoding_shrinks_reported_store_bytes() {
    // The bytes the eviction budget sees are the store's real footprint:
    // dictionary encoding must show up as a smaller byte_size, not a
    // cosmetic view.
    let (_, lineitems) = tpch::gen_orders_and_lineitems(0.0005, 7);
    let schema = tpch::lineitem_schema();
    let records: Vec<Value> = lineitems.into_iter().map(Value::Struct).collect();
    let dict = ColumnStore::build(&schema, records.iter());
    let plain = ColumnStore::build_with_dict(&schema, records.iter(), None);
    assert!(
        dict.byte_size() < plain.byte_size(),
        "dict {} must be smaller than plain {}",
        dict.byte_size(),
        plain.byte_size()
    );
}

/// Seeded property test: across random pools, row counts, null rates and
/// literals (present and absent), dictionary code-range compares must
/// agree with the row path's `cmp_sql` for every operator — on all three
/// eager store layouts.
#[test]
fn dict_code_range_compares_agree_with_cmp_sql_property() {
    let mut rng = StdRng::seed_from_u64(0x00d1_c7c0);
    let schema = Schema::new(vec![
        Field::new("s", DataType::Str),
        Field::required("k", DataType::Int),
    ]);
    for case in 0..25 {
        let rows = rng.random_range(64..400usize);
        let pool_size = rng.random_range(1..20usize);
        let null_pct = rng.random_range(0..40u32);
        // Random distinct strings of varied lengths (some share
        // prefixes, which stresses byte-wise ordering).
        let pool: Vec<String> = (0..pool_size)
            .map(|i| {
                let len = rng.random_range(1..10usize);
                let mut s = String::new();
                for _ in 0..len {
                    s.push(char::from(b'a' + rng.random_range(0..4u8)));
                }
                format!("{s}{i}")
            })
            .collect();
        let records: Vec<Value> = (0..rows)
            .map(|i| {
                let s = if rng.random_range(0..100u32) < null_pct {
                    Value::Null
                } else {
                    Value::Str(pool[rng.random_range(0..pool.len())].clone())
                };
                Value::Struct(vec![s, Value::Int(i as i64)])
            })
            .collect();
        // Force encoding regardless of cardinality: ratio 1.0 admits
        // every pool (the property must hold for any encoded column).
        let columnar = Arc::new(ColumnStore::build_with_dict(
            &schema,
            records.iter(),
            Some(1.0),
        ));
        assert!(columnar.leaf_is_dict(0), "case {case}: ratio 1.0 encodes");
        let dremel = Arc::new(DremelStore::build_with_dict(
            &schema,
            records.iter(),
            Some(1.0),
        ));
        let row = Arc::new(RowStore::build(&schema, records.iter()));

        // Literals: from the pool, mutated (absent), below-all, above-all.
        let mut literals: Vec<String> = vec![
            pool[rng.random_range(0..pool.len())].clone(),
            format!("{}x", pool[rng.random_range(0..pool.len())]),
            String::new(),
            "zzzzzzzzzz".to_owned(),
        ];
        literals.push(format!("b{}", rng.random_range(0..10u32)));
        for lit in &literals {
            for op in [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ] {
                let query = (vec![0usize, 1], Some(Expr::cmp(0, op, lit.as_str())), true);
                let reference = execute_with(
                    &plan_for(AccessPath::Columnar(Arc::clone(&columnar)), &query),
                    &ROW,
                )
                .unwrap();
                for (name, access) in [
                    ("columnar", AccessPath::Columnar(Arc::clone(&columnar))),
                    ("dremel", AccessPath::Dremel(Arc::clone(&dremel))),
                    ("row", AccessPath::Row(Arc::clone(&row))),
                ] {
                    let plan = plan_for(access, &query);
                    let vec_out = execute_with(&plan, &vectorized(1)).unwrap();
                    assert_eq!(
                        vec_out.values, reference.values,
                        "case {case} layout {name} op {op:?} lit {lit:?}"
                    );
                    let row_out = execute_with(&plan, &ROW).unwrap();
                    assert_eq!(
                        row_out.values, reference.values,
                        "case {case} layout {name} op {op:?} lit {lit:?} (row)"
                    );
                }
            }
        }
    }
}

/// Shape detection drives the raw dispatch: flat JSON must take the
/// batched path, nested/ragged JSON must take the row-at-a-time
/// flattening fallback (`supports_batch_scan` is exactly the predicate
/// the executor's `batchable` uses, so asserting it here asserts which
/// path a vectorized plan runs). The nested files still execute
/// correctly under vectorized options — via the fallback — and install
/// the same records-only posmap the row scan builds.
#[test]
fn nested_json_engages_the_row_fallback_and_flat_json_batches() {
    let mut saw_flat = false;
    let mut saw_nested = false;
    for ds in datasets() {
        if ds.format != FileFormat::Json {
            continue;
        }
        let bytes = json::write_json(&ds.schema, &ds.records);
        let file = Arc::new(RawFile::from_bytes(bytes, ds.format, ds.schema.clone()));
        assert_eq!(
            file.supports_batch_scan(),
            !ds.schema.has_nested(),
            "{}: flat JSON batches, nested JSON falls back",
            ds.name
        );
        if ds.schema.has_nested() {
            saw_nested = true;
            // A vectorized execution on the nested file runs the row
            // fallback: results match the row mode exactly, a first scan
            // is reported, and the posmap the scan installs is the row
            // tokenizer's records-only map.
            let leaves = ds.schema.leaves();
            let accessed: Vec<usize> = (0..leaves.len()).collect();
            let plan = plan_for(AccessPath::Raw(Arc::clone(&file)), &(accessed, None, false));
            let vec_out = execute_with(&plan, &vectorized(4)).unwrap();
            assert_eq!(
                vec_out.stats.tables[0].access,
                recache::engine::exec::AccessKind::RawFirstScan
            );
            let row_out = execute_with(&plan, &ROW).unwrap();
            assert_eq!(vec_out.values, row_out.values, "{}", ds.name);
            assert_eq!(vec_out.rows_aggregated, row_out.rows_aggregated);
            let map = file.posmap().expect("fallback scan installs the map");
            assert!(!map.has_field_offsets());
            assert_eq!(map.record_count(), ds.records.len());
        } else {
            saw_flat = true;
        }
    }
    assert!(saw_flat, "suite must include a flat JSON dataset");
    assert!(saw_nested, "suite must include nested JSON datasets");
}

/// Seeded property test: the batched flat-JSON tokenizer must agree with
/// the row tokenizer record for record, value for value, across
/// randomized key orders, absent keys, duplicate keys, unknown keys with
/// nested junk, string escapes (`\"`, `\\`, `\n`, `\t`, `\u`), numeric
/// edge forms (exponent notation, `-0.0`, int/float mixes, i64
/// overflow), explicit nulls, type mismatches, and random whitespace —
/// on random projections, first-scan and posmap-mapped.
#[test]
fn json_batched_tokenizer_agrees_with_row_tokenizer_property() {
    let mut rng = StdRng::seed_from_u64(0x4a50_11f5);
    let schema = Schema::new(vec![
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
        Field::new("s", DataType::Str),
        Field::new("b", DataType::Bool),
    ]);
    let keys = ["i", "f", "s", "b"];
    // Value literals drawn regardless of field: the schema type decides
    // how each parses (mismatches degrade to null on both paths).
    let literals = [
        "null",
        "true",
        "false",
        "3",
        "-7",
        "0",
        "9223372036854775807",
        "92233720368547758990", // i64 overflow -> widens to f64
        "3.9",
        "-0.0",
        "1e3",
        "2.5e-2",
        "-1.5E2",
        "0.1",
        "123456.789",
        "\"plain\"",
        "\"a\\\"b\\\\c\"",
        "\"x\\ny\\tz\"",
        "\"\\u00e9clair\"",
        "\"s,with:braces}and[\"",
        "[1,2,3]",
        "{\"nested\":{\"deep\":[1,\"}\"]}}",
    ];
    let junk_values = [
        "[1,{\"w\":\"}\"},3]",
        "\"ignored, with : and }\"",
        "-12.5e2",
        "{\"a\":[{\"b\":null}]}",
        "true",
    ];
    for case in 0..20 {
        let rows = rng.random_range(40..250usize);
        let mut bytes: Vec<u8> = Vec::new();
        for _ in 0..rows {
            let mut order: Vec<usize> = (0..keys.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..(i as u32 + 1)) as usize;
                order.swap(i, j);
            }
            let mut parts: Vec<String> = Vec::new();
            for &k in &order {
                if rng.random_range(0..100u32) < 25 {
                    continue; // absent key
                }
                let lit = literals[rng.random_range(0..literals.len() as u32) as usize];
                let ws1 = if rng.random_range(0..4u32) == 0 {
                    " "
                } else {
                    ""
                };
                let ws2 = if rng.random_range(0..4u32) == 0 {
                    " "
                } else {
                    ""
                };
                parts.push(format!("\"{}\"{ws1}:{ws2}{lit}", keys[k]));
            }
            if rng.random_range(0..100u32) < 35 {
                let junk = junk_values[rng.random_range(0..junk_values.len() as u32) as usize];
                let pos = rng.random_range(0..(parts.len() as u32 + 1)) as usize;
                parts.insert(pos, format!("\"z{}\":{junk}", rng.random_range(0..3u32)));
            }
            if rng.random_range(0..100u32) < 10 {
                // Duplicate key: last value wins on both paths.
                parts.push("\"i\":5".to_owned());
            }
            bytes.extend_from_slice(format!("{{{}}}\n", parts.join(",")).as_bytes());
        }

        let row_file = RawFile::from_bytes(bytes.clone(), FileFormat::Json, schema.clone());
        let batched_file = RawFile::from_bytes(bytes, FileFormat::Json, schema.clone());
        assert!(batched_file.supports_batch_scan(), "case {case}");

        // Random non-empty ascending projection (row scans emit accessed
        // leaves in leaf order).
        let mut projection: Vec<usize> = (0..keys.len())
            .filter(|_| rng.random_range(0..2u32) == 0)
            .collect();
        if projection.is_empty() {
            projection = (0..keys.len()).collect();
        }
        let mut accessed = vec![false; keys.len()];
        for &leaf in &projection {
            accessed[leaf] = true;
        }
        let mut expected: Vec<(u32, Vec<Value>)> = Vec::new();
        row_file
            .scan_projected(&accessed, &mut |id, row| {
                expected.push((id as u32, row));
            })
            .unwrap();

        let collect = |file: &RawFile| {
            let chunks = file.batch_chunks();
            let mut got: Vec<(u32, Vec<Value>)> = Vec::new();
            file.scan_batches_range(&projection, true, 0, chunks, &mut |batch, sel| {
                for &i in sel.as_slice() {
                    let i = i as usize;
                    got.push((
                        batch.record_ids[i],
                        batch.columns.iter().map(|c| c.value(i)).collect(),
                    ));
                }
            })
            .unwrap();
            got
        };
        // First scan (tokenizes + installs the posmap), then mapped.
        let first = collect(&batched_file);
        assert_eq!(first, expected, "case {case}: batched first scan diverged");
        let map = batched_file.posmap().expect("coverage installs the map");
        assert_eq!(
            map.record_count(),
            row_file.posmap().unwrap().record_count()
        );
        let mapped = collect(&batched_file);
        assert_eq!(
            mapped, expected,
            "case {case}: batched mapped scan diverged"
        );
    }
}

#[test]
fn satisfying_ids_from_cache_scans_are_source_record_ids() {
    // A store materialized from a subset of file records must report the
    // *file* record ids of satisfying tuples, not store-local indices —
    // the lazy/offsets admission path depends on it.
    let schema = Schema::new(vec![
        Field::required("k", DataType::Int),
        Field::required("v", DataType::Float),
    ]);
    let cached_ids: Vec<u32> = vec![10, 25, 40, 55];
    let records: Vec<Value> = cached_ids
        .iter()
        .map(|&id| Value::Struct(vec![Value::Int(id as i64), Value::Float(id as f64)]))
        .collect();
    let mut columnar = ColumnStore::build(&schema, records.iter());
    columnar.set_source_record_ids(cached_ids.clone());
    let mut dremel = DremelStore::build(&schema, records.iter());
    dremel.set_source_record_ids(cached_ids.clone());
    let mut row = RowStore::build(&schema, records.iter());
    row.set_source_record_ids(cached_ids.clone());

    for (name, access) in [
        ("columnar", AccessPath::Columnar(Arc::new(columnar))),
        ("dremel", AccessPath::Dremel(Arc::new(dremel))),
        ("row", AccessPath::Row(Arc::new(row))),
    ] {
        for options in [ROW, vectorized(1), vectorized(4)] {
            let plan = QueryPlan {
                tables: vec![TablePlan {
                    name: "t".into(),
                    access: access.clone(),
                    accessed: vec![0, 1],
                    predicate: Some(Expr::cmp(0, CmpOp::Ge, 25i64)),
                    record_level: true,
                    collect_satisfying: true,
                }],
                joins: vec![],
                aggregates: vec![AggSpec {
                    table: 0,
                    slot: None,
                    func: AggFunc::Count,
                }],
            };
            let out = execute_with(&plan, &options).unwrap();
            assert_eq!(
                out.stats.tables[0].satisfying,
                Some(vec![25, 40, 55]),
                "{name} (vectorized={}) must propagate source record ids",
                options.vectorized
            );
        }
    }
}
