//! Shared fixtures for the integration suites.

use recache::data::{csv, gen::tpch};
use recache::types::Value;
use recache::workload::Domains;
use recache::{ReCache, ReCacheBuilder};
use std::collections::HashMap;

/// A session with the five TPC-H CSV tables registered, plus per-table
/// value domains for the workload generators.
pub fn tpch_session(
    builder: ReCacheBuilder,
    sf: f64,
    seed: u64,
) -> (ReCache, HashMap<String, Domains>) {
    let mut session = builder.build();
    let mut domains = HashMap::new();
    let to_records = |rows: &[Vec<Value>]| -> Vec<Value> {
        rows.iter().map(|r| Value::Struct(r.clone())).collect()
    };
    let (orders, lineitems) = tpch::gen_orders_and_lineitems(sf, seed);
    for (name, schema, rows) in [
        ("orders", tpch::orders_schema(), orders),
        ("lineitem", tpch::lineitem_schema(), lineitems),
        (
            "customer",
            tpch::customer_schema(),
            tpch::gen_customer(sf, seed),
        ),
        ("part", tpch::part_schema(), tpch::gen_part(sf, seed)),
        (
            "partsupp",
            tpch::partsupp_schema(),
            tpch::gen_partsupp(sf, seed),
        ),
    ] {
        domains.insert(
            name.to_owned(),
            Domains::compute(&schema, to_records(&rows).iter()),
        );
        session.register_csv_bytes(name, csv::write_csv(&schema, &rows), schema);
    }
    (session, domains)
}
