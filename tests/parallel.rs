//! Parallel-execution determinism.
//!
//! A parallel aggregate must produce *identical bit patterns* across
//! repeated runs at a fixed thread count — and, because sums accumulate
//! through the order-independent `ExactSum` superaccumulator and
//! extremes/ids merge in fixed task order, also across *different* thread
//! counts and against single-threaded execution. Work stealing hands
//! chunks to different workers on every run; none of that may show up in
//! query results.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recache::engine::exec::{execute_with, ExecOptions};
use recache::engine::expr::{CmpOp, Expr};
use recache::engine::plan::{AccessPath, AggFunc, AggSpec, QueryPlan, TablePlan};
use recache::layout::{ColumnStore, DremelStore, RowStore};
use recache::types::{DataType, Field, Schema, Value};
use std::sync::Arc;

fn options(threads: usize) -> ExecOptions {
    ExecOptions {
        vectorized: true,
        threads,
        cancel: None,
        reprice: None,
    }
}

/// Floats spanning ~30 orders of magnitude with mixed signs: the worst
/// case for reduction-order-dependent summation. Any merge of `f64`
/// partials would differ between runs in the last ulps; the exact
/// accumulator must not.
fn wild_float_records(n: usize, seed: u64) -> (Schema, Vec<Value>) {
    let schema = Schema::new(vec![
        Field::required("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let records = (0..n)
        .map(|i| {
            let v = if i % 97 == 0 {
                Value::Null
            } else {
                let mag: f64 = rng.random_range(-15.0..15.0);
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                Value::Float(sign * rng.random_range(1.0..10.0) * 10f64.powf(mag))
            };
            Value::Struct(vec![Value::Int((i % 512) as i64), v])
        })
        .collect();
    (schema, records)
}

fn agg_plan(access: AccessPath) -> QueryPlan {
    QueryPlan {
        tables: vec![TablePlan {
            name: "t".into(),
            access,
            accessed: vec![0, 1],
            predicate: Some(Expr::cmp(0, CmpOp::Lt, 400i64)),
            record_level: true,
            collect_satisfying: true,
        }],
        joins: vec![],
        aggregates: [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ]
        .into_iter()
        .map(|func| AggSpec {
            table: 0,
            slot: Some(1),
            func,
        })
        .collect(),
    }
}

/// Exact bit pattern of every output value (plain `==` on `f64` would
/// conflate -0.0 with 0.0 and miss nothing else; bits catch everything).
fn value_bits(values: &[Value]) -> Vec<u64> {
    values
        .iter()
        .map(|v| match v {
            Value::Float(f) => f.to_bits(),
            Value::Int(i) => *i as u64,
            other => panic!("unexpected aggregate output {other:?}"),
        })
        .collect()
}

#[test]
fn parallel_float_aggregates_are_deterministic_across_runs() {
    let (schema, records) = wild_float_records(60_000, 0xF00D);
    let stores: Vec<(&str, AccessPath)> = vec![
        (
            "columnar",
            AccessPath::Columnar(Arc::new(ColumnStore::build(&schema, records.iter()))),
        ),
        (
            "row",
            AccessPath::Row(Arc::new(RowStore::build(&schema, records.iter()))),
        ),
        (
            "dremel",
            AccessPath::Dremel(Arc::new(DremelStore::build(&schema, records.iter()))),
        ),
    ];
    for (name, access) in stores {
        let plan = agg_plan(access);
        let reference = execute_with(&plan, &options(1)).unwrap();
        let reference_bits = value_bits(&reference.values);
        for threads in [2usize, 4, 8] {
            for run in 0..5 {
                let out = execute_with(&plan, &options(threads)).unwrap();
                assert_eq!(
                    value_bits(&out.values),
                    reference_bits,
                    "{name}: threads {threads} run {run} diverged from single-threaded bits"
                );
                assert_eq!(
                    out.rows_aggregated, reference.rows_aggregated,
                    "{name}: row count must be stable"
                );
                assert_eq!(
                    out.stats.tables[0].satisfying, reference.stats.tables[0].satisfying,
                    "{name}: satisfying ids must merge in row order"
                );
            }
        }
    }
}

#[test]
fn parallel_phase_timings_sum_worker_accumulators() {
    // The D/C split the cost model consumes must aggregate every
    // worker's measured time: rows/rows_visited are exact counters, so
    // their parallel totals must equal the serial totals, and the
    // parallel timings must be nonzero wherever the serial ones are.
    let (schema, records) = wild_float_records(60_000, 0xBEEF);
    let plan = agg_plan(AccessPath::Columnar(Arc::new(ColumnStore::build(
        &schema,
        records.iter(),
    ))));
    let serial = execute_with(&plan, &options(1)).unwrap();
    let parallel = execute_with(&plan, &options(4)).unwrap();
    let s = serial.stats.tables[0].cache_scan.unwrap();
    let p = parallel.stats.tables[0].cache_scan.unwrap();
    assert_eq!(p.rows, s.rows, "emitted rows must sum across workers");
    assert_eq!(
        p.rows_visited, s.rows_visited,
        "visited row slots must sum across workers"
    );
    assert!(p.data_ns > 0, "data-access time must survive the merge");
    assert!(
        p.total_ns() > 0,
        "total scan cost must aggregate worker accumulators"
    );
}
