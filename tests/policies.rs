//! Integration tests for the cache policies working end-to-end inside a
//! session: admission thresholds, eviction policies with and without the
//! offline oracle, layout switching, and the registry counters.

mod common;

use common::tpch_session;
use recache::data::gen::tpch;
use recache::data::{csv, json};
use recache::layout::{CacheData, LayoutKind};
use recache::types::Value;
use recache::workload::{
    spa_workload, tpch_spj_workload, Domains, PoolPhase, SpaConfig, SpjConfig, WorkloadOracle,
};
use recache::{Admission, Eviction, LayoutPolicy, QueryRequest, ReCache};

#[test]
fn every_eviction_policy_respects_capacity() {
    let sf = 0.0004;
    let capacity = 30_000;
    for eviction in [
        Eviction::GreedyDual,
        Eviction::Lru,
        Eviction::Lfu,
        Eviction::LruJsonPriority,
        Eviction::MonetDb,
        Eviction::Vectorwise,
    ] {
        let (session, domains) = tpch_session(
            ReCache::builder()
                .eviction(eviction)
                .cache_capacity_bytes(capacity),
            sf,
            7,
        );
        let specs = tpch_spj_workload(&domains, 30, &SpjConfig::default(), 7);
        for spec in &specs {
            session.execute(&QueryRequest::spec(spec.clone())).unwrap();
            assert!(
                session.cache().total_bytes() <= capacity,
                "{} exceeded capacity: {} > {capacity}",
                eviction.name(),
                session.cache().total_bytes()
            );
        }
    }
}

#[test]
fn offline_policies_work_with_workload_oracle() {
    let sf = 0.0004;
    for eviction in [Eviction::FarthestFirst, Eviction::LogOptimal] {
        let (session, domains) = tpch_session(
            ReCache::builder()
                .eviction(eviction)
                .cache_capacity_bytes(40_000),
            sf,
            9,
        );
        let specs = tpch_spj_workload(&domains, 30, &SpjConfig::default(), 9);
        let oracle = WorkloadOracle::build(&session, &specs).unwrap();
        session.set_oracle(Box::new(oracle));
        for spec in &specs {
            session.execute(&QueryRequest::spec(spec.clone())).unwrap();
        }
        assert!(session.cache().total_bytes() <= 40_000);
        let c = session.cache().counters();
        assert!(c.admissions > 0, "{}: no admissions", eviction.name());
    }
}

#[test]
fn admission_threshold_controls_eager_fraction() {
    let sf = 0.0006;
    let mut eager_counts = Vec::new();
    for threshold in [0.01, 0.5] {
        let (session, domains) = tpch_session(
            ReCache::builder().admission(Admission::with_threshold(threshold)),
            sf,
            11,
        );
        let specs = tpch_spj_workload(&domains, 25, &SpjConfig::default(), 11);
        for spec in &specs {
            session.execute(&QueryRequest::spec(spec.clone())).unwrap();
        }
        let eager = session
            .cache()
            .snapshot()
            .into_iter()
            .filter(|e| !matches!(e.data, CacheData::Offsets(_)))
            .count();
        eager_counts.push(eager);
    }
    assert!(
        eager_counts[0] <= eager_counts[1],
        "a stricter threshold must not cache eagerly more often: {eager_counts:?}"
    );
}

#[test]
fn auto_layout_switches_on_phase_change() {
    let mut session = ReCache::builder()
        .layout_policy(LayoutPolicy::Auto)
        .admission(Admission::eager_only())
        .build();
    let records = tpch::gen_order_lineitems(0.0006, 3);
    let schema = tpch::order_lineitems_schema();
    let domains = Domains::compute(&schema, records.iter());
    session.register_json_bytes(
        "orderLineitems",
        json::write_json(&schema, &records),
        schema,
    );
    session
        .execute(&QueryRequest::sql("SELECT count(*) FROM orderLineitems"))
        .unwrap();
    // The warm entry starts in the Dremel layout (nested default).
    let entry = session.cache().snapshot().into_iter().next().unwrap();
    assert_eq!(entry.data.layout(), LayoutKind::Dremel);

    // A sustained all-attributes phase should flip it to columnar.
    let specs = spa_workload(
        "orderLineitems",
        &domains,
        &[(PoolPhase::AllAttrs, 60)],
        &SpaConfig::default(),
        3,
    );
    let mut switched_to_columnar = false;
    for spec in &specs {
        let r = session.execute(&QueryRequest::spec(spec.clone())).unwrap();
        for t in &r.stats.tables {
            if let Some((from, to)) = t.layout_switch {
                assert_eq!(from, LayoutKind::Dremel);
                assert_eq!(to, LayoutKind::Columnar);
                switched_to_columnar = true;
            }
        }
    }
    assert!(switched_to_columnar, "expected a Dremel -> columnar switch");

    // A sustained non-nested phase should flip it back. The window
    // deliberately makes switching sticky (§6.1.1: considering all
    // queries since the previous switch "prevents excessive switching
    // overhead"), so this phase must be long enough to outweigh the
    // element-level observations accumulated after the first switch.
    let specs = spa_workload(
        "orderLineitems",
        &domains,
        &[(PoolPhase::NonNestedOnly, 400)],
        &SpaConfig::default(),
        4,
    );
    let mut switched_back = false;
    for spec in &specs {
        let r = session.execute(&QueryRequest::spec(spec.clone())).unwrap();
        for t in &r.stats.tables {
            if let Some((_, to)) = t.layout_switch {
                switched_back |= to == LayoutKind::Dremel;
            }
        }
    }
    assert!(switched_back, "expected a columnar -> Dremel switch");
}

#[test]
fn benefit_metric_keeps_expensive_json_under_pressure() {
    // Two sources: an expensive JSON file and a cheap CSV file of similar
    // cached size. Under pressure, ReCache's cost-based eviction should
    // preferentially keep the JSON-derived entry (higher rebuild cost),
    // while plain LRU treats them alike.
    let seed = 13;
    let sf = 0.0004;
    // Size the budget from a probe run so the JSON entry plus a couple of
    // CSV entries fit, but the full flood does not.
    let probe_sizes = {
        let mut session = ReCache::builder()
            .admission(Admission::eager_only())
            .build();
        let (_, lineitems) = tpch::gen_orders_and_lineitems(sf, seed);
        let schema = tpch::lineitem_schema();
        let records: Vec<Value> = lineitems.iter().map(|r| Value::Struct(r.clone())).collect();
        session.register_json_bytes("lineitem_json", json::write_json(&schema, &records), schema);
        let schema = tpch::lineitem_schema();
        session.register_csv_bytes("lineitem_csv", csv::write_csv(&schema, &lineitems), schema);
        session
            .execute(&QueryRequest::sql(
                "SELECT count(*) FROM lineitem_json WHERE l_quantity >= 2",
            ))
            .unwrap();
        session
            .execute(&QueryRequest::sql(
                "SELECT count(*) FROM lineitem_csv WHERE l_quantity BETWEEN 0 AND 30",
            ))
            .unwrap();
        let json_bytes = session
            .cache()
            .snapshot()
            .into_iter()
            .find(|e| e.source == "lineitem_json")
            .map(|e| e.stats.bytes)
            .unwrap();
        let csv_bytes = session
            .cache()
            .snapshot()
            .into_iter()
            .find(|e| e.source == "lineitem_csv")
            .map(|e| e.stats.bytes)
            .unwrap();
        (json_bytes, csv_bytes)
    };
    let capacity = probe_sizes.0 + probe_sizes.1 * 3;
    let build = |eviction: Eviction| {
        let mut session = ReCache::builder()
            .eviction(eviction)
            .cache_capacity_bytes(capacity)
            .admission(Admission::eager_only())
            .build();
        let (_, lineitems) = tpch::gen_orders_and_lineitems(sf, seed);
        let schema = tpch::lineitem_schema();
        let records: Vec<Value> = lineitems.iter().map(|r| Value::Struct(r.clone())).collect();
        session.register_json_bytes("lineitem_json", json::write_json(&schema, &records), schema);
        let schema = tpch::lineitem_schema();
        session.register_csv_bytes("lineitem_csv", csv::write_csv(&schema, &lineitems), schema);
        session
    };
    let session = build(Eviction::GreedyDual);
    // Build one JSON-derived entry, reuse it a few times, then flood the
    // cache with CSV-derived entries.
    session
        .execute(&QueryRequest::sql(
            "SELECT count(*) FROM lineitem_json WHERE l_quantity >= 2",
        ))
        .unwrap();
    for _ in 0..3 {
        session
            .execute(&QueryRequest::sql(
                "SELECT count(*) FROM lineitem_json WHERE l_quantity >= 2",
            ))
            .unwrap();
    }
    for lo in 0..10 {
        session
            .execute(&QueryRequest::sql(format!(
                "SELECT count(*) FROM lineitem_csv WHERE l_quantity BETWEEN {lo} AND {}",
                lo + 30
            )))
            .unwrap();
    }
    let json_alive = session
        .cache()
        .snapshot()
        .into_iter()
        .any(|e| e.source == "lineitem_json");
    assert!(
        json_alive,
        "greedy-dual should keep the reused, expensive JSON entry"
    );
}
