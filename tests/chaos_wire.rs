//! Wire-level chaos tests: seeded transport faults (resets, torn
//! frames, stalls) on both sides of the connection, composed with the
//! in-process data-fault plans from the failure-hardening layer.
//!
//! The invariant under test, for every seed: a query either returns the
//! **fault-free answer** (possibly after retries and reconnects) or a
//! **typed error** — never a wedged connection, never a leaked
//! admission permit or lease share, and the server always drains
//! cleanly at the end.
//!
//! Seeds come from `RECACHE_FAULT_SEED` (default `0xC1A0_5EED`); CI
//! runs the suite under several to widen coverage without losing
//! reproducibility — any failure names a seed that replays it exactly.

use recache::data::FaultPlan;
use recache::types::Error;
use recache::QueryRequest;
use recache_server::dataset::{serving_session, serving_workload, CSV_TABLE, JSON_TABLE};
use recache_server::{Client, RetryPolicy, Server, ServerConfig, WireFaultPlan};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SF: f64 = 0.0005;
const SEED: u64 = 11;

fn fault_seed() -> u64 {
    std::env::var("RECACHE_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC1A0_5EED)
}

fn boot(
    config: ServerConfig,
) -> (
    recache_server::ServerHandle,
    SocketAddr,
    Arc<recache::ReCache>,
) {
    let server = Server::bind(config, Arc::new(serving_session(SF, SEED))).expect("bind");
    let addr = server.local_addr();
    let session = server.session();
    (server.spawn(), addr, session)
}

fn boot_with_wire_faults(
    config: ServerConfig,
    plan: WireFaultPlan,
) -> (
    recache_server::ServerHandle,
    SocketAddr,
    Arc<recache::ReCache>,
) {
    let server = Server::bind(config, Arc::new(serving_session(SF, SEED))).expect("bind");
    let addr = server.local_addr();
    let session = server.session();
    server.set_wire_faults(Arc::new(plan));
    (server.spawn(), addr, session)
}

fn counter(stats: &recache_server::StatsReply, name: &str) -> u64 {
    stats
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("stats frame has no counter {name:?}"))
}

/// The capstone matrix: server-side wire faults × client-side wire
/// faults × in-process data faults, across several derived seeds. Every
/// query converges to the fault-free answer or a typed error, and the
/// server drains cleanly while faults are still firing.
#[test]
fn seeded_wire_chaos_converges_to_fault_free_answers() {
    let specs = serving_workload(SF, SEED, 18);
    let serial = serving_session(SF, SEED);
    let expected: Vec<_> = specs
        .iter()
        .map(|s| {
            serial
                .execute(&QueryRequest::spec(s.clone()))
                .unwrap()
                .rows
                .clone()
        })
        .collect();

    for round in 0..3u64 {
        let seed = fault_seed().wrapping_add(round);
        let (handle, addr, session) = boot_with_wire_faults(
            ServerConfig {
                frame_deadline: Duration::from_millis(500),
                ..ServerConfig::default()
            },
            // Server-side response faults: resets and torn responses the
            // client must absorb by reconnect + retry.
            WireFaultPlan::new(seed)
                .resets(0.03)
                .torn_frames(0.03)
                .latency(0.10, Duration::from_millis(1)),
        );
        // Compose with the in-process fault layer: transient chunk
        // failures the engine retries internally, plus latency spikes —
        // wire faults and data faults fire in the same run.
        assert!(session.set_fault_plan(
            CSV_TABLE,
            Some(
                FaultPlan::new(seed)
                    .transient(0.05)
                    .latency(0.05, Duration::from_millis(2))
            )
        ));

        let clients = 3;
        std::thread::scope(|scope| {
            for t in 0..clients {
                let specs = &specs;
                let expected = &expected;
                scope.spawn(move || {
                    // Client-side faults draw from a different seed
                    // stream than the server's (offset), so both
                    // directions fire in one run.
                    let plan = WireFaultPlan::new(seed ^ 0x00C1_0000)
                        .resets(0.04)
                        .torn_frames(0.04)
                        .latency(0.10, Duration::from_millis(1));
                    let mut client = Client::connect_with(
                        addr,
                        RetryPolicy::retries(8, seed),
                        Some(Arc::new(plan)),
                        t as u64,
                    )
                    .expect("connect");
                    for (i, spec) in specs.iter().enumerate() {
                        if i % clients != t {
                            continue;
                        }
                        match client.query(&QueryRequest::spec(spec.clone())) {
                            Ok(reply) => assert_eq!(
                                reply.rows, expected[i],
                                "seed {seed}: query {i} diverged from fault-free execution"
                            ),
                            // Retry budget exhausted on transport faults:
                            // acceptable only as a *typed*, transient
                            // error the caller can act on.
                            Err(e) => assert!(
                                e.is_transient() || matches!(e, Error::Timeout),
                                "seed {seed}: query {i} died untyped: {e}"
                            ),
                        }
                    }
                });
            }
        });

        // Drain while the wire-fault plan is still installed: shutdown
        // must complete even if the goodbye frames themselves fault.
        handle.shutdown().expect("drain under chaos");
    }
}

/// A one-byte slowloris is killed by the frame deadline — and only the
/// staller: a concurrent well-behaved client is unaffected, and the
/// kill is classified in `conn_frame_deadline_kills`.
#[test]
fn slowloris_is_reaped_without_collateral_damage() {
    let (handle, addr, _session) = boot(ServerConfig {
        frame_deadline: Duration::from_millis(150),
        ..ServerConfig::default()
    });

    // The staller: one byte of a length prefix, then silence.
    let mut staller = TcpStream::connect(addr).expect("staller connect");
    staller.write_all(&[7u8]).expect("first byte");
    staller.flush().unwrap();

    // Meanwhile a real client keeps getting answers.
    let mut client = Client::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let reply = client
            .query(&QueryRequest::sql(format!(
                "SELECT count(*) FROM {JSON_TABLE}"
            )))
            .expect("well-behaved client must keep being served");
        assert!(!reply.rows.is_empty());
        let stats = client.stats().expect("stats");
        if counter(&stats, "conn_frame_deadline_kills") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "frame deadline never killed the slowloris"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The staller's socket is dead: reads see EOF once the server kills
    // the connection.
    staller
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 16];
    let n = staller.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "killed slowloris connection must read EOF");
    handle.shutdown().expect("drain");
}

/// Accepts beyond `max_connections` are shed with a typed, transient
/// `Overloaded` frame (counted separately from query-gate sheds), and
/// capacity freed by a closing connection is reusable.
#[test]
fn connection_cap_sheds_at_accept_with_typed_overloaded() {
    let (handle, addr, _session) = boot(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });

    let sql = format!("SELECT count(*) FROM {JSON_TABLE}");
    let mut a = Client::connect(addr).expect("connect a");
    let mut b = Client::connect(addr).expect("connect b");
    a.query(&QueryRequest::sql(sql.clone())).expect("a serves");
    b.query(&QueryRequest::sql(sql.clone())).expect("b serves");

    // Third connection: accepted at the TCP level, then shed with an
    // error frame before any request is served.
    let mut c = Client::connect(addr).expect("connect c");
    let err = c
        .query(&QueryRequest::sql(sql.clone()))
        .expect_err("the over-cap connection must be shed");
    assert!(
        matches!(err, Error::Overloaded | Error::ConnectionLost(_)),
        "expected a typed shed or the shed frame racing our request: {err}"
    );
    if matches!(err, Error::Overloaded) {
        assert!(err.is_transient(), "accept-shed must stay transient");
    }

    let stats = a.stats().expect("stats");
    assert!(
        counter(&stats, "conn_shed_at_accept") >= 1,
        "accept-side sheds must be counted: {stats:?}"
    );
    assert!(counter(&stats, "conn_accepted") >= 3);

    // Freeing a slot makes room: drop one connection, give the server a
    // poll tick to reap, and a new client is served.
    drop(b);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut d = Client::connect(addr).expect("connect d");
        match d.query(&QueryRequest::sql(sql.clone())) {
            Ok(_) => break,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("freed capacity never became usable: {e}"),
        }
    }
    handle.shutdown().expect("drain");
}

/// Idle connections are reaped after the configured timeout, the reap is
/// classified, and a retrying client absorbs it transparently: the next
/// query reconnects and succeeds without surfacing an error.
#[test]
fn idle_reap_is_transparent_to_a_retrying_client() {
    let (handle, addr, _session) = boot(ServerConfig {
        idle_timeout: Some(Duration::from_millis(120)),
        ..ServerConfig::default()
    });

    let mut client =
        Client::connect_with(addr, RetryPolicy::retries(4, 7), None, 0).expect("connect");
    let sql = format!("SELECT count(*) FROM {JSON_TABLE}");
    let first = client.query(&QueryRequest::sql(sql.clone())).expect("warm");

    // Go quiet long past the idle timeout; the server reaps us.
    std::thread::sleep(Duration::from_millis(400));

    let second = client
        .query(&QueryRequest::sql(sql.clone()))
        .expect("retrying client must absorb the idle reap");
    assert_eq!(first.rows, second.rows);
    assert!(
        client.stats_local().reconnects >= 1,
        "the second query must have ridden a fresh connection"
    );

    let mut probe = Client::connect(addr).expect("probe");
    let stats = probe.stats().expect("stats");
    assert!(
        counter(&stats, "conn_idle_reaped") >= 1,
        "idle reaps must be classified: {stats:?}"
    );
    handle.shutdown().expect("drain");
}

/// A client that tears its own request frame gets a typed, transient
/// `ConnectionLost`; the server classifies the death as a read error and
/// keeps serving other connections.
#[test]
fn torn_request_frame_is_typed_and_isolated() {
    let (handle, addr, _session) = boot(ServerConfig::default());

    // Tear every frame this client sends.
    let plan = WireFaultPlan::new(1).torn_frames(1.0);
    let mut torn = Client::connect_with(addr, RetryPolicy::none(), Some(Arc::new(plan)), 0)
        .expect("connect torn");
    let sql = format!("SELECT count(*) FROM {JSON_TABLE}");
    let err = torn
        .query(&QueryRequest::sql(sql.clone()))
        .expect_err("a torn request cannot succeed without retry");
    assert!(
        matches!(err, Error::ConnectionLost(_)),
        "torn frame must surface as typed ConnectionLost: {err}"
    );
    assert!(err.is_transient());

    // The server saw a mid-frame EOF, classified it, and still serves.
    let mut client = Client::connect(addr).expect("connect clean");
    let reply = client
        .query(&QueryRequest::sql(sql))
        .expect("still serving");
    assert!(!reply.rows.is_empty());
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client.stats().expect("stats");
        if counter(&stats, "conn_read_errors") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "torn request never classified as a read error"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    handle.shutdown().expect("drain");
}

/// A client that vanishes mid-query leaks nothing: the in-flight query
/// finishes server-side, its admission permit and lease share are
/// released, and the gate reports zero running afterwards.
#[test]
fn mid_query_disappearance_releases_permit_and_lease() {
    let (handle, addr, session) = boot(ServerConfig::default());
    // Slow every CSV chunk so the query is reliably in flight when the
    // client disappears.
    assert!(session.set_fault_plan(
        CSV_TABLE,
        Some(FaultPlan::new(3).latency(1.0, Duration::from_millis(200)))
    ));

    let sql =
        format!("SELECT sum(l_extendedprice), count(*) FROM {CSV_TABLE} WHERE l_quantity >= 1");
    {
        // Fire the request bytes, then vanish without ever reading the
        // response: dropping the stream closes the socket, so the
        // server's response write fails after the query completes.
        let raw = TcpStream::connect(addr).expect("raw connect");
        let mut faulty = recache_server::FaultyStream::plain(raw);
        let frame = recache_server::protocol::encode_request(&recache_server::Request::Query(
            QueryRequest::sql(sql.clone()),
        ));
        faulty.send_frame(&frame).expect("request written");
    }

    // Wait for the orphaned query to finish and its connection to die.
    // (The response write may land in the kernel buffer before the RST
    // arrives, so the death can classify as a write error, a reset on
    // the next read, or a clean EOF — what matters is that the permit
    // comes back and the connection is gone.)
    session.set_fault_plan(CSV_TABLE, None);
    let mut client = Client::connect(addr).expect("probe");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats");
        if stats.admission.running == 0 && counter(&stats, "conn_active") == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "orphaned query must release its permit and its connection: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Full capacity is still available: a fresh query negotiates and
    // runs normally.
    let reply = client
        .query(&QueryRequest::sql(sql))
        .expect("capacity intact after the disappearance");
    assert!(!reply.rows.is_empty());
    handle.shutdown().expect("drain");
}

/// A panicking query is answered with a typed, non-transient `Internal`
/// error frame; the connection survives to serve the next query, the
/// admission permit is released, and the panic is counted.
#[test]
fn query_panic_becomes_typed_internal_and_connection_survives() {
    let (handle, addr, _session) = boot(ServerConfig {
        panic_tag: Some("boom".to_owned()),
        ..ServerConfig::default()
    });

    let sql = format!("SELECT count(*) FROM {JSON_TABLE}");
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .query(&QueryRequest::sql(sql.clone()).tag("boom"))
        .expect_err("the tagged query must panic server-side");
    assert!(
        matches!(err, Error::Internal(_)),
        "panic must surface as typed Internal: {err}"
    );
    assert!(
        !err.is_transient(),
        "a deterministic panic must not invite retries"
    );

    // Same connection, next query: the firewall confined the panic.
    let reply = client
        .query(&QueryRequest::sql(sql).tag("fine"))
        .expect("connection must survive the panic");
    assert!(!reply.rows.is_empty());

    let stats = client.stats().expect("stats");
    assert!(counter(&stats, "conn_query_panics") >= 1);
    assert_eq!(
        stats.admission.running, 0,
        "the panicked query's permit must be released"
    );
    handle.shutdown().expect("drain");
}
