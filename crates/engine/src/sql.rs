//! Mini-SQL front end for the paper's query templates:
//!
//! ```sql
//! SELECT agg(attr), ... FROM t1 [JOIN t2 ON a = b | , t2]
//! WHERE attr >= x AND attr BETWEEN lo AND hi AND t1.k = t2.k ...
//! ```
//!
//! The parser produces a [`QuerySpec`]; name resolution against registered
//! sources (is `lineitem` a table or a field?) happens in the planner.

use crate::plan::AggFunc;
use recache_types::{Error, FieldPath, Result, Value};

/// A possibly table-qualified attribute path, e.g. `lineitem.l_quantity`
/// or `items.q`. Whether the first step names a table is resolved by the
/// planner against the FROM list.
pub type QualifiedPath = FieldPath;

/// One WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum PredClause {
    /// `path op literal`
    Cmp {
        path: QualifiedPath,
        op: crate::expr::CmpOp,
        value: Value,
    },
    /// `path BETWEEN lo AND hi`
    Between {
        path: QualifiedPath,
        lo: Value,
        hi: Value,
    },
}

/// Parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// `(func, path)`; `None` path means `count(*)`.
    pub aggregates: Vec<(AggFunc, Option<QualifiedPath>)>,
    pub tables: Vec<String>,
    pub predicates: Vec<PredClause>,
    /// Equijoins, from `JOIN .. ON` and `path = path` WHERE clauses.
    pub joins: Vec<(QualifiedPath, QualifiedPath)>,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(Value),
    Str(String),
    Symbol(char),
    Le,
    Ge,
    Ne,
    Star,
    Eof,
}

struct Lexer<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn tokenize(text: &'a str) -> Result<Vec<Token>> {
        let mut lexer = Lexer {
            text: text.as_bytes(),
            pos: 0,
        };
        let mut out = Vec::new();
        loop {
            let token = lexer.next_token()?;
            let done = token == Token::Eof;
            out.push(token);
            if done {
                return Ok(out);
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let Some(&b) = self.text.get(self.pos) else {
            return Ok(Token::Eof);
        };
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while self
                    .text
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    self.pos += 1;
                }
                Ok(Token::Ident(
                    std::str::from_utf8(&self.text[start..self.pos])
                        .expect("ascii ident")
                        .to_owned(),
                ))
            }
            b'0'..=b'9' | b'-' => {
                let start = self.pos;
                self.pos += 1;
                let mut is_float = false;
                while let Some(&c) = self.text.get(self.pos) {
                    match c {
                        b'0'..=b'9' => self.pos += 1,
                        b'.' | b'e' | b'E' => {
                            is_float = true;
                            self.pos += 1;
                        }
                        b'+' | b'-' if matches!(self.text.get(self.pos - 1), Some(b'e' | b'E')) => {
                            self.pos += 1
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.text[start..self.pos])
                    .map_err(|_| Error::parse_at("bad number", start))?;
                if is_float {
                    text.parse::<f64>()
                        .map(|v| Token::Number(Value::Float(v)))
                        .map_err(|_| Error::parse_at(format!("bad float '{text}'"), start))
                } else {
                    text.parse::<i64>()
                        .map(|v| Token::Number(Value::Int(v)))
                        .map_err(|_| Error::parse_at(format!("bad int '{text}'"), start))
                }
            }
            b'\'' => {
                self.pos += 1;
                let start = self.pos;
                while self.text.get(self.pos).is_some_and(|&c| c != b'\'') {
                    self.pos += 1;
                }
                if self.pos >= self.text.len() {
                    return Err(Error::parse_at("unterminated string literal", start));
                }
                let s = String::from_utf8_lossy(&self.text[start..self.pos]).into_owned();
                self.pos += 1;
                Ok(Token::Str(s))
            }
            b'<' => {
                self.pos += 1;
                match self.text.get(self.pos) {
                    Some(b'=') => {
                        self.pos += 1;
                        Ok(Token::Le)
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        Ok(Token::Ne)
                    }
                    _ => Ok(Token::Symbol('<')),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.text.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Ok(Token::Ge)
                } else {
                    Ok(Token::Symbol('>'))
                }
            }
            b'!' => {
                self.pos += 1;
                if self.text.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Ok(Token::Ne)
                } else {
                    Err(Error::parse_at("expected '!='", self.pos))
                }
            }
            b'*' => {
                self.pos += 1;
                Ok(Token::Star)
            }
            b'(' | b')' | b',' | b'.' | b'=' => {
                self.pos += 1;
                Ok(Token::Symbol(b as char))
            }
            other => Err(Error::parse_at(
                format!("unexpected character '{}'", other as char),
                self.pos,
            )),
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect_symbol(&mut self, c: char) -> Result<()> {
        match self.next() {
            Token::Symbol(s) if s == c => Ok(()),
            other => Err(Error::parse(format!("expected '{c}', found {other:?}"))),
        }
    }

    fn keyword(&mut self, word: &str) -> bool {
        if let Token::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(word) {
                self.next();
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, word: &str) -> Result<()> {
        if self.keyword(word) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected '{word}', found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(Error::parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn path(&mut self) -> Result<FieldPath> {
        let mut steps = vec![self.ident()?];
        while self.peek() == &Token::Symbol('.') {
            self.next();
            steps.push(self.ident()?);
        }
        Ok(FieldPath::from_steps(steps))
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Token::Number(v) => Ok(v),
            Token::Str(s) => Ok(Value::Str(s)),
            Token::Ident(s) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Token::Ident(s) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            other => Err(Error::parse(format!("expected literal, found {other:?}"))),
        }
    }

    fn aggregate(&mut self) -> Result<(AggFunc, Option<FieldPath>)> {
        let name = self.ident()?;
        let func = match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            other => return Err(Error::parse(format!("unknown aggregate '{other}'"))),
        };
        self.expect_symbol('(')?;
        let path = if self.peek() == &Token::Star {
            self.next();
            None
        } else {
            Some(self.path()?)
        };
        self.expect_symbol(')')?;
        Ok((func, path))
    }

    fn where_clause(
        &mut self,
        predicates: &mut Vec<PredClause>,
        joins: &mut Vec<(FieldPath, FieldPath)>,
    ) -> Result<()> {
        let path = self.path()?;
        if self.keyword("between") {
            let lo = self.literal()?;
            self.expect_keyword("and")?;
            let hi = self.literal()?;
            predicates.push(PredClause::Between { path, lo, hi });
            return Ok(());
        }
        let op = match self.next() {
            Token::Symbol('=') => crate::expr::CmpOp::Eq,
            Token::Symbol('<') => crate::expr::CmpOp::Lt,
            Token::Symbol('>') => crate::expr::CmpOp::Gt,
            Token::Le => crate::expr::CmpOp::Le,
            Token::Ge => crate::expr::CmpOp::Ge,
            Token::Ne => crate::expr::CmpOp::Ne,
            other => {
                return Err(Error::parse(format!(
                    "expected comparison, found {other:?}"
                )))
            }
        };
        // `path = path` is a join clause; anything else compares with a
        // literal (`true`/`false` idents are literals, not paths).
        let rhs_is_path = matches!(self.peek(), Token::Ident(s)
            if !s.eq_ignore_ascii_case("true") && !s.eq_ignore_ascii_case("false"));
        if rhs_is_path && op == crate::expr::CmpOp::Eq {
            let right = self.path()?;
            joins.push((path, right));
        } else {
            let value = self.literal()?;
            predicates.push(PredClause::Cmp { path, op, value });
        }
        Ok(())
    }
}

/// Parses one query.
pub fn parse_query(text: &str) -> Result<QuerySpec> {
    let tokens = Lexer::tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    p.expect_keyword("select")?;
    let mut aggregates = vec![p.aggregate()?];
    while p.peek() == &Token::Symbol(',') {
        p.next();
        aggregates.push(p.aggregate()?);
    }
    p.expect_keyword("from")?;
    let mut tables = vec![p.ident()?];
    let mut joins = Vec::new();
    loop {
        if p.peek() == &Token::Symbol(',') {
            p.next();
            tables.push(p.ident()?);
        } else if p.keyword("join") {
            tables.push(p.ident()?);
            p.expect_keyword("on")?;
            let left = p.path()?;
            p.expect_symbol('=')?;
            let right = p.path()?;
            joins.push((left, right));
        } else {
            break;
        }
    }
    let mut predicates = Vec::new();
    if p.keyword("where") {
        p.where_clause(&mut predicates, &mut joins)?;
        while p.keyword("and") {
            p.where_clause(&mut predicates, &mut joins)?;
        }
    }
    if p.peek() != &Token::Eof {
        return Err(Error::parse(format!(
            "unexpected trailing input: {:?}",
            p.peek()
        )));
    }
    Ok(QuerySpec {
        aggregates,
        tables,
        predicates,
        joins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn parses_select_project_aggregate() {
        let q = parse_query(
            "SELECT sum(l_extendedprice), avg(l_quantity), count(*) FROM lineitem \
             WHERE l_quantity >= 30 AND l_discount BETWEEN 0.01 AND 0.05",
        )
        .unwrap();
        assert_eq!(q.tables, vec!["lineitem"]);
        assert_eq!(q.aggregates.len(), 3);
        assert_eq!(q.aggregates[0].0, AggFunc::Sum);
        assert_eq!(q.aggregates[2], (AggFunc::Count, None));
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(
            q.predicates[0],
            PredClause::Cmp {
                path: FieldPath::parse("l_quantity"),
                op: CmpOp::Ge,
                value: Value::Int(30)
            }
        );
        assert_eq!(
            q.predicates[1],
            PredClause::Between {
                path: FieldPath::parse("l_discount"),
                lo: Value::Float(0.01),
                hi: Value::Float(0.05)
            }
        );
    }

    #[test]
    fn parses_nested_paths() {
        let q = parse_query(
            "SELECT max(lineitems.l_extendedprice) FROM orderLineitems \
             WHERE lineitems.l_quantity < 10",
        )
        .unwrap();
        assert_eq!(
            q.aggregates[0].1,
            Some(FieldPath::parse("lineitems.l_extendedprice"))
        );
        assert_eq!(q.tables, vec!["orderLineitems"]);
    }

    #[test]
    fn parses_joins_in_both_syntaxes() {
        let q = parse_query(
            "SELECT count(*) FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey \
             WHERE o_totalprice > 1000",
        )
        .unwrap();
        assert_eq!(q.tables, vec!["orders", "lineitem"]);
        assert_eq!(q.joins.len(), 1);

        let q = parse_query(
            "SELECT count(*) FROM orders, lineitem \
             WHERE orders.o_orderkey = lineitem.l_orderkey AND o_totalprice > 1000",
        )
        .unwrap();
        assert_eq!(q.tables, vec!["orders", "lineitem"]);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn parses_negative_and_float_literals() {
        let q = parse_query("SELECT sum(x) FROM t WHERE x > -5 AND y <= 1.5e2").unwrap();
        assert_eq!(
            q.predicates[0],
            PredClause::Cmp {
                path: FieldPath::parse("x"),
                op: CmpOp::Gt,
                value: Value::Int(-5)
            }
        );
        assert_eq!(
            q.predicates[1],
            PredClause::Cmp {
                path: FieldPath::parse("y"),
                op: CmpOp::Le,
                value: Value::Float(150.0)
            }
        );
    }

    #[test]
    fn parses_string_and_bool_literals() {
        let q = parse_query("SELECT count(*) FROM t WHERE lang = 'en' AND flag = true").unwrap();
        assert_eq!(
            q.predicates[0],
            PredClause::Cmp {
                path: FieldPath::parse("lang"),
                op: CmpOp::Eq,
                value: Value::from("en")
            }
        );
        assert_eq!(
            q.predicates[1],
            PredClause::Cmp {
                path: FieldPath::parse("flag"),
                op: CmpOp::Eq,
                value: Value::Bool(true)
            }
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_query("select count(*) from t where x != 3").is_ok());
        assert!(parse_query("SELECT COUNT(*) FROM t WHERE x <> 3").is_ok());
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("SELECT FROM t").is_err());
        assert!(parse_query("SELECT sum(x) t").is_err());
        assert!(parse_query("SELECT sum(x) FROM t WHERE").is_err());
        assert!(parse_query("SELECT frob(x) FROM t").is_err());
        assert!(parse_query("SELECT sum(x) FROM t WHERE x >").is_err());
        assert!(parse_query("SELECT sum(x) FROM t extra").is_err());
        assert!(parse_query("SELECT sum(x) FROM t WHERE s = 'unterminated").is_err());
    }
}
