//! Sampled timing, per §5.1 of the paper.
//!
//! "A naive way to measure the costs of various operations during a query
//! is to invoke timing system calls before and after every operator ...
//! this approach adds a runtime overhead of 5-10% ... Instead, ReCache
//! reduces this overhead by executing timing system calls on less than 1%
//! of records selected uniformly at random."
//!
//! [`SampledTimer`] times one unit of work out of every `period`, and
//! extrapolates the total by unit count. The `profiler_overhead` bench
//! reproduces the naive-vs-sampled overhead comparison.

use std::time::Instant;

/// Times a closure, returning its result and elapsed nanoseconds.
#[inline]
pub fn time_ns<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_nanos() as u64)
}

/// Samples the duration of every `period`-th unit of work and
/// extrapolates the total cost over all units.
#[derive(Debug, Clone)]
pub struct SampledTimer {
    period: u64,
    units: u64,
    sampled_units: u64,
    sampled_ns: u64,
}

impl SampledTimer {
    /// `period = 128` means ~0.8% of units pay for a timer call.
    pub fn new(period: u64) -> Self {
        SampledTimer {
            period: period.max(1),
            units: 0,
            sampled_units: 0,
            sampled_ns: 0,
        }
    }

    /// Runs one unit of work, timing it if this unit is sampled.
    #[inline]
    pub fn observe<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.units += 1;
        if self.units % self.period == 1 || self.period == 1 {
            let t0 = Instant::now();
            let r = f();
            self.sampled_ns += t0.elapsed().as_nanos() as u64;
            self.sampled_units += 1;
            r
        } else {
            f()
        }
    }

    /// Units observed so far.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// Nanoseconds measured on the sampled units only.
    pub fn sampled_ns(&self) -> u64 {
        self.sampled_ns
    }

    /// Extrapolated total: `sampled_ns * units / sampled_units`.
    pub fn estimated_total_ns(&self) -> u64 {
        if self.sampled_units == 0 {
            return 0;
        }
        ((self.sampled_ns as u128 * self.units as u128) / self.sampled_units as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(acc)
    }

    #[test]
    fn time_ns_measures_something() {
        let (value, ns) = time_ns(|| spin(10_000));
        let _ = value;
        assert!(ns > 0);
    }

    #[test]
    fn sampling_period_one_times_everything() {
        let mut timer = SampledTimer::new(1);
        for _ in 0..10 {
            timer.observe(|| spin(1_000));
        }
        assert_eq!(timer.units(), 10);
        assert_eq!(timer.estimated_total_ns(), timer.sampled_ns());
    }

    #[test]
    fn extrapolation_is_proportional() {
        let mut timer = SampledTimer::new(10);
        for _ in 0..1000 {
            timer.observe(|| spin(2_000));
        }
        assert_eq!(timer.units(), 1000);
        // 100 sampled units, extrapolated x10.
        let est = timer.estimated_total_ns();
        assert!(
            est >= timer.sampled_ns() * 9,
            "est {est} sampled {}",
            timer.sampled_ns()
        );
    }

    #[test]
    fn estimate_with_no_samples_is_zero() {
        let timer = SampledTimer::new(100);
        assert_eq!(timer.estimated_total_ns(), 0);
    }

    #[test]
    fn estimate_tracks_true_cost_within_factor_two() {
        // The sampled estimate should approximate always-on timing for
        // uniform work.
        let mut sampled = SampledTimer::new(64);
        let t0 = Instant::now();
        for _ in 0..4096 {
            sampled.observe(|| spin(500));
        }
        let truth = t0.elapsed().as_nanos() as u64;
        let est = sampled.estimated_total_ns();
        assert!(est > truth / 4, "est {est} truth {truth}");
        assert!(est < truth * 4, "est {est} truth {truth}");
    }
}
