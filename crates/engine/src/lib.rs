//! Query engine for ReCache: expressions, plans, physical execution and
//! the sampled profiler.
//!
//! Proteus (the system ReCache extends) JIT-compiles a specialized engine
//! per query with LLVM. This reproduction replaces code generation with
//! plan-time specialization over monomorphized Rust operators — the cost
//! *shapes* ReCache's policies depend on (raw parse ≫ in-memory scan;
//! Dremel scans pay a compute cost columnar scans do not) are preserved,
//! as documented in `DESIGN.md`.
//!
//! The engine executes select-project-aggregate and select-project-join
//! queries (the paper's workload templates) over:
//! * raw CSV/JSON files ([`recache_data::RawFile`]),
//! * in-memory cache stores of any [`recache_layout`] layout,
//! * lazy offset caches (re-reads through positional maps).

pub mod exec;
pub mod expr;
pub mod plan;
pub mod profiler;
pub mod sql;

pub use exec::{execute, AccessKind, ExecStats, QueryOutput, TableStats};
pub use expr::{CmpOp, Expr, RangeClause};
pub use plan::{AccessPath, AggFunc, AggSpec, JoinSpec, QueryPlan, TablePlan};
pub use profiler::{time_ns, SampledTimer};
pub use sql::{parse_query, QualifiedPath, QuerySpec};
