//! Query engine for ReCache: expressions, plans, physical execution and
//! the sampled profiler.
//!
//! Proteus (the system ReCache extends) JIT-compiles a specialized engine
//! per query with LLVM. This reproduction replaces code generation with
//! plan-time specialization over monomorphized Rust operators — the cost
//! *shapes* ReCache's policies depend on (raw parse ≫ in-memory scan;
//! Dremel scans pay a compute cost columnar scans do not) are preserved,
//! as documented in `DESIGN.md`.
//!
//! The engine executes select-project-aggregate and select-project-join
//! queries (the paper's workload templates) over:
//! * raw CSV/JSON files ([`recache_data::RawFile`]),
//! * in-memory cache stores of any [`recache_layout`] layout,
//! * lazy offset caches (re-reads through positional maps).
//!
//! # Batch execution architecture
//!
//! Cache-store scans run vectorized by default ([`ExecOptions`] can force
//! the row path):
//!
//! * **Batch size** — stores yield typed
//!   [`recache_layout::ColumnBatch`]es of up to
//!   [`recache_layout::BATCH_ROWS`] (4096) rows: borrowed column slices
//!   for the columnar store and the Dremel short-column fast path,
//!   gathered scratch columns for the row store and Dremel assembly.
//!   4096 is a multiple of 64 (validity views stay word-aligned) and
//!   matches the timed-scan granularity the seed used, so per-batch
//!   `ScanCost` sampling is unchanged.
//! * **Selection-vector short-circuiting** — [`CompiledPredicate`] turns
//!   a conjunction of `slot <op> literal` clauses into per-column kernels
//!   applied *in the query's clause order*; each kernel compacts the
//!   batch's `SelectionVector` in place, so clause *k+1* only examines
//!   clause *k*'s survivors and an emptied selection stops the
//!   conjunction. Non-compilable shapes (`OR`, `NOT`, slot-vs-slot)
//!   fall back to row-at-a-time `Expr::eval_bool`, as do raw-file and
//!   offsets access paths.
//! * **D/C phase attribution** — mask navigation, Dremel level-stream
//!   assembly and predicate-kernel time are compute `C`; store value
//!   gathering, batch-aggregate folding and join-side materialization
//!   are data access `D`. This follows the cost model's definition of
//!   `C` ("everything that is not a plain value load"). One deliberate
//!   difference from the row path: row-at-a-time scans evaluate the
//!   predicate inside the store's gather loop, so there its time lands
//!   in `D` — vectorized `C` is a slight superset. For columnar scans
//!   `C ≈ 0` either way (the property the paper's layout model relies
//!   on, preserved by only materializing per-row record ids when the
//!   consumer collects satisfying ids), and the session layer collapses
//!   non-Dremel scans to pure `D` before feeding layout histories, so
//!   the shift only surfaces where assembly already dominates.

pub mod exactsum;
pub mod exec;
pub mod expr;
pub mod kernel;
pub mod plan;
pub mod profiler;
pub mod sql;

pub use exactsum::ExactSum;
pub use exec::{
    execute, execute_with, AccessKind, ExecOptions, ExecStats, QueryOutput, TableStats,
};
pub use expr::{CmpOp, Expr, RangeClause};
pub use kernel::{BatchAggregator, CompiledPredicate};
pub use plan::{AccessPath, AggFunc, AggSpec, JoinSpec, QueryPlan, TablePlan};
pub use profiler::{time_ns, SampledTimer};
pub use sql::{parse_query, QualifiedPath, QuerySpec};
