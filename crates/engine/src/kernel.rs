//! Vectorized predicate and aggregate kernels over typed column batches.
//!
//! [`CompiledPredicate`] turns an [`Expr`] that is a conjunction of
//! `slot <op> literal` clauses — the paper's workload shape — into a list
//! of per-column kernels. Each kernel compacts the batch's
//! [`SelectionVector`] with a monomorphic compare over a primitive slice,
//! so later clauses only look at the survivors of earlier ones
//! (vectorized short-circuiting, in the query's clause order). Any other
//! expression shape (`OR`, `NOT`, slot-vs-slot) returns `None` from
//! [`CompiledPredicate::compile`] and the executor falls back to the
//! row-at-a-time `Expr::eval_bool` path.
//!
//! [`BatchAggregator`] is the batch counterpart of the streaming
//! aggregate state: COUNT/SUM/AVG/MIN/MAX over a typed column restricted
//! to the selection. Accumulation order and numeric semantics (`as_f64`
//! sums, `cmp_sql` extremes, SQL null skipping) are identical to the row
//! path, so both paths produce bit-identical `QueryOutput`s.

use crate::exactsum::ExactSum;
use crate::expr::{flip, CmpOp, Expr};
use crate::plan::AggFunc;
use recache_layout::{BatchColumn, BatchValues, SelectionVector};
use recache_types::Value;
use std::cmp::Ordering;

/// One `slot <op> literal` clause.
#[derive(Debug, Clone)]
struct Clause {
    slot: usize,
    op: CmpOp,
    lit: Value,
}

/// A conjunction of comparison clauses compiled for batch evaluation.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    clauses: Vec<Clause>,
}

impl CompiledPredicate {
    /// Compiles `expr` if it is a (possibly nested) conjunction of
    /// `slot <op> scalar-literal` comparisons; `None` otherwise.
    pub fn compile(expr: &Expr) -> Option<CompiledPredicate> {
        let mut clauses = Vec::new();
        collect_clauses(expr, &mut clauses)?;
        Some(CompiledPredicate { clauses })
    }

    /// Number of compiled clauses.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Compacts `sel` to the rows satisfying every clause. Clauses run in
    /// compile order; each sees only the previous clauses' survivors and
    /// the whole conjunction stops early once the selection is empty.
    pub fn filter(&self, columns: &[BatchColumn<'_>], sel: &mut SelectionVector) {
        for clause in &self.clauses {
            if sel.is_empty() {
                return;
            }
            apply_clause(clause, &columns[clause.slot], sel);
        }
    }

    /// Rebinds every clause's slot through `map`: a predicate compiled
    /// against one projection is re-addressed to a *wider* projection
    /// where old slot `s` now lives at `map[s]`. Shared multi-predicate
    /// scans use this to evaluate K participants' predicates against one
    /// union-projected batch. Clause order is preserved, so selections
    /// compact identically to the solo scan.
    pub fn remap_slots(&self, map: &[usize]) -> CompiledPredicate {
        CompiledPredicate {
            clauses: self
                .clauses
                .iter()
                .map(|c| Clause {
                    slot: map[c.slot],
                    ..c.clone()
                })
                .collect(),
        }
    }

    /// Like [`filter`](Self::filter), but filters a *copy* of `base` into
    /// `out` (cleared first) instead of consuming the selection — the
    /// shared-scan path evaluates K predicates against one batch, each
    /// from the same base selection. Clause order and kernels are the
    /// ones `filter` uses, so the surviving rows are bit-identical to a
    /// solo scan's.
    pub fn filter_from(
        &self,
        columns: &[BatchColumn<'_>],
        base: &SelectionVector,
        out: &mut SelectionVector,
    ) {
        out.clear();
        for &row in base {
            out.push(row);
        }
        self.filter(columns, out);
    }
}

fn collect_clauses(expr: &Expr, out: &mut Vec<Clause>) -> Option<()> {
    match expr {
        Expr::And(parts) => {
            for part in parts {
                collect_clauses(part, out)?;
            }
            Some(())
        }
        Expr::Cmp(op, a, b) => {
            let (slot, lit, op) = match (a.as_ref(), b.as_ref()) {
                (Expr::Slot(s), Expr::Lit(v)) => (*s, v, *op),
                (Expr::Lit(v), Expr::Slot(s)) => (*s, v, flip(*op)),
                _ => return None,
            };
            if matches!(lit, Value::List(_) | Value::Struct(_)) {
                return None;
            }
            out.push(Clause {
                slot,
                op,
                lit: lit.clone(),
            });
            Some(())
        }
        _ => None,
    }
}

/// Runs one clause's kernel: a typed compare against the literal over the
/// selected rows (SQL semantics — null operands never satisfy, matching
/// `Expr::eval_bool`). Monomorphic inner loops per (column, literal) type
/// pair; mixed non-numeric types collapse to `cmp_sql`'s constant
/// type-rank ordering.
fn apply_clause(clause: &Clause, col: &BatchColumn<'_>, sel: &mut SelectionVector) {
    let op = clause.op;
    match (&col.values, &clause.lit) {
        (_, Value::Null) => sel.clear(),
        (BatchValues::Int(vals), Value::Int(x)) => {
            let x = *x;
            sel.retain(|r| {
                let r = r as usize;
                col.is_valid(r) && op.matches(vals[r].cmp(&x))
            });
        }
        (BatchValues::Int(vals), Value::Float(x)) => {
            let x = *x;
            sel.retain(|r| {
                let r = r as usize;
                col.is_valid(r)
                    && op.matches((vals[r] as f64).partial_cmp(&x).unwrap_or(Ordering::Equal))
            });
        }
        (BatchValues::Float(vals), Value::Int(x)) => {
            let x = *x as f64;
            sel.retain(|r| {
                let r = r as usize;
                col.is_valid(r) && op.matches(vals[r].partial_cmp(&x).unwrap_or(Ordering::Equal))
            });
        }
        (BatchValues::Float(vals), Value::Float(x)) => {
            let x = *x;
            sel.retain(|r| {
                let r = r as usize;
                col.is_valid(r) && op.matches(vals[r].partial_cmp(&x).unwrap_or(Ordering::Equal))
            });
        }
        (BatchValues::Bool(vals), Value::Bool(x)) => {
            let x = *x;
            sel.retain(|r| {
                let r = r as usize;
                col.is_valid(r) && op.matches(vals[r].cmp(&x))
            });
        }
        (values @ BatchValues::Str { .. }, Value::Str(x)) => {
            let x = x.as_str();
            sel.retain(|r| {
                let r = r as usize;
                col.is_valid(r) && op.matches(values.str_at(r).cmp(x))
            });
        }
        // Dictionary-encoded strings: resolve the literal to a code range
        // once — `lo` pool entries order strictly before the literal,
        // `hi` order before-or-equal (so an exact match is code `lo`,
        // present iff `lo < hi`). The sorted pool makes code order equal
        // string order, so every operator becomes an integer compare per
        // row instead of a byte compare.
        (
            BatchValues::Dict {
                codes,
                pool_offsets,
                pool_bytes,
            },
            Value::Str(x),
        ) => {
            let lo = dict_bound(pool_offsets, pool_bytes, x.as_bytes(), false);
            let hi = dict_bound(pool_offsets, pool_bytes, x.as_bytes(), true);
            sel.retain(|r| {
                let r = r as usize;
                if !col.is_valid(r) {
                    return false;
                }
                let c = codes[r];
                match op {
                    CmpOp::Eq => c >= lo && c < hi,
                    CmpOp::Ne => c < lo || c >= hi,
                    CmpOp::Lt => c < lo,
                    CmpOp::Le => c < hi,
                    CmpOp::Gt => c >= hi,
                    CmpOp::Ge => c >= lo,
                }
            });
        }
        // Mixed non-numeric types: `cmp_sql` compares by type rank, a
        // per-row constant — only validity still varies.
        (values, lit) => {
            let col_rank = match values {
                BatchValues::Bool(_) => 1u8,
                BatchValues::Int(_) | BatchValues::Float(_) => 2,
                BatchValues::Str { .. } | BatchValues::Dict { .. } => 3,
            };
            let keep = op.matches(col_rank.cmp(&lit.sql_type_rank()));
            if keep {
                sel.retain(|r| col.is_valid(r as usize));
            } else {
                sel.clear();
            }
        }
    }
}

/// Number of dictionary-pool entries ordered before `lit` — strictly
/// before when `include_equal` is false, before-or-equal otherwise. A
/// binary search over the sorted pool: the only byte compares a dict
/// clause ever pays, once per clause instead of once per row.
fn dict_bound(pool_offsets: &[u32], pool_bytes: &[u8], lit: &[u8], include_equal: bool) -> u32 {
    let mut lo = 0usize;
    let mut hi = pool_offsets.len() - 1;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let entry = &pool_bytes[pool_offsets[mid] as usize..pool_offsets[mid + 1] as usize];
        let before = match entry.cmp(lit) {
            Ordering::Less => true,
            Ordering::Equal => include_equal,
            Ordering::Greater => false,
        };
        if before {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// Running MIN/MAX extreme, typed to the column being aggregated.
#[derive(Debug, Clone, PartialEq)]
enum Extreme {
    None,
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
}

impl Extreme {
    fn into_value(self) -> Value {
        match self {
            Extreme::None => Value::Null,
            Extreme::Int(v) => Value::Int(v),
            Extreme::Float(v) => Value::Float(v),
            Extreme::Bool(v) => Value::Bool(v),
            Extreme::Str(v) => Value::Str(v),
        }
    }
}

/// Batch aggregate state — the vectorized mirror of the executor's
/// streaming `AggState`, with identical finish semantics.
///
/// Sums accumulate through [`ExactSum`], so partial aggregators produced
/// by parallel workers [`merge`](BatchAggregator::merge) into exactly the
/// state a single sequential pass would have built — `SUM`/`AVG` results
/// are bit-identical across thread counts and task decompositions.
#[derive(Debug)]
pub struct BatchAggregator {
    func: AggFunc,
    count: u64,
    sum: ExactSum,
    extreme: Extreme,
}

impl BatchAggregator {
    pub fn new(func: AggFunc) -> Self {
        BatchAggregator {
            func,
            count: 0,
            sum: ExactSum::new(),
            extreme: Extreme::None,
        }
    }

    /// Folds a partial aggregator over *later* rows into this one. The
    /// fixed merge order (task/chunk order — ascending row position) is
    /// what keeps MIN/MAX tie-breaking identical to the sequential
    /// first-seen rule; sums and counts are order-independent.
    pub fn merge(&mut self, other: BatchAggregator) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        let target = match self.func {
            AggFunc::Min => Ordering::Less,
            AggFunc::Max => Ordering::Greater,
            _ => return,
        };
        let replace = match (&self.extreme, &other.extreme) {
            (_, Extreme::None) => false,
            (Extreme::None, _) => true,
            (Extreme::Int(cur), Extreme::Int(v)) => v.cmp(cur) == target,
            (Extreme::Float(cur), Extreme::Float(v)) => {
                v.partial_cmp(cur).unwrap_or(Ordering::Equal) == target
            }
            (Extreme::Bool(cur), Extreme::Bool(v)) => v.cmp(cur) == target,
            (Extreme::Str(cur), Extreme::Str(v)) => v.cmp(cur) == target,
            // Typed columns never mix extreme variants; keep first-seen.
            _ => false,
        };
        if replace {
            self.extreme = other.extreme;
        }
    }

    /// Folds the selected rows of `col` into the state. `col == None`
    /// means `count(*)`: every selected row counts, null or not.
    pub fn update(&mut self, col: Option<&BatchColumn<'_>>, sel: &SelectionVector) {
        let Some(col) = col else {
            self.count += sel.len() as u64;
            return;
        };
        match self.func {
            AggFunc::Count => self.count += count_valid(col, sel),
            AggFunc::Sum | AggFunc::Avg => self.accumulate_sum(col, sel),
            AggFunc::Min => self.track_extreme(col, sel, Ordering::Less),
            AggFunc::Max => self.track_extreme(col, sel, Ordering::Greater),
        }
    }

    fn accumulate_sum(&mut self, col: &BatchColumn<'_>, sel: &SelectionVector) {
        match &col.values {
            BatchValues::Int(vals) => {
                for &r in sel {
                    let r = r as usize;
                    if col.is_valid(r) {
                        self.count += 1;
                        self.sum.add(vals[r] as f64);
                    }
                }
            }
            BatchValues::Float(vals) => {
                for &r in sel {
                    let r = r as usize;
                    if col.is_valid(r) {
                        self.count += 1;
                        self.sum.add(vals[r]);
                    }
                }
            }
            BatchValues::Bool(vals) => {
                for &r in sel {
                    let r = r as usize;
                    if col.is_valid(r) {
                        self.count += 1;
                        self.sum.add(f64::from(u8::from(vals[r])));
                    }
                }
            }
            // Strings have no numeric view (`as_f64` is `None`): the row
            // path counts them but adds 0.0 — mirror that exactly.
            BatchValues::Str { .. } | BatchValues::Dict { .. } => {
                self.count += count_valid(col, sel)
            }
        }
    }

    /// Tracks the running extreme: `target == Less` keeps the minimum,
    /// `Greater` the maximum. The comparison mirrors `cmp_sql` for each
    /// column type — in particular floats use `partial_cmp` collapsed to
    /// `Equal`, so a NaN never displaces a held value, and ties keep the
    /// first-seen value (the row path's strict-compare replacement rule).
    fn track_extreme(&mut self, col: &BatchColumn<'_>, sel: &SelectionVector, target: Ordering) {
        match &col.values {
            BatchValues::Int(vals) => {
                for &r in sel {
                    let r = r as usize;
                    if col.is_valid(r) {
                        self.count += 1;
                        let v = vals[r];
                        let replace = match &self.extreme {
                            Extreme::Int(cur) => v.cmp(cur) == target,
                            _ => true,
                        };
                        if replace {
                            self.extreme = Extreme::Int(v);
                        }
                    }
                }
            }
            BatchValues::Float(vals) => {
                for &r in sel {
                    let r = r as usize;
                    if col.is_valid(r) {
                        self.count += 1;
                        let v = vals[r];
                        let replace = match &self.extreme {
                            Extreme::Float(cur) => {
                                v.partial_cmp(cur).unwrap_or(Ordering::Equal) == target
                            }
                            _ => true,
                        };
                        if replace {
                            self.extreme = Extreme::Float(v);
                        }
                    }
                }
            }
            BatchValues::Bool(vals) => {
                for &r in sel {
                    let r = r as usize;
                    if col.is_valid(r) {
                        self.count += 1;
                        let v = vals[r];
                        let replace = match &self.extreme {
                            Extreme::Bool(cur) => v.cmp(cur) == target,
                            _ => true,
                        };
                        if replace {
                            self.extreme = Extreme::Bool(v);
                        }
                    }
                }
            }
            values @ BatchValues::Str { .. } => {
                for &r in sel {
                    let r = r as usize;
                    if col.is_valid(r) {
                        self.count += 1;
                        let v = values.str_at(r);
                        let replace = match &self.extreme {
                            Extreme::Str(cur) => v.cmp(cur.as_str()) == target,
                            _ => true,
                        };
                        if replace {
                            self.extreme = Extreme::Str(v.to_owned());
                        }
                    }
                }
            }
            // Dictionary columns: code order equals string order, so the
            // per-batch extreme is found with integer compares and only
            // the winning code is decoded (once per batch). Strict
            // compare keeps the first-seen-on-tie rule: equal strings
            // share a code.
            values @ BatchValues::Dict { codes, .. } => {
                let mut best: Option<(u32, usize)> = None;
                for &r in sel {
                    let r = r as usize;
                    if col.is_valid(r) {
                        self.count += 1;
                        let c = codes[r];
                        if best.is_none_or(|(b, _)| c.cmp(&b) == target) {
                            best = Some((c, r));
                        }
                    }
                }
                if let Some((_, row)) = best {
                    let v = values.str_at(row);
                    let replace = match &self.extreme {
                        Extreme::Str(cur) => v.cmp(cur.as_str()) == target,
                        _ => true,
                    };
                    if replace {
                        self.extreme = Extreme::Str(v.to_owned());
                    }
                }
            }
        }
    }

    /// Finalizes to the output `Value` (same semantics as the streaming
    /// aggregate state).
    pub fn finish(self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum.finish()),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum.finish() / self.count as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => self.extreme.into_value(),
        }
    }
}

fn count_valid(col: &BatchColumn<'_>, sel: &SelectionVector) -> u64 {
    match col.validity {
        None => sel.len() as u64,
        Some(_) => sel
            .as_slice()
            .iter()
            .filter(|&&r| col.is_valid(r as usize))
            .count() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_layout::batch::BATCH_ROWS;

    fn int_col(vals: &[i64]) -> BatchColumn<'_> {
        BatchColumn {
            values: BatchValues::Int(vals),
            validity: None,
        }
    }

    fn sel(n: usize) -> SelectionVector {
        let mut s = SelectionVector::new();
        s.fill_identity(n);
        s
    }

    #[test]
    fn compile_accepts_conjunctions_of_literal_compares() {
        let e = Expr::And(vec![
            Expr::cmp(0, CmpOp::Ge, 1i64),
            Expr::And(vec![
                Expr::cmp(1, CmpOp::Lt, 2.5),
                Expr::cmp(2, CmpOp::Eq, "x"),
            ]),
        ]);
        let p = CompiledPredicate::compile(&e).expect("compilable");
        assert_eq!(p.clause_count(), 3);
        // Flipped literal-first compare is normalized.
        let e = Expr::Cmp(
            CmpOp::Ge,
            Box::new(Expr::Lit(Value::Int(10))),
            Box::new(Expr::Slot(0)),
        );
        let p = CompiledPredicate::compile(&e).expect("compilable");
        let vals = [5i64, 10, 11];
        let mut s = sel(3);
        p.filter(&[int_col(&vals)], &mut s);
        // 10 >= slot  <=>  slot <= 10.
        assert_eq!(s.as_slice(), &[0, 1]);
    }

    #[test]
    fn compile_rejects_non_conjunctive_shapes() {
        assert!(
            CompiledPredicate::compile(&Expr::Or(vec![Expr::cmp(0, CmpOp::Gt, 1i64)])).is_none()
        );
        assert!(
            CompiledPredicate::compile(&Expr::Not(Box::new(Expr::cmp(0, CmpOp::Gt, 1i64))))
                .is_none()
        );
        let slot_vs_slot = Expr::Cmp(CmpOp::Eq, Box::new(Expr::Slot(0)), Box::new(Expr::Slot(1)));
        assert!(CompiledPredicate::compile(&slot_vs_slot).is_none());
    }

    #[test]
    fn filter_short_circuits_across_clauses() {
        let a = [1i64, 2, 3, 4, 5];
        let b = [10i64, 20, 30, 40, 50];
        let cols = [int_col(&a), int_col(&b)];
        let p = CompiledPredicate::compile(&Expr::And(vec![
            Expr::cmp(0, CmpOp::Ge, 3i64),
            Expr::cmp(1, CmpOp::Lt, 50i64),
        ]))
        .unwrap();
        let mut s = sel(5);
        p.filter(&cols, &mut s);
        assert_eq!(s.as_slice(), &[2, 3]);
        // An impossible first clause empties the selection immediately.
        let p = CompiledPredicate::compile(&Expr::And(vec![
            Expr::cmp(0, CmpOp::Gt, 100i64),
            Expr::cmp(1, CmpOp::Lt, 50i64),
        ]))
        .unwrap();
        let mut s = sel(5);
        p.filter(&cols, &mut s);
        assert!(s.is_empty());
    }

    #[test]
    fn null_rows_never_satisfy() {
        // Rows 0 and 2 valid, row 1 null.
        let vals = [1i64, 999, 3];
        let words = [0b101u64];
        let col = BatchColumn {
            values: BatchValues::Int(&vals),
            validity: Some(&words),
        };
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let p = CompiledPredicate::compile(&Expr::cmp(0, op, 999i64)).unwrap();
            let mut s = sel(3);
            p.filter(std::slice::from_ref(&col), &mut s);
            assert!(
                !s.as_slice().contains(&1),
                "null row must not satisfy {op:?}"
            );
        }
        // Null literal never satisfies either.
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Eq, Value::Null)).unwrap();
        let mut s = sel(3);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert!(s.is_empty());
    }

    #[test]
    fn cross_type_comparisons_match_cmp_sql() {
        let ints = [3i64];
        let col = int_col(&ints);
        // Int column vs float literal.
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Le, 3.0)).unwrap();
        let mut s = sel(1);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert_eq!(s.len(), 1);
        // Int column vs string literal: rank(Int)=2 < rank(Str)=3.
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Lt, "zzz")).unwrap();
        let mut s = sel(1);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert_eq!(s.len(), 1, "numeric < string by type rank");
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Gt, "zzz")).unwrap();
        let mut s = sel(1);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert!(s.is_empty());
    }

    #[test]
    fn string_kernels_compare_arena_views() {
        let offsets = [0u32, 1, 3, 6];
        let bytes = b"abbccc";
        let col = BatchColumn {
            values: BatchValues::Str {
                offsets: &offsets,
                bytes,
            },
            validity: None,
        };
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Eq, "bb")).unwrap();
        let mut s = sel(3);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert_eq!(s.as_slice(), &[1]);
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Ge, "bb")).unwrap();
        let mut s = sel(3);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert_eq!(s.as_slice(), &[1, 2]);
    }

    #[test]
    fn aggregators_match_streaming_semantics() {
        let vals = [5i64, 1, 9, 9, 3];
        let col = int_col(&vals);
        let s = sel(5);
        let mut count = BatchAggregator::new(AggFunc::Count);
        let mut sum = BatchAggregator::new(AggFunc::Sum);
        let mut avg = BatchAggregator::new(AggFunc::Avg);
        let mut min = BatchAggregator::new(AggFunc::Min);
        let mut max = BatchAggregator::new(AggFunc::Max);
        for agg in [&mut count, &mut sum, &mut avg, &mut min, &mut max] {
            agg.update(Some(&col), &s);
        }
        assert_eq!(count.finish(), Value::Int(5));
        assert_eq!(sum.finish(), Value::Float(27.0));
        assert_eq!(avg.finish(), Value::Float(5.4));
        assert_eq!(min.finish(), Value::Int(1));
        assert_eq!(max.finish(), Value::Int(9));
    }

    #[test]
    fn aggregators_skip_nulls_but_count_star_does_not() {
        let vals = [1i64, 2, 3];
        let words = [0b101u64];
        let col = BatchColumn {
            values: BatchValues::Int(&vals),
            validity: Some(&words),
        };
        let s = sel(3);
        let mut count = BatchAggregator::new(AggFunc::Count);
        count.update(Some(&col), &s);
        assert_eq!(count.finish(), Value::Int(2));
        let mut star = BatchAggregator::new(AggFunc::Count);
        star.update(None, &s);
        assert_eq!(star.finish(), Value::Int(3));
        let mut avg = BatchAggregator::new(AggFunc::Avg);
        avg.update(Some(&col), &s);
        assert_eq!(avg.finish(), Value::Float(2.0));
        let mut empty = BatchAggregator::new(AggFunc::Avg);
        empty.update(Some(&col), &SelectionVector::new());
        assert_eq!(empty.finish(), Value::Null);
    }

    #[test]
    fn string_min_max() {
        let offsets = [0u32, 3, 4, 9];
        let bytes = b"foeazebra";
        let col = BatchColumn {
            values: BatchValues::Str {
                offsets: &offsets,
                bytes,
            },
            validity: None,
        };
        let s = sel(3);
        let mut min = BatchAggregator::new(AggFunc::Min);
        min.update(Some(&col), &s);
        assert_eq!(min.finish(), Value::from("a"));
        let mut max = BatchAggregator::new(AggFunc::Max);
        max.update(Some(&col), &s);
        assert_eq!(max.finish(), Value::from("zebra"));
        // Sum over strings counts rows but keeps sum at 0.0 (as_f64 is
        // None on the row path).
        let mut sum = BatchAggregator::new(AggFunc::Sum);
        sum.update(Some(&col), &s);
        assert_eq!(sum.finish(), Value::Float(0.0));
    }

    /// Pool ["aa", "b", "cc"], rows decode to ["cc", "aa", "b", "aa"].
    fn dict_col<'a>(codes: &'a [u32], validity: Option<&'a [u64]>) -> BatchColumn<'a> {
        const POOL_OFFSETS: [u32; 4] = [0, 2, 3, 5];
        const POOL_BYTES: &[u8] = b"aabcc";
        BatchColumn {
            values: BatchValues::Dict {
                codes,
                pool_offsets: &POOL_OFFSETS,
                pool_bytes: POOL_BYTES,
            },
            validity,
        }
    }

    #[test]
    fn dict_equality_resolves_to_one_code_compare() {
        let codes = [2u32, 0, 1, 0];
        let col = dict_col(&codes, None);
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Eq, "aa")).unwrap();
        let mut s = sel(4);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert_eq!(s.as_slice(), &[1, 3]);
        // Literal absent from the pool: Eq empties, Ne keeps all valid.
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Eq, "zz")).unwrap();
        let mut s = sel(4);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert!(s.is_empty());
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Ne, "zz")).unwrap();
        let mut s = sel(4);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn dict_ordered_compares_match_plain_string_kernels() {
        let codes = [2u32, 0, 1, 0];
        let dict = dict_col(&codes, None);
        // The same rows in plain arena form: "cc", "aa", "b", "aa".
        let offsets = [0u32, 2, 4, 5, 7];
        let bytes = b"ccaabaa";
        let plain = BatchColumn {
            values: BatchValues::Str {
                offsets: &offsets,
                bytes,
            },
            validity: None,
        };
        // Literals between, below, above, and inside the pool.
        for lit in ["aa", "ab", "b", "cc", "", "zz"] {
            for op in [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ] {
                let p = CompiledPredicate::compile(&Expr::cmp(0, op, lit)).unwrap();
                let mut a = sel(4);
                p.filter(std::slice::from_ref(&dict), &mut a);
                let mut b = sel(4);
                p.filter(std::slice::from_ref(&plain), &mut b);
                assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "op {op:?} literal {lit:?} diverged between dict and plain"
                );
            }
        }
    }

    #[test]
    fn dict_null_rows_never_satisfy() {
        let codes = [2u32, 0, 1, 0];
        // Row 1 invalid.
        let words = [0b1101u64];
        let col = dict_col(&codes, Some(&words));
        let p = CompiledPredicate::compile(&Expr::cmp(0, CmpOp::Le, "zz")).unwrap();
        let mut s = sel(4);
        p.filter(std::slice::from_ref(&col), &mut s);
        assert_eq!(s.as_slice(), &[0, 2, 3]);
    }

    #[test]
    fn dict_min_max_decode_once_per_batch() {
        let codes = [2u32, 0, 1, 0];
        let col = dict_col(&codes, None);
        let s = sel(4);
        let mut min = BatchAggregator::new(AggFunc::Min);
        min.update(Some(&col), &s);
        assert_eq!(min.finish(), Value::from("aa"));
        let mut max = BatchAggregator::new(AggFunc::Max);
        max.update(Some(&col), &s);
        assert_eq!(max.finish(), Value::from("cc"));
        let mut sum = BatchAggregator::new(AggFunc::Sum);
        sum.update(Some(&col), &s);
        assert_eq!(sum.finish(), Value::Float(0.0));
    }

    #[test]
    fn remapped_predicate_filters_union_projection_identically() {
        let a = [1i64, 2, 3, 4, 5];
        let b = [10i64, 20, 30, 40, 50];
        // Solo projection: [a, b]; union projection: [x, a, b] (the
        // participant's slots 0, 1 live at union positions 1, 2).
        let x = [0i64, 0, 0, 0, 0];
        let solo_cols = [int_col(&a), int_col(&b)];
        let union_cols = [int_col(&x), int_col(&a), int_col(&b)];
        let p = CompiledPredicate::compile(&Expr::And(vec![
            Expr::cmp(0, CmpOp::Ge, 3i64),
            Expr::cmp(1, CmpOp::Lt, 50i64),
        ]))
        .unwrap();
        let mut solo = sel(5);
        p.filter(&solo_cols, &mut solo);
        let remapped = p.remap_slots(&[1, 2]);
        let base = sel(5);
        let mut shared = SelectionVector::new();
        remapped.filter_from(&union_cols, &base, &mut shared);
        assert_eq!(solo.as_slice(), shared.as_slice());
        // `filter_from` neither consumed the base nor kept stale rows
        // from a previous (larger) use of the scratch vector.
        assert_eq!(base.len(), 5);
        let mut scratch = sel(5);
        remapped.filter_from(&union_cols, &base, &mut scratch);
        assert_eq!(scratch.as_slice(), solo.as_slice());
    }

    #[test]
    fn selection_indices_address_whole_batches() {
        // A batch-sized identity selection touches every row once.
        let vals: Vec<i64> = (0..BATCH_ROWS as i64).collect();
        let col = int_col(&vals);
        let s = sel(BATCH_ROWS);
        let mut sum = BatchAggregator::new(AggFunc::Sum);
        sum.update(Some(&col), &s);
        let expected = (BATCH_ROWS * (BATCH_ROWS - 1) / 2) as f64;
        assert_eq!(sum.finish(), Value::Float(expected));
    }
}
