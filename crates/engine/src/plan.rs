//! Physical query plans.
//!
//! A [`QueryPlan`] is the engine's executable form of a
//! select-project-aggregate / select-project-join query: one
//! [`TablePlan`] per source (with its access path, projection and bound
//! predicate), a chain of equijoins, and the output aggregates.

use crate::expr::Expr;
use recache_data::RawFile;
use recache_layout::{ColumnStore, DremelStore, OffsetStore, RowStore};
use std::sync::Arc;

/// How a table's tuples are obtained.
#[derive(Clone)]
pub enum AccessPath {
    /// Scan the raw file (first scan builds the positional map).
    Raw(Arc<RawFile>),
    /// Scan an in-memory relational columnar cache.
    Columnar(Arc<ColumnStore>),
    /// Scan an in-memory Dremel (nested columnar) cache.
    Dremel(Arc<DremelStore>),
    /// Scan an in-memory row-oriented cache.
    Row(Arc<RowStore>),
    /// Re-read the records a lazy cache selected, through the raw file's
    /// positional map.
    Offsets {
        file: Arc<RawFile>,
        store: Arc<OffsetStore>,
    },
}

impl std::fmt::Debug for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPath::Raw(_) => write!(f, "Raw"),
            AccessPath::Columnar(s) => write!(f, "Columnar({} rows)", s.row_count()),
            AccessPath::Dremel(s) => write!(f, "Dremel({} records)", s.record_count()),
            AccessPath::Row(s) => write!(f, "Row({} rows)", s.row_count()),
            AccessPath::Offsets { store, .. } => {
                write!(f, "Offsets({} records)", store.record_count())
            }
        }
    }
}

/// One table's scan + filter.
#[derive(Debug, Clone)]
pub struct TablePlan {
    pub name: String,
    pub access: AccessPath,
    /// Leaf ids this query touches on this table, sorted ascending; the
    /// scan emits rows with one slot per entry.
    pub accessed: Vec<usize>,
    /// Predicate over slots (bound to `accessed` order).
    pub predicate: Option<Expr>,
    /// Record-level domain (no repeated leaf accessed): scans skip the
    /// duplicate rows flattening introduces.
    pub record_level: bool,
    /// Collect the record ids of satisfying tuples (fed to the cache
    /// admission path).
    pub collect_satisfying: bool,
}

/// Aggregate functions of the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One output aggregate. `slot == None` means `count(*)`.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub table: usize,
    pub slot: Option<usize>,
    pub func: AggFunc,
}

/// An equijoin between two tables' slots. Joins must be ordered so that
/// `left_table` is already part of the joined prefix when the join runs
/// (the planner guarantees this).
#[derive(Debug, Clone)]
pub struct JoinSpec {
    pub left_table: usize,
    pub left_slot: usize,
    pub right_table: usize,
    pub right_slot: usize,
}

/// A complete physical plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    pub tables: Vec<TablePlan>,
    pub joins: Vec<JoinSpec>,
    pub aggregates: Vec<AggSpec>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_names() {
        assert_eq!(AggFunc::Sum.name(), "sum");
        assert_eq!(AggFunc::Count.name(), "count");
        assert_eq!(AggFunc::Avg.name(), "avg");
    }

    #[test]
    fn access_path_debug_is_compact() {
        let store = Arc::new(OffsetStore::build(vec![1, 2], 4));
        let file = Arc::new(RawFile::from_bytes(
            Vec::new(),
            recache_data::FileFormat::Csv,
            recache_types::Schema::new(vec![]),
        ));
        let path = AccessPath::Offsets { file, store };
        assert_eq!(format!("{path:?}"), "Offsets(2 records)");
    }
}
