//! Physical execution: scans, filters, hash joins, aggregates — with the
//! per-operator cost measurements ReCache's policies consume.
//!
//! # Vectorized vs row-at-a-time execution
//!
//! Cache-store scans (columnar / Dremel / row layouts) and *flat* raw
//! files (CSV and flat JSON, via `RawFile::supports_batch_scan`) run
//! *vectorized* by default: the source yields typed [`ColumnBatch`]es
//! (see `recache_layout::batch`), compiled predicate kernels compact
//! each batch's `SelectionVector` clause by clause, and batch
//! aggregate kernels fold the survivors — no per-row `Value`
//! materialization on the hot path. Nested/ragged JSON shapes, offsets
//! re-reads, and non-compilable predicates (`OR`, `NOT`, slot-vs-slot)
//! fall back to the row-at-a-time path, which both
//! [`ExecOptions::vectorized`]` = false` and the micro-benchmarks keep
//! exercisable.
//!
//! D/C attribution: predicate-kernel time joins the store's
//! mask-navigation/assembly time in `compute_ns`; aggregate and
//! materialization gathers join the store's value gathering in
//! `data_ns`. See `scan_store_batched` for how this relates to the row
//! path's in-sink predicate evaluation.

use crate::exactsum::ExactSum;
use crate::kernel::{BatchAggregator, CompiledPredicate};
use crate::plan::{AccessPath, AggFunc, QueryPlan, TablePlan};
use recache_data::RawFile;
use recache_layout::{
    ColumnBatch, ColumnStore, DremelStore, RowStore, ScanCost, SelectionVector, BATCH_ROWS,
};
use recache_types::{CancelToken, Error, Result, ScanCtl, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use workpool::ThreadPool;

/// A callback the executor invokes between a shared scan's chunk waves
/// to re-observe the query's negotiated thread share (mid-query
/// scheduler repricing): threads freed by departed streams rebalance
/// into the running scan instead of idling until the next query.
/// Cloneable and `'static` so it rides inside [`ExecOptions`] across
/// worker threads (typically capturing an `Arc<StreamLease>`).
#[derive(Clone)]
pub struct Repricer(Arc<dyn Fn() -> usize + Send + Sync>);

impl Repricer {
    pub fn new(f: impl Fn() -> usize + Send + Sync + 'static) -> Self {
        Repricer(Arc::new(f))
    }

    /// The thread budget this query should use from now on.
    pub fn threads(&self) -> usize {
        (self.0)()
    }
}

impl std::fmt::Debug for Repricer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Repricer").finish_non_exhaustive()
    }
}

/// Execution knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Use batched kernels for cache-store scans when possible (default).
    /// Disabled, every access path runs row-at-a-time — kept for
    /// benchmarking and for the vectorized/row equivalence suite.
    pub vectorized: bool,
    /// Threads driving vectorized cache-store scans: batch chunks are
    /// share-nothing, so they are split into contiguous task ranges
    /// executed on the shared work-stealing pool and merged in fixed
    /// task order. `0` (the default) means all available parallelism;
    /// `1` reproduces single-threaded execution exactly. Results are
    /// bit-identical at every thread count (sums accumulate through
    /// [`ExactSum`], extremes/ids merge in row order).
    pub threads: usize,
    /// Cooperative cancellation/deadline for this query. Polled at
    /// chunk granularity inside parallel scans and between join-fold
    /// phases; a tripped token surfaces as [`Error::Cancelled`] /
    /// [`Error::Timeout`] and releases the query's thread budget
    /// promptly (workers finish their current chunk and stop).
    pub cancel: Option<Arc<CancelToken>>,
    /// Mid-query repricing hook, consulted by [`execute_shared`] between
    /// chunk waves. `None` (the default) keeps the initial `threads`
    /// budget for the whole query.
    pub reprice: Option<Repricer>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            vectorized: true,
            threads: 0,
            cancel: None,
            reprice: None,
        }
    }
}

impl ExecOptions {
    /// Vectorized options with an explicit thread budget — the one
    /// defaulting rule every scheduler/bench/test call site shares
    /// instead of hand-rolling struct literals.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    /// The row-at-a-time reference configuration (single-threaded,
    /// non-vectorized): the baseline the equivalence suites and the
    /// trajectory benches compare against.
    pub fn row_reference() -> Self {
        ExecOptions {
            vectorized: false,
            threads: 1,
            cancel: None,
            reprice: None,
        }
    }

    /// Returns these options with `cancel` replaced.
    pub fn with_cancel(mut self, cancel: Arc<CancelToken>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The thread count this configuration resolves to (`0` ⇒ machine
    /// parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            workpool::available_parallelism()
        } else {
            self.threads
        }
    }

    /// Polls the cancel token, if one is installed.
    pub fn check_cancel(&self) -> Result<()> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }
}

/// Contiguous task ranges per parallel scan: a few tasks per thread so
/// range stealing can rebalance skew without shrinking batches.
const TASKS_PER_THREAD: usize = 4;

/// Splits `n_chunks` batch chunks into at most `threads ·
/// TASKS_PER_THREAD` contiguous, near-even `(lo, hi)` ranges. Pure
/// function of its inputs, so the task decomposition — and with it every
/// merge order — is deterministic for a fixed thread count.
fn task_ranges(n_chunks: usize, threads: usize) -> Vec<(usize, usize)> {
    // `threads = 1` gets exactly one task: a single uninterrupted
    // `scan_batches_range` over the whole grid, i.e. the serial scan.
    let n_tasks = if threads <= 1 {
        1
    } else {
        n_chunks
            .min(threads.saturating_mul(TASKS_PER_THREAD))
            .max(1)
    };
    let base = n_chunks / n_tasks;
    let extra = n_chunks % n_tasks;
    let mut lo = 0usize;
    (0..n_tasks)
        .map(|t| {
            let len = base + usize::from(t < extra);
            let range = (lo, lo + len);
            lo += len;
            range
        })
        .collect()
}

/// What kind of access path served a table, after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Raw file, first scan (tokenized everything, built the positional
    /// map).
    RawFirstScan,
    /// Raw file through an existing positional map.
    RawMapped,
    CacheColumnar,
    CacheDremel,
    CacheRow,
    /// Lazy cache: selective re-read of the raw file.
    CacheOffsets,
}

impl AccessKind {
    pub fn is_cache_store(&self) -> bool {
        matches!(
            self,
            AccessKind::CacheColumnar | AccessKind::CacheDremel | AccessKind::CacheRow
        )
    }
}

/// Per-table execution statistics (the measurements behind `t`, `s`, `D`,
/// `C`, `ri`, `ci` in the paper's cost model).
#[derive(Debug, Clone)]
pub struct TableStats {
    pub name: String,
    pub access: AccessKind,
    /// Wall time for this table's scan + filter. For raw access this is
    /// the operator execution time `t`; for cache access it is the cache
    /// scan time `s`.
    pub exec_ns: u64,
    /// For cache-store scans: the measured D/C split.
    pub cache_scan: Option<ScanCost>,
    /// Row slots visited (`ri`).
    pub rows_scanned: usize,
    /// Rows that satisfied the predicate.
    pub rows_out: usize,
    /// Records visited.
    pub records_scanned: usize,
    /// Columns (leaves) accessed (`ci`).
    pub cols_accessed: usize,
    pub record_level: bool,
    /// For cache-store scans: the store's flattened row count `R`.
    pub flattened_rows: Option<usize>,
    /// Record ids of satisfying tuples, when collection was requested.
    pub satisfying: Option<Vec<u32>>,
    /// Chunk attempts beyond the first (transient faults absorbed by
    /// bounded retry during this table's scan).
    pub retried_chunks: u64,
    /// Whether the batched scan failed with an I/O error and the table
    /// was served by the row-at-a-time fallback instead.
    pub degraded_fallback: bool,
}

/// Whole-query execution statistics.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    pub tables: Vec<TableStats>,
    pub join_ns: u64,
    pub agg_ns: u64,
    pub total_ns: u64,
}

/// Query result: one value per aggregate.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    pub values: Vec<Value>,
    /// Rows that reached the aggregation operator.
    pub rows_aggregated: usize,
    pub stats: ExecStats,
}

/// Executes a plan with default options (vectorized cache-store scans).
pub fn execute(plan: &QueryPlan) -> Result<QueryOutput> {
    execute_with(plan, &ExecOptions::default())
}

/// Executes a plan under explicit [`ExecOptions`].
pub fn execute_with(plan: &QueryPlan, options: &ExecOptions) -> Result<QueryOutput> {
    let t_start = Instant::now();
    if plan.tables.is_empty() {
        return Err(Error::plan("plan has no tables"));
    }
    for agg in &plan.aggregates {
        if agg.table >= plan.tables.len() {
            return Err(Error::plan(format!(
                "aggregate references table {}",
                agg.table
            )));
        }
    }
    let output = if plan.tables.len() == 1 && plan.joins.is_empty() {
        execute_single(plan, options)?
    } else {
        execute_join(plan, options)?
    };
    let mut output = output;
    output.stats.total_ns = t_start.elapsed().as_nanos() as u64;
    Ok(output)
}

/// Streaming path: scan → filter → aggregate without materializing rows.
fn execute_single(plan: &QueryPlan, options: &ExecOptions) -> Result<QueryOutput> {
    let table = &plan.tables[0];
    let agg_slots: Vec<Option<usize>> = plan.aggregates.iter().map(|a| a.slot).collect();

    // Vectorized fast path: cache store + (absent or compilable)
    // predicate. One sink body serves every thread count: the scan
    // yields per-task sinks (a single inline task at `threads = 1`),
    // merged in task (= row) order.
    let mut degraded = false;
    if let Some((store, pred)) = batchable(table, options) {
        let raw = !store.is_cache_store();
        match execute_single_batched(plan, table, &agg_slots, store, pred, options) {
            Ok(output) => return Ok(output),
            // A raw batched scan whose I/O error survived bounded retry
            // degrades to the row-at-a-time fallback below: the row
            // tokenizer re-reads the source independently (its own
            // fault draws, its own retry), honoring the cache's
            // always-can-recompute-from-raw invariant. Parse errors are
            // deterministic data problems and timeouts/cancellations
            // are final, so only `Error::Io` degrades.
            Err(Error::Io(_)) if raw => degraded = true,
            Err(err) => return Err(err),
        }
    }

    // Row-at-a-time path: raw files, offsets re-reads, non-compilable
    // predicates, vectorization disabled, or degraded fallback. The
    // cancel token is polled at scan start only — row scans are the
    // fallback path, not the latency-sensitive one.
    options.check_cancel()?;
    let mut satisfying: Option<Vec<u32>> = table.collect_satisfying.then(Vec::new);
    let mut rows_out = 0usize;
    let mut aggs: Vec<AggState> = plan
        .aggregates
        .iter()
        .map(|a| AggState::new(a.func))
        .collect();
    let t0 = Instant::now();
    let scan = scan_table(table, &mut |record_id, row| {
        rows_out += 1;
        if let Some(ids) = satisfying.as_mut() {
            ids.push(record_id as u32);
        }
        for (state, slot) in aggs.iter_mut().zip(&agg_slots) {
            match slot {
                Some(s) => state.update(&row[*s]),
                None => state.update_count_star(),
            }
        }
    })?;
    let exec_ns = t0.elapsed().as_nanos() as u64;

    let values: Vec<Value> = aggs.into_iter().map(AggState::finish).collect();
    let mut stats = ExecStats {
        tables: vec![table_stats(table, scan, exec_ns, rows_out, satisfying)],
        join_ns: 0,
        agg_ns: 0, // folded into exec_ns on the streaming path
        total_ns: 0,
    };
    stats.tables[0].degraded_fallback = degraded;
    Ok(QueryOutput {
        values,
        rows_aggregated: rows_out,
        stats,
    })
}

/// The vectorized arm of [`execute_single`], separated so a failed raw
/// batched scan can fall back to the row path.
fn execute_single_batched(
    plan: &QueryPlan,
    table: &TablePlan,
    agg_slots: &[Option<usize>],
    store: StoreRef<'_>,
    pred: Option<CompiledPredicate>,
    options: &ExecOptions,
) -> Result<QueryOutput> {
    let mut satisfying: Option<Vec<u32>> = table.collect_satisfying.then(Vec::new);
    let mut rows_out = 0usize;
    let want_ids = satisfying.is_some();
    let threads = options.effective_threads();
    struct TaskSink {
        aggs: Vec<BatchAggregator>,
        rows_out: usize,
        ids: Option<Vec<u32>>,
    }
    let t0 = Instant::now();
    let (scan, sinks) = scan_store_batched(
        store,
        table,
        pred.as_ref(),
        want_ids,
        threads,
        options.cancel.as_ref(),
        || TaskSink {
            aggs: plan
                .aggregates
                .iter()
                .map(|a| BatchAggregator::new(a.func))
                .collect(),
            rows_out: 0,
            ids: want_ids.then(Vec::new),
        },
        |sink, batch, sel| {
            sink.rows_out += sel.len();
            if let Some(ids) = sink.ids.as_mut() {
                for &i in sel.as_slice() {
                    ids.push(batch.record_ids[i as usize]);
                }
            }
            for (state, slot) in sink.aggs.iter_mut().zip(agg_slots) {
                state.update(slot.map(|s| &batch.columns[s]), sel);
            }
        },
    )?;
    let mut merged: Option<Vec<BatchAggregator>> = None;
    for sink in sinks {
        rows_out += sink.rows_out;
        if let (Some(all), Some(part)) = (satisfying.as_mut(), sink.ids) {
            all.extend(part);
        }
        match merged.as_mut() {
            None => merged = Some(sink.aggs),
            Some(base) => {
                for (into, part) in base.iter_mut().zip(sink.aggs) {
                    into.merge(part);
                }
            }
        }
    }
    let aggs = merged.unwrap_or_default();
    let exec_ns = t0.elapsed().as_nanos() as u64;
    let values: Vec<Value> = aggs.into_iter().map(BatchAggregator::finish).collect();
    let stats = ExecStats {
        tables: vec![table_stats(table, scan, exec_ns, rows_out, satisfying)],
        join_ns: 0,
        agg_ns: 0, // folded into exec_ns on the streaming path
        total_ns: 0,
    };
    Ok(QueryOutput {
        values,
        rows_aggregated: rows_out,
        stats,
    })
}

/// Join path: materialize filtered tables, fold hash joins, aggregate.
/// Probe/build inputs coming from cache stores are scanned batched —
/// predicate kernels run before any `Value` is materialized, and every
/// slot that feeds a join extracts its typed [`JoinKey`] column straight
/// from the batch views during the scan. The fold then hashes and probes
/// those key columns; it never touches a `Value` to key a row.
fn execute_join(plan: &QueryPlan, options: &ExecOptions) -> Result<QueryOutput> {
    // Which slots of each table serve as a join key (probe or build
    // side). Their key columns are built once, at scan time.
    let mut key_slots: Vec<Vec<usize>> = vec![Vec::new(); plan.tables.len()];
    for join in &plan.joins {
        for (t, s) in [
            (join.left_table, join.left_slot),
            (join.right_table, join.right_slot),
        ] {
            if t < plan.tables.len() && !key_slots[t].contains(&s) {
                key_slots[t].push(s);
            }
        }
    }

    // Scan all tables.
    let mut table_rows: Vec<Vec<Vec<Value>>> = Vec::with_capacity(plan.tables.len());
    let mut table_keys: Vec<Vec<Vec<Option<JoinKey>>>> = Vec::with_capacity(plan.tables.len());
    let mut stats_list: Vec<TableStats> = Vec::with_capacity(plan.tables.len());
    let threads = options.effective_threads();
    for (t, table) in plan.tables.iter().enumerate() {
        options.check_cancel()?;
        let slots = &key_slots[t];
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut keys: Vec<Vec<Option<JoinKey>>> = vec![Vec::new(); slots.len()];
        let mut satisfying: Option<Vec<u32>> = table.collect_satisfying.then(Vec::new);
        let t0 = Instant::now();
        let mut degraded = false;
        let batched = if let Some((store, pred)) = batchable(table, options) {
            let raw = !store.is_cache_store();
            let want_ids = satisfying.is_some();
            // Per-task row/key buffers, concatenated in task (= row)
            // order, so the materialized table is identical at every
            // thread count (a single inline task at `threads = 1`).
            let attempt = scan_store_batched(
                store,
                table,
                pred.as_ref(),
                want_ids,
                threads,
                options.cancel.as_ref(),
                || {
                    (
                        Vec::<Vec<Value>>::new(),
                        want_ids.then(Vec::<u32>::new),
                        vec![Vec::<Option<JoinKey>>::new(); slots.len()],
                    )
                },
                |(rows, ids, keys), batch, sel| {
                    rows.reserve(sel.len());
                    for &i in sel.as_slice() {
                        let i = i as usize;
                        rows.push(batch.columns.iter().map(|c| c.value(i)).collect());
                        if let Some(ids) = ids.as_mut() {
                            ids.push(batch.record_ids[i]);
                        }
                    }
                    // Join keys straight from the typed views — no
                    // `Value` round trip, dict strings decode once here.
                    for (out, &slot) in keys.iter_mut().zip(slots) {
                        let col = &batch.columns[slot];
                        for &i in sel.as_slice() {
                            out.push(batch_join_key(col, i as usize));
                        }
                    }
                },
            );
            match attempt {
                Ok((scan, sinks)) => {
                    for (part_rows, part_ids, part_keys) in sinks {
                        rows.extend(part_rows);
                        if let (Some(all), Some(part)) = (satisfying.as_mut(), part_ids) {
                            all.extend(part);
                        }
                        for (all, part) in keys.iter_mut().zip(part_keys) {
                            all.extend(part);
                        }
                    }
                    Some(scan)
                }
                // Same degraded-mode rule as the single-table path: a
                // raw batched scan whose I/O error survived retry falls
                // back to the row tokenizer (nothing was merged into
                // `rows`/`keys` yet — the error preempts the merge).
                Err(Error::Io(_)) if raw => {
                    degraded = true;
                    None
                }
                Err(err) => return Err(err),
            }
        } else {
            None
        };
        let scan = match batched {
            Some(scan) => scan,
            None => {
                options.check_cancel()?;
                let scan = scan_table(table, &mut |record_id, row| {
                    rows.push(row.to_vec());
                    if let Some(ids) = satisfying.as_mut() {
                        ids.push(record_id as u32);
                    }
                })?;
                // Row-fallback tables derive their key columns from the
                // materialized rows (same values, same normalization).
                for (out, &slot) in keys.iter_mut().zip(slots) {
                    out.extend(rows.iter().map(|r| join_key(&r[slot])));
                }
                scan
            }
        };
        let exec_ns = t0.elapsed().as_nanos() as u64;
        let mut stats = table_stats(table, scan, exec_ns, rows.len(), satisfying);
        stats.degraded_fallback = degraded;
        stats_list.push(stats);
        table_keys.push(keys);
        table_rows.push(rows);
    }

    // Fold joins. Combined rows hold per-table projected slots
    // concatenated in table order; `offsets[t]` is table t's base slot.
    let t_join = Instant::now();
    let widths: Vec<usize> = plan.tables.iter().map(|t| t.accessed.len()).collect();
    let mut offsets = vec![0usize; plan.tables.len()];
    for t in 1..plan.tables.len() {
        offsets[t] = offsets[t - 1] + widths[t - 1];
    }
    let mut joined: Vec<Vec<Value>> = Vec::new();
    let mut joined_tables: Vec<usize> = vec![0];
    // Per joined row, the source row index in each joined table (in
    // `joined_tables` order, stride = `joined_tables.len()`): probe keys
    // are looked up through it in the scan-time key columns instead of
    // being re-derived from the combined `Value` row on every fold.
    let mut src: Vec<u32> = (0..table_rows[0].len() as u32).collect();
    // Seed with table 0.
    for row in &table_rows[0] {
        let mut combined = vec![Value::Null; widths.iter().sum()];
        combined[..row.len()].clone_from_slice(row);
        joined.push(combined);
    }
    for join in &plan.joins {
        // One poll per fold step: joins over large inputs are the
        // longest compute phases outside scans.
        options.check_cancel()?;
        let (probe_table, probe_slot, build_table, build_slot) =
            if joined_tables.contains(&join.left_table) {
                (
                    join.left_table,
                    join.left_slot,
                    join.right_table,
                    join.right_slot,
                )
            } else if joined_tables.contains(&join.right_table) {
                (
                    join.right_table,
                    join.right_slot,
                    join.left_table,
                    join.left_slot,
                )
            } else {
                return Err(Error::plan(
                    "join references tables not yet in the joined prefix",
                ));
            };
        if joined_tables.contains(&build_table) {
            return Err(Error::plan("join would re-join an already joined table"));
        }
        // Build a hash map over the new table's key column (partitioned
        // across the pool for large builds).
        let map = build_join_map(
            keys_for(&key_slots, &table_keys, build_table, build_slot),
            threads,
        );
        // Probe with the joined prefix's key column (partitioned across
        // the pool for large probe sides).
        let probe_keys = keys_for(&key_slots, &table_keys, probe_table, probe_slot);
        let probe_pos = joined_tables
            .iter()
            .position(|&t| t == probe_table)
            .expect("probe table is in the joined prefix");
        let build_offset = offsets[build_table];
        (joined, src) = probe_join_map(
            &joined,
            &src,
            joined_tables.len(),
            probe_pos,
            probe_keys,
            &map,
            &table_rows[build_table],
            build_offset,
            threads,
        );
        joined_tables.push(build_table);
    }
    let join_ns = t_join.elapsed().as_nanos() as u64;

    // Aggregate.
    options.check_cancel()?;
    let t_agg = Instant::now();
    let mut aggs: Vec<AggState> = plan
        .aggregates
        .iter()
        .map(|a| AggState::new(a.func))
        .collect();
    for row in &joined {
        for (state, spec) in aggs.iter_mut().zip(&plan.aggregates) {
            match spec.slot {
                Some(s) => state.update(&row[offsets[spec.table] + s]),
                None => state.update_count_star(),
            }
        }
    }
    let agg_ns = t_agg.elapsed().as_nanos() as u64;

    let values: Vec<Value> = aggs.into_iter().map(AggState::finish).collect();
    Ok(QueryOutput {
        values,
        rows_aggregated: joined.len(),
        stats: ExecStats {
            tables: stats_list,
            join_ns,
            agg_ns,
            total_ns: 0,
        },
    })
}

/// Result of scanning one table (before stats assembly).
struct ScanOutcome {
    access: AccessKind,
    cache_scan: Option<ScanCost>,
    rows_scanned: usize,
    records_scanned: usize,
    flattened_rows: Option<usize>,
    retried_chunks: u64,
}

/// A scan source that supports batched scans: the three cache stores,
/// plus flat raw files — CSV and flat JSON — whose chunk grids
/// tokenize/parse records straight into typed scratch columns (no
/// per-record `Value` tree, no flattening pass). The executor never
/// branches on the raw format; `RawFile` dispatches internally.
#[derive(Clone, Copy)]
enum StoreRef<'a> {
    Columnar(&'a ColumnStore),
    Dremel(&'a DremelStore),
    Row(&'a RowStore),
    Raw(&'a RawFile),
}

impl StoreRef<'_> {
    /// The access label for stats. Must be sampled **before** the scan
    /// runs: a raw first scan installs the positional map as a side
    /// effect, so sampling afterwards would always report `RawMapped`.
    /// (A racing stream can still install the map between this sample
    /// and the scan's own per-range mode decision — the label is
    /// best-effort under cross-stream races, exact otherwise.)
    fn access_kind(&self) -> AccessKind {
        match self {
            StoreRef::Columnar(_) => AccessKind::CacheColumnar,
            StoreRef::Dremel(_) => AccessKind::CacheDremel,
            StoreRef::Row(_) => AccessKind::CacheRow,
            StoreRef::Raw(file) => {
                if file.posmap().is_some() {
                    AccessKind::RawMapped
                } else {
                    AccessKind::RawFirstScan
                }
            }
        }
    }

    fn record_count(&self) -> usize {
        match self {
            StoreRef::Columnar(s) => s.record_count(),
            StoreRef::Dremel(s) => s.record_count(),
            StoreRef::Row(s) => s.record_count(),
            StoreRef::Raw(file) => file.known_record_count().unwrap_or(0),
        }
    }

    /// Flattened row count `R` — cache stores only (raw scans report no
    /// store statistics, matching the row-at-a-time raw path).
    fn flattened_rows(&self) -> Option<usize> {
        match self {
            StoreRef::Columnar(s) => Some(s.row_count()),
            StoreRef::Dremel(s) => Some(s.flattened_rows()),
            StoreRef::Row(s) => Some(s.row_count()),
            StoreRef::Raw(_) => None,
        }
    }

    fn is_cache_store(&self) -> bool {
        !matches!(self, StoreRef::Raw(_))
    }

    /// Size of the source's batch-chunk grid for this scan shape (the
    /// unit the parallel executor partitions into task ranges).
    fn batch_chunks(&self, projection: &[usize], record_level: bool) -> usize {
        match self {
            StoreRef::Columnar(s) => s.batch_chunks(projection, record_level),
            StoreRef::Dremel(s) => s.batch_chunks(projection, record_level),
            StoreRef::Row(s) => s.batch_chunks(projection, record_level),
            StoreRef::Raw(file) => file.batch_chunks(),
        }
    }

    /// Store scans are infallible; raw scans can hit parse errors and
    /// injected faults, so the shared signature is `Result` and store
    /// arms only fail on cancellation.
    ///
    /// Raw arms thread the [`ScanCtl`] through to the source, which
    /// gates every chunk on admission (cancel/timeout, skip-above-
    /// failure) and records failures by chunk index. Cache-store scans
    /// cannot fail, but when a cancel token is present they run
    /// chunk-at-a-time with a poll between chunks, bounding
    /// cancellation latency; without a token they run the whole range
    /// in one call — the unhardened fast path, unchanged.
    #[allow(clippy::too_many_arguments)]
    fn scan_batches_range_ctl(
        &self,
        projection: &[usize],
        record_level: bool,
        want_record_ids: bool,
        chunk_lo: usize,
        chunk_hi: usize,
        ctl: Option<&ScanCtl>,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut recache_layout::SelectionVector),
    ) -> Result<ScanCost> {
        if let StoreRef::Raw(file) = self {
            return file.scan_batches_range_ctl(
                projection,
                want_record_ids,
                chunk_lo,
                chunk_hi,
                ctl,
                on_batch,
            );
        }
        let run = |lo: usize,
                   hi: usize,
                   on_batch: &mut dyn FnMut(
            &ColumnBatch<'_>,
            &mut recache_layout::SelectionVector,
        )| match self {
            StoreRef::Columnar(s) => {
                s.scan_batches_range(projection, record_level, want_record_ids, lo, hi, on_batch)
            }
            StoreRef::Dremel(s) => {
                s.scan_batches_range(projection, record_level, want_record_ids, lo, hi, on_batch)
            }
            StoreRef::Row(s) => {
                s.scan_batches_range(projection, record_level, want_record_ids, lo, hi, on_batch)
            }
            StoreRef::Raw(_) => unreachable!("raw handled above"),
        };
        match ctl.and_then(ScanCtl::cancel_token) {
            None => Ok(run(chunk_lo, chunk_hi, on_batch)),
            Some(token) => {
                let mut cost = ScanCost::default();
                for chunk in chunk_lo..chunk_hi {
                    token.check()?;
                    cost.add(&run(chunk, chunk + 1, on_batch));
                }
                Ok(cost)
            }
        }
    }
}

/// Whether this table can run vectorized: a cache store or flat raw
/// file (CSV / flat JSON) whose predicate (if any) compiles to kernels.
fn batchable<'a>(
    table: &'a TablePlan,
    options: &ExecOptions,
) -> Option<(StoreRef<'a>, Option<CompiledPredicate>)> {
    if !options.vectorized {
        return None;
    }
    let store = match &table.access {
        AccessPath::Columnar(s) => StoreRef::Columnar(s),
        AccessPath::Dremel(s) => StoreRef::Dremel(s),
        AccessPath::Row(s) => StoreRef::Row(s),
        // Flat raw scans (any format) batch like stores; nested/ragged
        // JSON shapes keep the row-at-a-time flattening fallback.
        AccessPath::Raw(file) if file.supports_batch_scan() => StoreRef::Raw(file),
        AccessPath::Raw(_) | AccessPath::Offsets { .. } => return None,
    };
    let pred = match table.predicate.as_ref() {
        None => None,
        // A predicate that does not compile (OR / NOT / slot-vs-slot)
        // sends the whole table down the row-at-a-time path.
        Some(p) => Some(CompiledPredicate::compile(p)?),
    };
    Some((store, pred))
}

/// Whether `plan` can participate in a shared multi-predicate scan: a
/// single-table, join-free query over a *batchable raw* source (flat
/// CSV / flat JSON) whose predicate compiles to kernels. Cache-store
/// scans are excluded — they are already cheap, and sharing them would
/// only serialize independent reads.
pub fn shareable(plan: &QueryPlan, options: &ExecOptions) -> bool {
    plan.tables.len() == 1
        && plan.joins.is_empty()
        && matches!(&plan.tables[0].access, AccessPath::Raw(f) if f.supports_batch_scan())
        && batchable(&plan.tables[0], options).is_some()
}

/// Executes K single-table plans over the *same* raw source as one
/// shared multi-predicate pass: the file is tokenized once, each batch's
/// identity selection is filtered per participant
/// ([`CompiledPredicate::filter_from`], slots remapped onto the union
/// projection), and per-participant selection vectors feed that
/// participant's own aggregates/ids. Outputs return in plan order and
/// are **bit-identical** to running each plan alone: the chunk grid is
/// projection-independent, clause order within each predicate is
/// preserved, and per-task partials merge in ascending chunk order
/// (order-exact sums via [`ExactSum`]).
///
/// When [`ExecOptions::reprice`] is set, the pass runs in chunk *waves*
/// and re-observes the thread budget between waves (mid-query scheduler
/// repricing). A single shared [`ScanCtl`] spans all waves, so fault
/// retry bookkeeping, skip-above-failure, and deterministic error
/// selection behave exactly as in a solo scan.
///
/// Any error (validation, I/O surviving bounded retry, cancellation)
/// fails the *whole* pass — callers fall back to independent execution
/// per participant, where the solo degraded-fallback path applies.
pub fn execute_shared(plans: &[QueryPlan], options: &ExecOptions) -> Result<Vec<QueryOutput>> {
    let t_start = Instant::now();
    let first = plans
        .first()
        .ok_or_else(|| Error::plan("shared scan needs at least one plan"))?;
    let AccessPath::Raw(file) = &first.tables[0].access else {
        return Err(Error::plan("shared scan requires raw access"));
    };
    let mut union: Vec<usize> = Vec::new();
    for plan in plans {
        if !shareable(plan, options) {
            return Err(Error::plan("plan is not shareable"));
        }
        let AccessPath::Raw(f) = &plan.tables[0].access else {
            unreachable!("shareable implies raw access");
        };
        if !Arc::ptr_eq(f, file) {
            return Err(Error::plan("shared scan plans target different sources"));
        }
        union.extend(plan.tables[0].accessed.iter().copied());
    }
    union.sort_unstable();
    union.dedup();

    // Per-participant compiled state, slots rebound onto the union
    // projection (participant slot `i` addresses its `accessed[i]`,
    // which lives at that leaf's position in `union`).
    struct Part<'p> {
        plan: &'p QueryPlan,
        pred: Option<CompiledPredicate>,
        agg_slots: Vec<Option<usize>>,
        want_ids: bool,
    }
    let mut parts: Vec<Part<'_>> = Vec::with_capacity(plans.len());
    for plan in plans {
        let table = &plan.tables[0];
        let map: Vec<usize> = table
            .accessed
            .iter()
            .map(|leaf| {
                union
                    .binary_search(leaf)
                    .expect("union contains every accessed leaf")
            })
            .collect();
        let pred = match table.predicate.as_ref() {
            None => None,
            Some(p) => Some(
                CompiledPredicate::compile(p)
                    .ok_or_else(|| Error::plan("shared participant predicate must compile"))?
                    .remap_slots(&map),
            ),
        };
        parts.push(Part {
            plan,
            pred,
            agg_slots: plan
                .aggregates
                .iter()
                .map(|a| a.slot.map(|s| map[s]))
                .collect(),
            want_ids: table.collect_satisfying,
        });
    }
    let want_record_ids = parts.iter().any(|p| p.want_ids);

    // The one synthetic scan everyone rides: union projection, no scan-
    // level predicate (participants filter from the identity selection
    // themselves), no id collection beyond what any participant needs.
    let shared_table = TablePlan {
        name: first.tables[0].name.clone(),
        access: AccessPath::Raw(Arc::clone(file)),
        accessed: union.clone(),
        predicate: None,
        record_level: false,
        collect_satisfying: false,
    };
    let store = StoreRef::Raw(file);
    // Sampled before the scan: the first wave installs the positional
    // map, so sampling later would mislabel a first scan as mapped.
    let access = store.access_kind();
    let n_chunks = store.batch_chunks(&union, false);
    let ctl = ScanCtl::new(options.cancel.clone());

    struct PartSink {
        aggs: Vec<BatchAggregator>,
        rows_out: usize,
        ids: Option<Vec<u32>>,
    }
    let make = || {
        let sinks: Vec<PartSink> = parts
            .iter()
            .map(|p| PartSink {
                aggs: p
                    .plan
                    .aggregates
                    .iter()
                    .map(|a| BatchAggregator::new(a.func))
                    .collect(),
                rows_out: 0,
                ids: p.want_ids.then(Vec::new),
            })
            .collect();
        (sinks, SelectionVector::new())
    };
    let consume = |(sinks, scratch): &mut (Vec<PartSink>, SelectionVector),
                   batch: &ColumnBatch<'_>,
                   sel: &SelectionVector| {
        for (part, sink) in parts.iter().zip(sinks.iter_mut()) {
            // Each participant filters its own copy of the batch's base
            // selection — identical kernels, clause order, and survivor
            // set to its solo scan.
            let survivors: &SelectionVector = match &part.pred {
                Some(pred) => {
                    pred.filter_from(&batch.columns, sel, scratch);
                    scratch
                }
                None => sel,
            };
            sink.rows_out += survivors.len();
            if let Some(ids) = sink.ids.as_mut() {
                for &i in survivors.as_slice() {
                    ids.push(batch.record_ids[i as usize]);
                }
            }
            for (state, slot) in sink.aggs.iter_mut().zip(&part.agg_slots) {
                state.update(slot.map(|s| &batch.columns[s]), survivors);
            }
        }
    };

    let mut threads = options.effective_threads();
    let mut cost = ScanCost::default();
    let mut all_sinks: Vec<(Vec<PartSink>, SelectionVector)> = Vec::new();
    let mut lo = 0usize;
    loop {
        // Without a repricer one span covers the whole grid (zero added
        // dispatch); with one, each wave is a full task-grid's worth of
        // chunks so repricing happens a handful of times per scan.
        let wave = match options.reprice {
            None => n_chunks.max(1),
            Some(_) => (threads.max(1) * TASKS_PER_THREAD).max(1),
        };
        let hi = n_chunks.min(lo + wave);
        let (wave_cost, sinks) = scan_store_batched_span(
            &store,
            &shared_table,
            None,
            want_record_ids,
            threads,
            &ctl,
            lo,
            hi,
            make,
            consume,
        )?;
        cost.add(&wave_cost);
        all_sinks.extend(sinks);
        lo = hi;
        if lo >= n_chunks {
            break;
        }
        if let Some(repricer) = &options.reprice {
            threads = repricer.threads().max(1);
        }
    }

    let records_scanned = store.record_count();
    let retried = ctl.retries();

    // Per-participant merge in task order — ascending chunk position
    // across waves — mirroring the solo merge loop exactly.
    struct Acc {
        aggs: Option<Vec<BatchAggregator>>,
        rows_out: usize,
        ids: Option<Vec<u32>>,
    }
    let mut accs: Vec<Acc> = parts
        .iter()
        .map(|p| Acc {
            aggs: None,
            rows_out: 0,
            ids: p.want_ids.then(Vec::new),
        })
        .collect();
    for (sinks, _scratch) in all_sinks {
        for (acc, sink) in accs.iter_mut().zip(sinks) {
            acc.rows_out += sink.rows_out;
            if let (Some(all), Some(part)) = (acc.ids.as_mut(), sink.ids) {
                all.extend(part);
            }
            match acc.aggs.as_mut() {
                None => acc.aggs = Some(sink.aggs),
                Some(base) => {
                    for (into, part) in base.iter_mut().zip(sink.aggs) {
                        into.merge(part);
                    }
                }
            }
        }
    }
    let exec_ns = t_start.elapsed().as_nanos() as u64;

    let mut outputs = Vec::with_capacity(parts.len());
    for (i, (part, acc)) in parts.iter().zip(accs).enumerate() {
        let aggs = acc.aggs.unwrap_or_else(|| {
            part.plan
                .aggregates
                .iter()
                .map(|a| BatchAggregator::new(a.func))
                .collect()
        });
        let values: Vec<Value> = aggs.into_iter().map(BatchAggregator::finish).collect();
        let scan = ScanOutcome {
            access,
            rows_scanned: cost.rows_visited,
            records_scanned,
            flattened_rows: None,
            cache_scan: None,
            // The pass's retries are real work that happened once;
            // attribute them to the leader (slot 0) so registry counters
            // aren't inflated K-fold.
            retried_chunks: if i == 0 { retried } else { 0 },
        };
        let stats = ExecStats {
            tables: vec![table_stats(
                &part.plan.tables[0],
                scan,
                exec_ns,
                acc.rows_out,
                acc.ids,
            )],
            join_ns: 0,
            agg_ns: 0,
            total_ns: t_start.elapsed().as_nanos() as u64,
        };
        outputs.push(QueryOutput {
            values,
            rows_aggregated: acc.rows_out,
            stats,
        });
    }
    Ok(outputs)
}

/// Vectorized store scan, the one entry point for every thread count:
/// the store's batch-chunk grid is split into contiguous task ranges
/// ([`task_ranges`] — a single range at `threads = 1`, which the pool
/// runs inline on the caller), each task runs predicate kernels and
/// feeds the surviving selection to `consume` against its own sink
/// (`make()`), and the per-task sinks are returned **in task order** —
/// ascending row position — for the caller to merge. `want_record_ids`
/// materializes per-row source ids (only needed when collecting
/// satisfying ids — skipping it keeps the columnar mask walk a pure
/// bitmask loop).
///
/// Attribution: kernel time is charged to compute `C`, consumer gather
/// time to data `D`. The row path cannot split these — it evaluates the
/// predicate inside the store's gather loop, so its `data_ns` includes
/// predicate time; vectorized `C` is therefore a slight superset of the
/// row path's, matching the cost model's definition of `C` as
/// "everything that is not a plain value load". D/C phase timings
/// accumulate per worker and are summed on merge, so the cost model
/// sees total CPU work (`exec_ns` wall time still reflects the parallel
/// speedup; the `D`/`C` split prices the work itself, which parallelism
/// redistributes but does not shrink).
#[allow(clippy::too_many_arguments)]
fn scan_store_batched<T: Send>(
    store: StoreRef<'_>,
    table: &TablePlan,
    pred: Option<&CompiledPredicate>,
    want_record_ids: bool,
    threads: usize,
    cancel: Option<&Arc<CancelToken>>,
    make: impl Fn() -> T + Sync,
    consume: impl Fn(&mut T, &ColumnBatch<'_>, &recache_layout::SelectionVector) + Sync,
) -> Result<(ScanOutcome, Vec<T>)> {
    // Sampled before the scan: a raw first scan installs the positional
    // map as a side effect, so sampling afterwards would mislabel it.
    let access = store.access_kind();
    let n_chunks = store.batch_chunks(&table.accessed, table.record_level);
    // One control block per scan, shared by every task: external
    // cancellation fans in through it, chunk failures record into it
    // keyed by chunk index, and tasks consult it to skip chunks above
    // an already-failed one.
    let ctl = ScanCtl::new(cancel.cloned());
    let (cost, sinks) = scan_store_batched_span(
        &store,
        table,
        pred,
        want_record_ids,
        threads,
        &ctl,
        0,
        n_chunks,
        make,
        consume,
    )?;
    Ok((
        ScanOutcome {
            access,
            rows_scanned: cost.rows_visited,
            records_scanned: store.record_count(),
            flattened_rows: store.flattened_rows(),
            // Raw scans report no D/C split, matching the row-path raw
            // scan — the cost model prices cache layouts, not files.
            cache_scan: store.is_cache_store().then_some(cost),
            retried_chunks: ctl.retries(),
        },
        sinks,
    ))
}

/// One parallel pass over the chunk span `[chunk_lo, chunk_hi)` of a
/// store's batch grid — the work-distribution core of
/// [`scan_store_batched`], split out so [`execute_shared`] can run
/// several *waves* over one grid with a shared [`ScanCtl`] (global
/// chunk indexes keep skip-above-failure and deterministic error
/// selection correct across waves) and a fresh thread budget per wave.
/// Per-task sinks return **in task order** (ascending chunk position).
#[allow(clippy::too_many_arguments)]
fn scan_store_batched_span<T: Send>(
    store: &StoreRef<'_>,
    table: &TablePlan,
    pred: Option<&CompiledPredicate>,
    want_record_ids: bool,
    threads: usize,
    ctl: &ScanCtl,
    chunk_lo: usize,
    chunk_hi: usize,
    make: impl Fn() -> T + Sync,
    consume: impl Fn(&mut T, &ColumnBatch<'_>, &recache_layout::SelectionVector) + Sync,
) -> Result<(ScanCost, Vec<T>)> {
    let ranges: Vec<(usize, usize)> = task_ranges(chunk_hi.saturating_sub(chunk_lo), threads)
        .into_iter()
        .map(|(lo, hi)| (chunk_lo + lo, chunk_lo + hi))
        .collect();
    let tasks = ThreadPool::global().map_index(ranges.len(), threads, |t| {
        let (lo, hi) = ranges[t];
        let mut sink = make();
        let mut kernel_ns = 0u64;
        let mut gather_ns = 0u64;
        let scanned = store.scan_batches_range_ctl(
            &table.accessed,
            table.record_level,
            want_record_ids,
            lo,
            hi,
            Some(ctl),
            &mut |batch, sel| {
                if let Some(pred) = pred {
                    let t0 = Instant::now();
                    pred.filter(&batch.columns, sel);
                    kernel_ns += t0.elapsed().as_nanos() as u64;
                }
                let t1 = Instant::now();
                consume(&mut sink, batch, sel);
                gather_ns += t1.elapsed().as_nanos() as u64;
            },
        );
        let scanned = scanned.map(|mut cost| {
            cost.compute_ns += kernel_ns;
            cost.data_ns += gather_ns;
            cost
        });
        (scanned, sink)
    });
    let mut cost = ScanCost::default();
    let mut sinks = Vec::with_capacity(tasks.len());
    let mut first_task_err: Option<Error> = None;
    for (task_cost, sink) in tasks {
        match task_cost {
            Ok(c) => {
                cost.add(&c);
                sinks.push(sink);
            }
            Err(err) => {
                if first_task_err.is_none() {
                    first_task_err = Some(err);
                }
            }
        }
    }
    // Deterministic error selection. Task ranges cover contiguous
    // ascending chunk ranges and a chunk is only skipped when a failure
    // at a *lower* index is already recorded, so the globally-first
    // failing chunk always runs and records into the control block —
    // its error is what the scan reports, regardless of which task
    // finished (or was cancelled) first. Errors that bypass the control
    // block (cancellation/timeout) are identical across tasks, so
    // falling back to the first-in-task-order one is equally stable.
    if let Some(err) = ctl.take_error() {
        return Err(err);
    }
    if let Some(err) = first_task_err {
        return Err(err);
    }
    Ok((cost, sinks))
}

/// Runs one table's scan + filter row-at-a-time, pushing the source
/// record id and row of every satisfying tuple to `sink`.
fn scan_table(table: &TablePlan, sink: &mut dyn FnMut(usize, &[Value])) -> Result<ScanOutcome> {
    let predicate = table.predicate.as_ref();
    match &table.access {
        AccessPath::Raw(file) => {
            let accessed = leaf_bitmap(file.leaves().len(), &table.accessed);
            let mut emit = |record_id: usize, row: Vec<Value>| {
                if predicate.is_none_or(|p| p.eval_bool(&row)) {
                    sink(record_id, &row);
                }
            };
            let metrics = file.scan_projected(&accessed, &mut |id, row| emit(id, row))?;
            Ok(ScanOutcome {
                access: if metrics.used_posmap {
                    AccessKind::RawMapped
                } else {
                    AccessKind::RawFirstScan
                },
                cache_scan: None,
                rows_scanned: metrics.rows,
                records_scanned: metrics.records,
                flattened_rows: None,
                retried_chunks: 0,
            })
        }
        AccessPath::Offsets { file, store } => {
            let accessed = leaf_bitmap(file.leaves().len(), &table.accessed);
            // Posmap-mapped re-read, emitted in batches: one virtual call
            // per chunk instead of per row.
            let metrics = file.scan_records_projected_batched(
                store.record_ids(),
                &accessed,
                BATCH_ROWS,
                &mut |ids, rows| {
                    for (&id, row) in ids.iter().zip(rows) {
                        if predicate.is_none_or(|p| p.eval_bool(row)) {
                            sink(id as usize, row);
                        }
                    }
                },
            )?;
            Ok(ScanOutcome {
                access: AccessKind::CacheOffsets,
                cache_scan: None,
                rows_scanned: metrics.rows,
                records_scanned: metrics.records,
                flattened_rows: None,
                retried_chunks: 0,
            })
        }
        AccessPath::Columnar(store) => {
            let cost = store.scan(&table.accessed, table.record_level, &mut |id, row| {
                if predicate.is_none_or(|p| p.eval_bool(row)) {
                    sink(id, row);
                }
            });
            Ok(ScanOutcome {
                access: AccessKind::CacheColumnar,
                rows_scanned: cost.rows_visited,
                records_scanned: store.record_count(),
                flattened_rows: Some(store.row_count()),
                cache_scan: Some(cost),
                retried_chunks: 0,
            })
        }
        AccessPath::Dremel(store) => {
            let cost = store.scan(&table.accessed, table.record_level, &mut |id, row| {
                if predicate.is_none_or(|p| p.eval_bool(row)) {
                    sink(id, row);
                }
            });
            Ok(ScanOutcome {
                access: AccessKind::CacheDremel,
                rows_scanned: cost.rows_visited,
                records_scanned: store.record_count(),
                flattened_rows: Some(store.flattened_rows()),
                cache_scan: Some(cost),
                retried_chunks: 0,
            })
        }
        AccessPath::Row(store) => {
            let cost = store.scan(&table.accessed, table.record_level, &mut |id, row| {
                if predicate.is_none_or(|p| p.eval_bool(row)) {
                    sink(id, row);
                }
            });
            Ok(ScanOutcome {
                access: AccessKind::CacheRow,
                rows_scanned: cost.rows_visited,
                records_scanned: store.record_count(),
                flattened_rows: Some(store.row_count()),
                cache_scan: Some(cost),
                retried_chunks: 0,
            })
        }
    }
}

fn table_stats(
    table: &TablePlan,
    scan: ScanOutcome,
    exec_ns: u64,
    rows_out: usize,
    satisfying: Option<Vec<u32>>,
) -> TableStats {
    TableStats {
        name: table.name.clone(),
        access: scan.access,
        exec_ns,
        cache_scan: scan.cache_scan,
        rows_scanned: scan.rows_scanned,
        rows_out,
        records_scanned: scan.records_scanned,
        cols_accessed: table.accessed.len(),
        record_level: table.record_level,
        flattened_rows: scan.flattened_rows,
        satisfying,
        retried_chunks: scan.retried_chunks,
        degraded_fallback: false,
    }
}

fn leaf_bitmap(width: usize, accessed: &[usize]) -> Vec<bool> {
    let mut out = vec![false; width];
    for &leaf in accessed {
        out[leaf] = true;
    }
    out
}

/// Rows below which a join build or probe stays single-threaded (hashing
/// or probing a few thousand rows is cheaper than a pool dispatch).
const PARALLEL_JOIN_MIN_ROWS: usize = 2 * BATCH_ROWS;

/// The scan-time key column for one `(table, slot)` join input.
fn keys_for<'a>(
    key_slots: &[Vec<usize>],
    table_keys: &'a [Vec<Vec<Option<JoinKey>>>],
    table: usize,
    slot: usize,
) -> &'a [Option<JoinKey>] {
    let idx = key_slots[table]
        .iter()
        .position(|&s| s == slot)
        .expect("join slot was registered before the scans");
    &table_keys[table][idx]
}

/// [`JoinKey`] of batch row `i`, read straight off the typed column view
/// — the vectorized twin of [`join_key`], with identical Int/Float
/// normalization (so batched and row-fallback inputs hash identically).
fn batch_join_key(col: &recache_layout::BatchColumn<'_>, i: usize) -> Option<JoinKey> {
    use recache_layout::BatchValues;
    if !col.is_valid(i) {
        return None;
    }
    match &col.values {
        BatchValues::Int(vals) => Some(JoinKey::Int(vals[i])),
        BatchValues::Float(vals) => {
            let v = vals[i];
            if v.fract() == 0.0 && v.abs() < 9e15 {
                Some(JoinKey::Int(v as i64))
            } else {
                Some(JoinKey::Bits(v.to_bits()))
            }
        }
        BatchValues::Bool(vals) => Some(JoinKey::Bool(vals[i])),
        values @ (BatchValues::Str { .. } | BatchValues::Dict { .. }) => {
            Some(JoinKey::Str(values.str_at(i).to_owned()))
        }
    }
}

/// Hash-join build over a scan-time key column: maps each key to the
/// ascending row indices holding it. Large builds hash contiguous
/// partitions on the pool and merge the partition maps in partition
/// order, so every key's index list — and therefore the probe output
/// order — is identical to a serial build's.
fn build_join_map(keys: &[Option<JoinKey>], threads: usize) -> HashMap<JoinKey, Vec<usize>> {
    let hash_partition = |lo: usize, hi: usize| {
        let mut map: HashMap<JoinKey, Vec<usize>> = HashMap::new();
        for (i, key) in keys[lo..hi].iter().enumerate() {
            if let Some(key) = key {
                map.entry(key.clone()).or_default().push(lo + i);
            }
        }
        map
    };
    if threads <= 1 || keys.len() < PARALLEL_JOIN_MIN_ROWS {
        return hash_partition(0, keys.len());
    }
    let ranges = task_ranges(keys.len(), threads);
    let partitions = ThreadPool::global().map_index(ranges.len(), threads, |p| {
        let (lo, hi) = ranges[p];
        hash_partition(lo, hi)
    });
    let mut merged: HashMap<JoinKey, Vec<usize>> = HashMap::new();
    for partition in partitions {
        for (key, indices) in partition {
            merged.entry(key).or_default().extend(indices);
        }
    }
    merged
}

/// Hash-join probe: joins each prefix row against the build map, emitting
/// one combined row (and its extended source-index row) per match. The
/// probe key comes from the probe table's scan-time key column, located
/// through the prefix row's source indices — no `Value` is read or
/// normalized during the probe. Large probe sides are partitioned into
/// contiguous row ranges probed on the pool, with per-partition match
/// lists concatenated in partition order — the probe output (and with it
/// every downstream aggregate) is identical to a serial probe's at any
/// thread count (the same fixed-order-merge discipline as the scans).
#[allow(clippy::too_many_arguments)]
fn probe_join_map(
    joined: &[Vec<Value>],
    src: &[u32],
    stride: usize,
    probe_pos: usize,
    probe_keys: &[Option<JoinKey>],
    map: &HashMap<JoinKey, Vec<usize>>,
    build_rows: &[Vec<Value>],
    build_offset: usize,
    threads: usize,
) -> (Vec<Vec<Value>>, Vec<u32>) {
    let probe_partition = |lo: usize, hi: usize| {
        let mut out: Vec<Vec<Value>> = Vec::new();
        let mut out_src: Vec<u32> = Vec::new();
        for (j, combined) in joined[lo..hi].iter().enumerate() {
            let row_src = &src[(lo + j) * stride..(lo + j + 1) * stride];
            let Some(key) = probe_keys[row_src[probe_pos] as usize].as_ref() else {
                continue;
            };
            if let Some(matches) = map.get(key) {
                for &i in matches {
                    let mut row = combined.clone();
                    let build = &build_rows[i];
                    row[build_offset..build_offset + build.len()].clone_from_slice(build);
                    out.push(row);
                    out_src.extend_from_slice(row_src);
                    out_src.push(i as u32);
                }
            }
        }
        (out, out_src)
    };
    if threads <= 1 || joined.len() < PARALLEL_JOIN_MIN_ROWS {
        return probe_partition(0, joined.len());
    }
    let ranges = task_ranges(joined.len(), threads);
    let mut partitions = ThreadPool::global().map_index(ranges.len(), threads, |p| {
        let (lo, hi) = ranges[p];
        probe_partition(lo, hi)
    });
    let total = partitions.iter().map(|(rows, _)| rows.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut out_src = Vec::with_capacity(total * (stride + 1));
    for (rows, srcs) in &mut partitions {
        out.append(rows);
        out_src.append(srcs);
    }
    (out, out_src)
}

/// Hashable join key with Int/Float normalization.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Int(i64),
    Bits(u64),
    Str(String),
    Bool(bool),
}

fn join_key(value: &Value) -> Option<JoinKey> {
    match value {
        Value::Null => None,
        Value::Int(v) => Some(JoinKey::Int(*v)),
        Value::Float(v) if v.fract() == 0.0 && v.abs() < 9e15 => Some(JoinKey::Int(*v as i64)),
        Value::Float(v) => Some(JoinKey::Bits(v.to_bits())),
        Value::Str(s) => Some(JoinKey::Str(s.clone())),
        Value::Bool(b) => Some(JoinKey::Bool(*b)),
        Value::List(_) | Value::Struct(_) => None,
    }
}

/// Streaming aggregate state. Sums go through [`ExactSum`] so the result
/// is independent of accumulation order — the property that lets the
/// vectorized and parallel paths match this one bit for bit.
struct AggState {
    func: AggFunc,
    count: u64,
    sum: ExactSum,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        AggState {
            func,
            count: 0,
            sum: ExactSum::new(),
            min: None,
            max: None,
        }
    }

    #[inline]
    fn update(&mut self, value: &Value) {
        if value.is_null() {
            return;
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.sum.add(value.as_f64().unwrap_or(0.0));
            }
            AggFunc::Min => {
                if self.min.as_ref().is_none_or(|m| value.cmp_sql(m).is_lt()) {
                    self.min = Some(value.clone());
                }
            }
            AggFunc::Max => {
                if self.max.as_ref().is_none_or(|m| value.cmp_sql(m).is_gt()) {
                    self.max = Some(value.clone());
                }
            }
        }
    }

    #[inline]
    fn update_count_star(&mut self) {
        self.count += 1;
    }

    fn finish(self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum.finish()),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum.finish() / self.count as f64)
                }
            }
            AggFunc::Min => self.min.unwrap_or(Value::Null),
            AggFunc::Max => self.max.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::plan::{AggSpec, JoinSpec};
    use recache_data::{csv, json, FileFormat, RawFile};
    use recache_types::{DataType, Field, Schema};
    use std::sync::Arc;

    fn csv_file() -> Arc<RawFile> {
        let schema = Schema::new(vec![
            Field::required("k", DataType::Int),
            Field::required("v", DataType::Float),
            Field::required("g", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Float(i as f64 * 0.5),
                    Value::Int(i % 4),
                ]
            })
            .collect();
        let bytes = csv::write_csv(&schema, &rows);
        Arc::new(RawFile::from_bytes(bytes, FileFormat::Csv, schema))
    }

    fn json_file() -> Arc<RawFile> {
        let schema = Schema::new(vec![
            Field::required("o", DataType::Int),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![Field::required(
                    "q",
                    DataType::Int,
                )]))),
            ),
        ]);
        let records: Vec<Value> = (0..10)
            .map(|i| {
                Value::Struct(vec![
                    Value::Int(i),
                    Value::List(
                        (0..3)
                            .map(|j| Value::Struct(vec![Value::Int(i * 10 + j)]))
                            .collect(),
                    ),
                ])
            })
            .collect();
        let bytes = json::write_json(&schema, &records);
        Arc::new(RawFile::from_bytes(bytes, FileFormat::Json, schema))
    }

    fn raw_plan(file: Arc<RawFile>, predicate: Option<Expr>, accessed: Vec<usize>) -> TablePlan {
        TablePlan {
            name: "t".into(),
            access: AccessPath::Raw(file),
            accessed,
            predicate,
            record_level: true,
            collect_satisfying: false,
        }
    }

    #[test]
    fn single_table_aggregates() {
        let plan = QueryPlan {
            tables: vec![raw_plan(
                csv_file(),
                Some(Expr::cmp(0, CmpOp::Lt, 10i64)),
                vec![0, 1],
            )],
            joins: vec![],
            aggregates: vec![
                AggSpec {
                    table: 0,
                    slot: None,
                    func: AggFunc::Count,
                },
                AggSpec {
                    table: 0,
                    slot: Some(1),
                    func: AggFunc::Sum,
                },
                AggSpec {
                    table: 0,
                    slot: Some(1),
                    func: AggFunc::Min,
                },
                AggSpec {
                    table: 0,
                    slot: Some(1),
                    func: AggFunc::Max,
                },
                AggSpec {
                    table: 0,
                    slot: Some(1),
                    func: AggFunc::Avg,
                },
            ],
        };
        let out = execute(&plan).unwrap();
        assert_eq!(out.rows_aggregated, 10);
        assert_eq!(out.values[0], Value::Int(10));
        assert_eq!(out.values[1], Value::Float(22.5)); // 0.5*(0+..+9)
        assert_eq!(out.values[2], Value::Float(0.0));
        assert_eq!(out.values[3], Value::Float(4.5));
        assert_eq!(out.values[4], Value::Float(2.25));
        assert_eq!(out.stats.tables[0].access, AccessKind::RawFirstScan);
        assert_eq!(out.stats.tables[0].rows_out, 10);
    }

    #[test]
    fn second_scan_uses_positional_map() {
        let file = csv_file();
        let plan = QueryPlan {
            tables: vec![raw_plan(file.clone(), None, vec![0])],
            joins: vec![],
            aggregates: vec![AggSpec {
                table: 0,
                slot: None,
                func: AggFunc::Count,
            }],
        };
        let first = execute(&plan).unwrap();
        assert_eq!(first.stats.tables[0].access, AccessKind::RawFirstScan);
        let second = execute(&plan).unwrap();
        assert_eq!(second.stats.tables[0].access, AccessKind::RawMapped);
        assert_eq!(second.values[0], Value::Int(100));
    }

    #[test]
    fn nested_json_element_level_count() {
        let file = json_file();
        let plan = QueryPlan {
            tables: vec![TablePlan {
                name: "j".into(),
                access: AccessPath::Raw(file),
                accessed: vec![0, 1],
                predicate: None,
                record_level: false,
                collect_satisfying: false,
            }],
            joins: vec![],
            aggregates: vec![AggSpec {
                table: 0,
                slot: None,
                func: AggFunc::Count,
            }],
        };
        let out = execute(&plan).unwrap();
        assert_eq!(out.values[0], Value::Int(30)); // 10 records x 3 items
    }

    #[test]
    fn collect_satisfying_record_ids() {
        let plan = QueryPlan {
            tables: vec![TablePlan {
                collect_satisfying: true,
                ..raw_plan(csv_file(), Some(Expr::cmp(0, CmpOp::Ge, 97i64)), vec![0])
            }],
            joins: vec![],
            aggregates: vec![AggSpec {
                table: 0,
                slot: None,
                func: AggFunc::Count,
            }],
        };
        let out = execute(&plan).unwrap();
        assert_eq!(out.stats.tables[0].satisfying, Some(vec![97, 98, 99]));
    }

    #[test]
    fn equijoin_two_tables() {
        // Join the CSV with itself on k = k, filtering one side.
        let file = csv_file();
        let plan = QueryPlan {
            tables: vec![
                raw_plan(
                    file.clone(),
                    Some(Expr::cmp(0, CmpOp::Lt, 5i64)),
                    vec![0, 1],
                ),
                raw_plan(file, None, vec![0, 2]),
            ],
            joins: vec![JoinSpec {
                left_table: 0,
                left_slot: 0,
                right_table: 1,
                right_slot: 0,
            }],
            aggregates: vec![
                AggSpec {
                    table: 0,
                    slot: None,
                    func: AggFunc::Count,
                },
                AggSpec {
                    table: 1,
                    slot: Some(1),
                    func: AggFunc::Sum,
                },
            ],
        };
        let out = execute(&plan).unwrap();
        assert_eq!(out.rows_aggregated, 5);
        assert_eq!(out.values[0], Value::Int(5));
        // g values of k=0..4: 0+1+2+3+0 = 6
        assert_eq!(out.values[1], Value::Float(6.0));
    }

    #[test]
    fn three_way_chain_join() {
        let file = csv_file();
        let plan = QueryPlan {
            tables: vec![
                raw_plan(file.clone(), Some(Expr::cmp(0, CmpOp::Lt, 3i64)), vec![0]),
                raw_plan(file.clone(), None, vec![0]),
                raw_plan(file, None, vec![0, 1]),
            ],
            joins: vec![
                JoinSpec {
                    left_table: 0,
                    left_slot: 0,
                    right_table: 1,
                    right_slot: 0,
                },
                JoinSpec {
                    left_table: 1,
                    left_slot: 0,
                    right_table: 2,
                    right_slot: 0,
                },
            ],
            aggregates: vec![AggSpec {
                table: 2,
                slot: Some(1),
                func: AggFunc::Sum,
            }],
        };
        let out = execute(&plan).unwrap();
        assert_eq!(out.rows_aggregated, 3);
        assert_eq!(out.values[0], Value::Float(0.0 + 0.5 + 1.0));
    }

    #[test]
    fn cache_scan_paths_agree_with_raw() {
        use recache_layout::{ColumnStore, DremelStore, RowStore};
        let schema = Schema::new(vec![
            Field::required("k", DataType::Int),
            Field::required("v", DataType::Float),
        ]);
        let records: Vec<Value> = (0..50)
            .map(|i| Value::Struct(vec![Value::Int(i), Value::Float(i as f64)]))
            .collect();
        let columnar = Arc::new(ColumnStore::build(&schema, records.iter()));
        let dremel = Arc::new(DremelStore::build(&schema, records.iter()));
        let rows = Arc::new(RowStore::build(&schema, records.iter()));
        let pred = Some(Expr::between(0, 10.0, 19.0));
        let mk = |access: AccessPath| QueryPlan {
            tables: vec![TablePlan {
                name: "c".into(),
                access,
                accessed: vec![0, 1],
                predicate: pred.clone(),
                record_level: true,
                collect_satisfying: false,
            }],
            joins: vec![],
            aggregates: vec![AggSpec {
                table: 0,
                slot: Some(1),
                func: AggFunc::Sum,
            }],
        };
        let expected = Value::Float((10..20).sum::<i64>() as f64);
        for access in [
            AccessPath::Columnar(columnar),
            AccessPath::Dremel(dremel),
            AccessPath::Row(rows),
        ] {
            let out = execute(&mk(access)).unwrap();
            assert_eq!(out.values[0], expected);
            assert!(out.stats.tables[0].access.is_cache_store());
            assert!(out.stats.tables[0].cache_scan.is_some());
        }
    }

    #[test]
    fn offsets_path_rereads_selected_records() {
        use recache_layout::OffsetStore;
        let file = csv_file();
        // Build the positional map first.
        let warm = QueryPlan {
            tables: vec![raw_plan(file.clone(), None, vec![0])],
            joins: vec![],
            aggregates: vec![AggSpec {
                table: 0,
                slot: None,
                func: AggFunc::Count,
            }],
        };
        execute(&warm).unwrap();

        let store = Arc::new(OffsetStore::build(vec![5, 6, 7, 8], 4));
        let plan = QueryPlan {
            tables: vec![TablePlan {
                name: "t".into(),
                access: AccessPath::Offsets { file, store },
                accessed: vec![0, 1],
                predicate: Some(Expr::cmp(0, CmpOp::Ge, 6i64)),
                record_level: true,
                collect_satisfying: false,
            }],
            joins: vec![],
            aggregates: vec![AggSpec {
                table: 0,
                slot: Some(0),
                func: AggFunc::Sum,
            }],
        };
        let out = execute(&plan).unwrap();
        assert_eq!(out.values[0], Value::Float(6.0 + 7.0 + 8.0));
        assert_eq!(out.stats.tables[0].access, AccessKind::CacheOffsets);
        assert_eq!(out.stats.tables[0].records_scanned, 4);
    }

    use recache_layout::ColumnStore;

    /// Builds a columnar store large enough to span many batch chunks.
    fn big_columnar() -> Arc<ColumnStore> {
        let schema = Schema::new(vec![
            Field::required("k", DataType::Int),
            Field::required("v", DataType::Float),
        ]);
        let records: Vec<Value> = (0..30_000)
            .map(|i| {
                Value::Struct(vec![
                    Value::Int(i % 1000),
                    Value::Float((i as f64) * 0.3 - 4000.0),
                ])
            })
            .collect();
        Arc::new(ColumnStore::build(&schema, records.iter()))
    }

    #[test]
    fn parallel_single_table_matches_serial_bitwise() {
        let store = big_columnar();
        let plan = QueryPlan {
            tables: vec![TablePlan {
                name: "t".into(),
                access: AccessPath::Columnar(store),
                accessed: vec![0, 1],
                predicate: Some(Expr::cmp(0, CmpOp::Lt, 700i64)),
                record_level: true,
                collect_satisfying: true,
            }],
            joins: vec![],
            aggregates: [
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Min,
                AggFunc::Max,
            ]
            .into_iter()
            .map(|func| AggSpec {
                table: 0,
                slot: Some(1),
                func,
            })
            .collect(),
        };
        let serial = execute_with(
            &plan,
            &ExecOptions {
                vectorized: true,
                threads: 1,
                cancel: None,
                reprice: None,
            },
        )
        .unwrap();
        for threads in [2, 3, 8] {
            let parallel = execute_with(
                &plan,
                &ExecOptions {
                    vectorized: true,
                    threads,
                    cancel: None,
                    reprice: None,
                },
            )
            .unwrap();
            assert_eq!(parallel.values, serial.values, "threads {threads}");
            assert_eq!(parallel.rows_aggregated, serial.rows_aggregated);
            assert_eq!(
                parallel.stats.tables[0].satisfying, serial.stats.tables[0].satisfying,
                "satisfying ids must merge in row order (threads {threads})"
            );
            let cost = parallel.stats.tables[0].cache_scan.unwrap();
            assert_eq!(
                cost.rows_visited,
                serial.stats.tables[0].cache_scan.unwrap().rows_visited,
                "per-worker rows_visited must sum to the full scan"
            );
        }
    }

    #[test]
    fn parallel_join_matches_serial() {
        let store = big_columnar();
        let plan = QueryPlan {
            tables: vec![
                TablePlan {
                    name: "a".into(),
                    access: AccessPath::Columnar(Arc::clone(&store)),
                    accessed: vec![0, 1],
                    predicate: Some(Expr::cmp(0, CmpOp::Lt, 40i64)),
                    record_level: true,
                    collect_satisfying: false,
                },
                TablePlan {
                    name: "b".into(),
                    access: AccessPath::Columnar(store),
                    accessed: vec![0, 1],
                    predicate: Some(Expr::cmp(0, CmpOp::Lt, 20i64)),
                    record_level: true,
                    collect_satisfying: false,
                },
            ],
            joins: vec![JoinSpec {
                left_table: 0,
                left_slot: 0,
                right_table: 1,
                right_slot: 0,
            }],
            aggregates: vec![
                AggSpec {
                    table: 0,
                    slot: None,
                    func: AggFunc::Count,
                },
                AggSpec {
                    table: 1,
                    slot: Some(1),
                    func: AggFunc::Sum,
                },
            ],
        };
        let serial = execute_with(
            &plan,
            &ExecOptions {
                vectorized: true,
                threads: 1,
                cancel: None,
                reprice: None,
            },
        )
        .unwrap();
        let parallel = execute_with(
            &plan,
            &ExecOptions {
                vectorized: true,
                threads: 4,
                cancel: None,
                reprice: None,
            },
        )
        .unwrap();
        assert_eq!(parallel.values, serial.values);
        assert_eq!(parallel.rows_aggregated, serial.rows_aggregated);
    }

    #[test]
    fn parallel_probe_matches_serial_on_large_probe_side() {
        // The probe prefix (~21k rows after the filter) crosses
        // PARALLEL_JOIN_MIN_ROWS, so the partitioned probe path runs.
        let store = big_columnar();
        let plan = QueryPlan {
            tables: vec![
                TablePlan {
                    name: "probe".into(),
                    access: AccessPath::Columnar(Arc::clone(&store)),
                    accessed: vec![0, 1],
                    predicate: Some(Expr::cmp(0, CmpOp::Lt, 700i64)),
                    record_level: true,
                    collect_satisfying: false,
                },
                TablePlan {
                    name: "build".into(),
                    access: AccessPath::Columnar(store),
                    accessed: vec![0, 1],
                    predicate: Some(Expr::cmp(0, CmpOp::Lt, 5i64)),
                    record_level: true,
                    collect_satisfying: false,
                },
            ],
            joins: vec![JoinSpec {
                left_table: 0,
                left_slot: 0,
                right_table: 1,
                right_slot: 0,
            }],
            aggregates: vec![
                AggSpec {
                    table: 0,
                    slot: None,
                    func: AggFunc::Count,
                },
                AggSpec {
                    table: 1,
                    slot: Some(1),
                    func: AggFunc::Sum,
                },
                AggSpec {
                    table: 0,
                    slot: Some(1),
                    func: AggFunc::Min,
                },
            ],
        };
        let serial = execute_with(
            &plan,
            &ExecOptions {
                vectorized: true,
                threads: 1,
                cancel: None,
                reprice: None,
            },
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let parallel = execute_with(
                &plan,
                &ExecOptions {
                    vectorized: true,
                    threads,
                    cancel: None,
                    reprice: None,
                },
            )
            .unwrap();
            assert_eq!(parallel.values, serial.values, "threads {threads}");
            assert_eq!(parallel.rows_aggregated, serial.rows_aggregated);
        }
    }

    /// A CSV file large enough to span several batch chunks, with nulls
    /// and a low-cardinality string column.
    fn big_csv() -> Arc<RawFile> {
        let schema = Schema::new(vec![
            Field::required("k", DataType::Int),
            Field::required("v", DataType::Float),
            Field::required("s", DataType::Str),
        ]);
        let rows: Vec<Vec<Value>> = (0..20_000)
            .map(|i| {
                vec![
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i % 500)
                    },
                    Value::Float(i as f64 * 0.25 - 100.0),
                    Value::from(format!("tag{}", i % 7)),
                ]
            })
            .collect();
        let bytes = csv::write_csv(&schema, &rows);
        Arc::new(RawFile::from_bytes(bytes, FileFormat::Csv, schema))
    }

    #[test]
    fn raw_batched_scan_matches_row_path_first_and_mapped() {
        let plan_of = |file: Arc<RawFile>| QueryPlan {
            tables: vec![TablePlan {
                collect_satisfying: true,
                ..raw_plan(
                    file,
                    Some(Expr::And(vec![
                        Expr::cmp(0, CmpOp::Lt, 300i64),
                        Expr::cmp(2, CmpOp::Eq, "tag3"),
                    ])),
                    vec![0, 1, 2],
                )
            }],
            joins: vec![],
            aggregates: [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max]
                .into_iter()
                .map(|func| AggSpec {
                    table: 0,
                    slot: Some(1),
                    func,
                })
                .collect(),
        };
        let row_file = big_csv();
        let row_plan = plan_of(Arc::clone(&row_file));
        let row_opts = ExecOptions {
            vectorized: false,
            threads: 1,
            cancel: None,
            reprice: None,
        };
        let reference = execute_with(&row_plan, &row_opts).unwrap();
        assert_eq!(reference.stats.tables[0].access, AccessKind::RawFirstScan);

        for threads in [1usize, 4] {
            let file = big_csv();
            let plan = plan_of(Arc::clone(&file));
            let opts = ExecOptions {
                vectorized: true,
                threads,
                cancel: None,
                reprice: None,
            };
            // First scan: tokenizes, captures the posmap.
            let first = execute_with(&plan, &opts).unwrap();
            assert_eq!(
                first.stats.tables[0].access,
                AccessKind::RawFirstScan,
                "threads {threads}"
            );
            assert_eq!(first.values, reference.values, "threads {threads}");
            assert_eq!(first.rows_aggregated, reference.rows_aggregated);
            assert_eq!(
                first.stats.tables[0].satisfying, reference.stats.tables[0].satisfying,
                "threads {threads}: satisfying ids must merge in record order"
            );
            assert!(first.stats.tables[0].cache_scan.is_none());
            assert!(file.posmap().is_some(), "batched first scan builds the map");
            // Second scan: navigates the captured map.
            let second = execute_with(&plan, &opts).unwrap();
            assert_eq!(second.stats.tables[0].access, AccessKind::RawMapped);
            assert_eq!(second.values, reference.values);
            assert_eq!(
                second.stats.tables[0].satisfying,
                reference.stats.tables[0].satisfying
            );
        }
    }

    #[test]
    fn raw_batched_posmap_agrees_with_row_tokenizer() {
        // The map a parallel batched first scan assembles must be usable
        // by the row-path mapped scan (offsets caches depend on it).
        let file = big_csv();
        let plan = QueryPlan {
            tables: vec![raw_plan(Arc::clone(&file), None, vec![0, 2])],
            joins: vec![],
            aggregates: vec![AggSpec {
                table: 0,
                slot: None,
                func: AggFunc::Count,
            }],
        };
        execute_with(
            &plan,
            &ExecOptions {
                vectorized: true,
                threads: 4,
                cancel: None,
                reprice: None,
            },
        )
        .unwrap();
        let reference = big_csv();
        reference
            .scan_projected(&[true, true, true], &mut |_, _| {})
            .unwrap();
        let batched_map = file.posmap().unwrap();
        let row_map = reference.posmap().unwrap();
        assert_eq!(batched_map.record_count(), row_map.record_count());
        for rec in [0usize, 1, 4096, 19_999] {
            for field in 0..3 {
                assert_eq!(
                    batched_map.field_span(rec, field),
                    row_map.field_span(rec, field)
                );
            }
        }
    }

    #[test]
    fn raw_parse_errors_surface_from_parallel_scans() {
        let schema = Schema::new(vec![Field::required("a", DataType::Int)]);
        let mut bytes = Vec::new();
        for i in 0..10_000 {
            if i == 9_500 {
                bytes.extend_from_slice(b"bogus\n");
            } else {
                bytes.extend_from_slice(format!("{i}\n").as_bytes());
            }
        }
        let file = Arc::new(RawFile::from_bytes(bytes, FileFormat::Csv, schema));
        let plan = QueryPlan {
            tables: vec![raw_plan(file, None, vec![0])],
            joins: vec![],
            aggregates: vec![AggSpec {
                table: 0,
                slot: Some(0),
                func: AggFunc::Sum,
            }],
        };
        for threads in [1, 4] {
            let err = execute_with(
                &plan,
                &ExecOptions {
                    vectorized: true,
                    threads,
                    cancel: None,
                    reprice: None,
                },
            );
            assert!(err.is_err(), "threads {threads}");
        }
    }

    #[test]
    fn raw_join_inputs_scan_batched() {
        let file = big_csv();
        let plan = QueryPlan {
            tables: vec![
                raw_plan(
                    Arc::clone(&file),
                    Some(Expr::cmp(0, CmpOp::Lt, 5i64)),
                    vec![0, 1],
                ),
                raw_plan(
                    Arc::clone(&file),
                    Some(Expr::cmp(1, CmpOp::Eq, "tag0")),
                    vec![0, 2],
                ),
            ],
            joins: vec![JoinSpec {
                left_table: 0,
                left_slot: 0,
                right_table: 1,
                right_slot: 0,
            }],
            aggregates: vec![AggSpec {
                table: 0,
                slot: None,
                func: AggFunc::Count,
            }],
        };
        let row = execute_with(
            &plan,
            &ExecOptions {
                vectorized: false,
                threads: 1,
                cancel: None,
                reprice: None,
            },
        )
        .unwrap();
        for threads in [1, 4] {
            let vec_out = execute_with(
                &plan,
                &ExecOptions {
                    vectorized: true,
                    threads,
                    cancel: None,
                    reprice: None,
                },
            )
            .unwrap();
            assert_eq!(vec_out.values, row.values, "threads {threads}");
            assert_eq!(vec_out.rows_aggregated, row.rows_aggregated);
        }
    }

    #[test]
    fn task_ranges_partition_the_chunk_grid() {
        for (n_chunks, threads) in [(1usize, 4usize), (7, 2), (64, 4), (100, 3), (5, 16)] {
            let ranges = task_ranges(n_chunks, threads);
            assert!(ranges.len() <= n_chunks.max(1));
            assert!(ranges.len() <= threads * TASKS_PER_THREAD);
            let mut next = 0usize;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, next, "ranges must be contiguous");
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, n_chunks, "ranges must cover the grid");
        }
    }

    #[test]
    fn empty_plan_errors() {
        let plan = QueryPlan {
            tables: vec![],
            joins: vec![],
            aggregates: vec![],
        };
        assert!(execute(&plan).is_err());
    }

    #[test]
    fn aggregates_skip_nulls() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let bytes = json::write_json(
            &schema,
            &[
                Value::Struct(vec![Value::Int(1)]),
                Value::Struct(vec![Value::Null]),
                Value::Struct(vec![Value::Int(3)]),
            ],
        );
        let file = Arc::new(RawFile::from_bytes(bytes, FileFormat::Json, schema));
        let plan = QueryPlan {
            tables: vec![raw_plan(file, None, vec![0])],
            joins: vec![],
            aggregates: vec![
                AggSpec {
                    table: 0,
                    slot: Some(0),
                    func: AggFunc::Count,
                },
                AggSpec {
                    table: 0,
                    slot: None,
                    func: AggFunc::Count,
                },
                AggSpec {
                    table: 0,
                    slot: Some(0),
                    func: AggFunc::Avg,
                },
            ],
        };
        let out = execute(&plan).unwrap();
        assert_eq!(out.values[0], Value::Int(2)); // count(x) skips null
        assert_eq!(out.values[1], Value::Int(3)); // count(*)
        assert_eq!(out.values[2], Value::Float(2.0));
    }
}
