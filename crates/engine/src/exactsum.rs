//! Order-independent exact summation of `f64` values.
//!
//! Parallel aggregation merges per-worker partial sums, and plain
//! floating-point addition is not associative — merging `f64` partials
//! would make `SUM`/`AVG` results depend on the task decomposition and
//! diverge (in the last ulps) from the row-at-a-time path, breaking the
//! bit-identical equivalence the vectorized/parallel test suite asserts.
//!
//! [`ExactSum`] sidesteps this by accumulating into a fixed-point
//! *superaccumulator*: each `f64` is split into its integer mantissa and
//! binary exponent and added into one of 64 overlapping `i128` bins, bin
//! `k` weighted `2^(32k - 1075)` — wide enough to cover the entire finite
//! `f64` range exactly. Integer addition is associative and commutative,
//! so the accumulated state — and therefore the rounded result — is
//! **independent of insertion order and of how partials were merged**.
//! `finish` collapses the bins and rounds once to the nearest `f64`
//! (ties to even), which also makes the sum *more* accurate than the
//! naive running `f64` sum it replaces.
//!
//! Overflow headroom: an add deposits `< 2^85` into one bin, so a bin
//! needs `> 2^42` same-signed adds to overflow `i128`; `add` counts and
//! renormalizes long before that.

/// Number of 32-bit-spaced bins covering the finite `f64` range:
/// biased exponents 1..=2046 map to bin `exp >> 5` ∈ 0..=63.
const BINS: usize = 64;

/// Adds safe before a defensive renormalization (see module docs).
const RENORM_EVERY: u64 = 1 << 40;

/// An exact, order-independent accumulator for `f64` sums.
#[derive(Debug, Clone)]
pub struct ExactSum {
    /// `sum = Σ bins[k] · 2^(32k - 1075)` (bins are signed and may
    /// temporarily exceed 32 bits — the representation is redundant).
    bins: Box<[i128; BINS]>,
    /// Adds since the last renormalization.
    adds: u64,
    pos_inf: bool,
    neg_inf: bool,
    nan: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    pub fn new() -> Self {
        ExactSum {
            bins: Box::new([0i128; BINS]),
            adds: 0,
            pos_inf: false,
            neg_inf: false,
            nan: false,
        }
    }

    /// Accumulates one value, exactly.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7FF) as usize;
        let frac = bits & ((1u64 << 52) - 1);
        if exp == 0x7FF {
            // Infinities and NaNs are tracked as flags.
            if frac != 0 {
                self.nan = true;
            } else if bits >> 63 == 0 {
                self.pos_inf = true;
            } else {
                self.neg_inf = true;
            }
            return;
        }
        // value = mant · 2^(e - 1075), with subnormals folded into e = 1.
        let (mant, e) = if exp == 0 {
            (frac, 1)
        } else {
            (frac | (1u64 << 52), exp)
        };
        if mant == 0 {
            return; // ±0.0
        }
        let shifted = (mant as i128) << (e & 31);
        let k = e >> 5;
        if bits >> 63 == 0 {
            self.bins[k] += shifted;
        } else {
            self.bins[k] -= shifted;
        }
        self.adds += 1;
        if self.adds >= RENORM_EVERY {
            self.renormalize();
        }
    }

    /// Folds another accumulator in. Bin-wise integer addition, so the
    /// merged state equals what a single accumulator fed both value
    /// streams (in any order) would hold — the property that makes
    /// parallel partial merges bit-identical to serial execution.
    pub fn merge(&mut self, other: &ExactSum) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.pos_inf |= other.pos_inf;
        self.neg_inf |= other.neg_inf;
        self.nan |= other.nan;
        self.adds += other.adds;
        if self.adds >= RENORM_EVERY {
            self.renormalize();
        }
    }

    /// Carries every bin into `[0, 2^32)` digits (top bin keeps the
    /// overflow; it has > 40 bits of headroom above `f64::MAX`).
    fn renormalize(&mut self) {
        let mut carry: i128 = 0;
        for bin in self.bins.iter_mut() {
            let v = *bin + carry;
            carry = v >> 32;
            *bin = v - (carry << 32);
        }
        self.bins[BINS - 1] += carry << 32;
        self.adds = 0;
    }

    /// Rounds the exact sum to the nearest `f64` (ties to even).
    pub fn finish(&self) -> f64 {
        if self.nan || (self.pos_inf && self.neg_inf) {
            return f64::NAN;
        }
        if self.pos_inf {
            return f64::INFINITY;
        }
        if self.neg_inf {
            return f64::NEG_INFINITY;
        }
        // Normalize a copy into digits and extract the sign.
        let mut digits = *self.bins;
        let mut carry: i128 = 0;
        for d in digits.iter_mut() {
            let v = *d + carry;
            carry = v >> 32;
            *d = v - (carry << 32);
        }
        let mut top_extra = carry; // weight 2^(32·BINS − 1075)
        let negative = if top_extra < 0 {
            true
        } else if top_extra > 0 {
            false
        } else {
            match digits.iter().rposition(|&d| d != 0) {
                Some(k) => digits[k] < 0,
                None => return 0.0,
            }
        };
        if negative {
            top_extra = -top_extra;
            for d in digits.iter_mut() {
                *d = -*d;
            }
        }
        // Digits may still be negative (mixed signs); borrow downward
        // until every digit is in [0, 2^32).
        let mut borrow: i128 = 0;
        for d in digits.iter_mut() {
            let mut v = *d + borrow;
            borrow = 0;
            while v < 0 {
                v += 1i128 << 32;
                borrow -= 1;
            }
            let c = v >> 32;
            *d = v & 0xFFFF_FFFF;
            borrow += c;
        }
        top_extra += borrow;
        debug_assert!(top_extra >= 0, "magnitude underflow after sign fix");
        // Split the top-bin carry into additional high digits: the top
        // bin legitimately holds values near `f64::MAX` (biased exponents
        // 2016..=2046 all map to bin 63), so a carry out of it is part of
        // the magnitude, not automatically an overflow.
        let mut high = [0i128; 3];
        for d in high.iter_mut() {
            *d = top_extra & 0xFFFF_FFFF;
            top_extra >>= 32;
        }
        debug_assert_eq!(top_extra, 0, "carry exceeded high-digit headroom");
        let all_digits = |k: usize| -> i128 {
            if k < BINS {
                digits[k]
            } else {
                high[k - BINS]
            }
        };
        // Find the most significant bit across all digits.
        let msb = match (0..BINS + high.len()).rev().find(|&k| all_digits(k) != 0) {
            Some(k) => 32 * k as i64 + (127 - all_digits(k).leading_zeros() as i64),
            None => return if negative { -0.0 } else { 0.0 },
        };
        // Gather the 128 bits below (and including) `msb` into a window,
        // with a sticky low bit for anything beneath — enough for one
        // correct round-to-nearest-even at any result exponent.
        let lo_bit = msb - 127;
        let mut window: u128 = 0;
        let mut sticky = false;
        for k in 0..BINS + high.len() {
            let d = all_digits(k);
            if d == 0 {
                continue;
            }
            let base = 32 * k as i64; // weight exponent of this digit's LSB
            if base + 32 <= lo_bit {
                sticky = true;
                continue;
            }
            let d = d as u128;
            if base >= lo_bit {
                window |= d << (base - lo_bit);
            } else {
                let cut = (lo_bit - base) as u32; // 1..=31
                if d & ((1u128 << cut) - 1) != 0 {
                    sticky = true;
                }
                window |= d >> cut;
            }
        }
        if sticky {
            window |= 1;
        }
        // value = window · 2^(lo_bit − 1075); `window as f64` performs the
        // single round-to-nearest-even, then scaling by a power of two is
        // exact for normal results.
        let scale_exp = lo_bit - 1075;
        let approx = window as f64;
        let result = scale_by_pow2(approx, scale_exp);
        if negative {
            -result
        } else {
            result
        }
    }
}

/// `x · 2^e` via exponent arithmetic, in steps that keep every
/// intermediate within the normal range where the scaling is exact.
fn scale_by_pow2(mut x: f64, mut e: i64) -> f64 {
    while e > 0 {
        let step = e.min(1000);
        x *= pow2(step);
        e -= step;
    }
    while e < 0 {
        let step = (-e).min(1000);
        x /= pow2(step);
        e += step;
    }
    x
}

/// Exact power of two for 0 ≤ e ≤ 1000.
fn pow2(e: i64) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact(values: &[f64]) -> f64 {
        let mut s = ExactSum::new();
        for &v in values {
            s.add(v);
        }
        s.finish()
    }

    #[test]
    fn simple_sums_are_exact() {
        assert_eq!(exact(&[]), 0.0);
        assert_eq!(exact(&[1.5]), 1.5);
        assert_eq!(exact(&[0.5, 0.25, 0.25]), 1.0);
        assert_eq!(
            exact(&(0..10).map(|i| i as f64 * 0.5).collect::<Vec<_>>()),
            22.5
        );
        assert_eq!(exact(&[1e300, -1e300]), 0.0);
        assert_eq!(exact(&[-1.0, -2.0, -3.0]), -6.0);
    }

    #[test]
    fn cancellation_beyond_f64_precision() {
        // Naive summation loses the 1.0 entirely; the exact sum keeps it.
        assert_eq!(exact(&[1e300, 1.0, -1e300]), 1.0);
        assert_eq!(exact(&[1e16, 1.0, 1.0, -1e16]), 2.0);
        // Classic error case: 0.1 ten times — exact fixed-point addition
        // of the *representable* values, rounded once.
        let point_one = [0.1f64; 10];
        let expected = {
            // Reference: integer mantissa arithmetic via i128 in units of
            // 2^-1075... 0.1's scaled sum still fits comfortably.
            let m = (0.1f64.to_bits() & ((1 << 52) - 1)) | (1 << 52);
            let e = ((0.1f64.to_bits() >> 52) & 0x7FF) as i64;
            // 10·m at exponent e: round to f64 manually via f64 ops on
            // exact integers (10·m < 2^57 is exactly representable? no —
            // 57 bits; compare against u128→f64 single rounding instead).
            let total = (m as u128) * 10;
            (total as f64) * pow2(e - 1075)
        };
        assert_eq!(exact(&point_one), expected);
    }

    #[test]
    fn order_and_merge_independence_on_random_data() {
        let mut rng = StdRng::seed_from_u64(0xEAC5);
        for case in 0..30 {
            let n = rng.random_range(1..400);
            let values: Vec<f64> = (0..n)
                .map(|_| {
                    let mag = rng.random_range(-300.0..300.0);
                    let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                    sign * rng.random_range(0.0..10.0) * 10f64.powf(mag / 10.0)
                })
                .collect();
            let forward = exact(&values);
            let mut reversed = values.clone();
            reversed.reverse();
            assert_eq!(forward.to_bits(), exact(&reversed).to_bits(), "case {case}");
            // Arbitrary 3-way split merged out of order.
            let third = values.len().div_ceil(3);
            let mut a = ExactSum::new();
            let mut b = ExactSum::new();
            let mut c = ExactSum::new();
            for (i, &v) in values.iter().enumerate() {
                match i / third {
                    0 => a.add(v),
                    1 => b.add(v),
                    _ => c.add(v),
                }
            }
            let mut merged = ExactSum::new();
            merged.merge(&c);
            merged.merge(&a);
            merged.merge(&b);
            assert_eq!(forward.to_bits(), merged.finish().to_bits(), "case {case}");
        }
    }

    #[test]
    fn matches_integer_reference_for_integral_values() {
        let mut rng = StdRng::seed_from_u64(0xEAC6);
        for _ in 0..50 {
            let values: Vec<f64> = (0..200)
                .map(|_| rng.random_range(-1_000_000i64..1_000_000) as f64)
                .collect();
            let reference: i64 = values.iter().map(|&v| v as i64).sum();
            assert_eq!(exact(&values), reference as f64);
        }
    }

    #[test]
    fn specials_follow_ieee_conventions() {
        assert_eq!(exact(&[f64::INFINITY, 1.0]), f64::INFINITY);
        assert_eq!(exact(&[f64::NEG_INFINITY, 1.0]), f64::NEG_INFINITY);
        assert!(exact(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
        assert!(exact(&[f64::NAN, 1.0]).is_nan());
        // Overflowing finite sums saturate like IEEE addition does.
        assert_eq!(exact(&[f64::MAX, f64::MAX]), f64::INFINITY);
        assert_eq!(exact(&[f64::MIN, f64::MIN]), f64::NEG_INFINITY);
        assert_eq!(exact(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
    }

    #[test]
    fn subnormals_accumulate_exactly() {
        let tiny = f64::from_bits(3); // 3 · 2^-1074
        assert_eq!(exact(&[tiny; 5]), f64::from_bits(15));
        assert_eq!(exact(&[tiny, -tiny]), 0.0);
        assert_eq!(exact(&[f64::MIN_POSITIVE / 2.0; 2]), f64::MIN_POSITIVE);
    }

    #[test]
    fn renormalization_preserves_the_sum() {
        let mut s = ExactSum::new();
        for _ in 0..1000 {
            s.add(1e18);
            s.add(-1.0);
        }
        s.renormalize();
        assert_eq!(s.finish(), 1e21 - 1000.0);
        let mut t = ExactSum::new();
        t.add(1e21 - 1000.0);
        assert_eq!(s.finish().to_bits(), t.finish().to_bits());
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // 2^53 + 1 is the first integer not representable: adding 1 to
        // 2^53 must round back down (ties-to-even), while adding 2 rounds
        // up to the next representable value.
        let base = (1u64 << 53) as f64;
        assert_eq!(exact(&[base, 1.0]), base);
        assert_eq!(exact(&[base, 2.0]), base + 2.0);
        // 2^53 + 1 + an epsilon must round UP (sticky bit breaks the tie).
        assert_eq!(exact(&[base, 1.0, f64::MIN_POSITIVE]), base + 2.0);
    }
}
