//! Scalar expressions over flattened rows.
//!
//! Predicates reference leaves by *slot index* into the projected row the
//! scan emits (the planner binds leaf ids to slots). Conjunctions of
//! numeric range comparisons — the paper's workload shape and the only
//! shape the subsumption index handles — can be extracted as
//! [`RangeClause`]s.

use recache_types::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Whether a three-way comparison outcome satisfies this operator.
    pub fn matches(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A predicate/scalar expression over a projected row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Slot index into the projected row.
    Slot(usize),
    Lit(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
}

impl Expr {
    /// `slot op literal` convenience.
    pub fn cmp(slot: usize, op: CmpOp, lit: impl Into<Value>) -> Expr {
        Expr::Cmp(
            op,
            Box::new(Expr::Slot(slot)),
            Box::new(Expr::Lit(lit.into())),
        )
    }

    /// `lo <= slot AND slot <= hi` as a two-clause conjunction.
    pub fn between(slot: usize, lo: f64, hi: f64) -> Expr {
        Expr::And(vec![
            Expr::cmp(slot, CmpOp::Ge, lo),
            Expr::cmp(slot, CmpOp::Le, hi),
        ])
    }

    /// Evaluates to a value (for aggregate inputs). Only computed nodes
    /// allocate; slot and literal references borrow via the internal
    /// `eval_ref`.
    pub fn eval(&self, row: &[Value]) -> Value {
        match self.eval_ref(row) {
            ValueRef::Borrowed(v) => v.clone(),
            ValueRef::Owned(v) => v,
        }
    }

    /// Evaluates by reference: slots and literals borrow straight from the
    /// row/expression, so predicate evaluation never clones a `Value`
    /// (which for strings meant an allocation per row per node).
    fn eval_ref<'a>(&'a self, row: &'a [Value]) -> ValueRef<'a> {
        match self {
            Expr::Slot(i) => ValueRef::Borrowed(&row[*i]),
            Expr::Lit(v) => ValueRef::Borrowed(v),
            Expr::Cmp(op, a, b) => {
                let av = a.eval_ref(row);
                let bv = b.eval_ref(row);
                let (av, bv) = (av.get(), bv.get());
                if av.is_null() || bv.is_null() {
                    return ValueRef::Owned(Value::Null);
                }
                ValueRef::Owned(Value::Bool(op.matches(av.cmp_sql(bv))))
            }
            Expr::And(_) | Expr::Or(_) | Expr::Not(_) => {
                ValueRef::Owned(Value::Bool(self.eval_bool(row)))
            }
        }
    }

    /// Evaluates as a predicate; SQL three-valued logic collapses unknown
    /// to false (rows with null operands do not satisfy).
    pub fn eval_bool(&self, row: &[Value]) -> bool {
        match self {
            Expr::Slot(i) => row[*i].as_bool().unwrap_or(false),
            Expr::Lit(v) => v.as_bool().unwrap_or(false),
            Expr::Cmp(op, a, b) => {
                let av = a.eval_ref(row);
                let bv = b.eval_ref(row);
                let (av, bv) = (av.get(), bv.get());
                !av.is_null() && !bv.is_null() && op.matches(av.cmp_sql(bv))
            }
            Expr::And(parts) => parts.iter().all(|p| p.eval_bool(row)),
            Expr::Or(parts) => parts.iter().any(|p| p.eval_bool(row)),
            Expr::Not(inner) => !inner.eval_bool(row),
        }
    }

    /// Rewrites every slot index through `f` (e.g. leaf-id space → the
    /// projected-row slot space a scan emits).
    pub fn map_slots(&self, f: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Slot(i) => Expr::Slot(f(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.map_slots(f)), Box::new(b.map_slots(f)))
            }
            Expr::And(parts) => Expr::And(parts.iter().map(|p| p.map_slots(f)).collect()),
            Expr::Or(parts) => Expr::Or(parts.iter().map(|p| p.map_slots(f)).collect()),
            Expr::Not(inner) => Expr::Not(Box::new(inner.map_slots(f))),
        }
    }

    /// Canonical textual form (stable across runs), used in cache
    /// signatures. Slot indices are printed as-is, so canonicalize in
    /// leaf-id space.
    pub fn canonical(&self) -> String {
        match self {
            Expr::Slot(i) => format!("s{i}"),
            Expr::Lit(v) => v.to_string(),
            Expr::Cmp(op, a, b) => {
                format!("({} {} {})", a.canonical(), op.symbol(), b.canonical())
            }
            Expr::And(parts) => {
                let mut inner: Vec<String> = parts.iter().map(Expr::canonical).collect();
                inner.sort();
                format!("and({})", inner.join(","))
            }
            Expr::Or(parts) => {
                let mut inner: Vec<String> = parts.iter().map(Expr::canonical).collect();
                inner.sort();
                format!("or({})", inner.join(","))
            }
            Expr::Not(inner) => format!("not({})", inner.canonical()),
        }
    }

    /// Slots referenced by the expression.
    pub fn slots(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Slot(i) => out.push(*i),
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) => {
                a.slots(out);
                b.slots(out);
            }
            Expr::And(parts) | Expr::Or(parts) => {
                for p in parts {
                    p.slots(out);
                }
            }
            Expr::Not(inner) => inner.slots(out),
        }
    }

    /// If this expression is a conjunction of numeric comparisons against
    /// literals, returns the per-slot interval constraints — the form the
    /// subsumption index understands. Returns `None` for any other shape.
    pub fn as_ranges(&self) -> Option<Vec<RangeClause>> {
        let mut clauses: Vec<RangeClause> = Vec::new();
        if !collect_ranges(self, &mut clauses) {
            return None;
        }
        // Merge clauses on the same slot (intersection).
        clauses.sort_by_key(|c| c.slot);
        let mut merged: Vec<RangeClause> = Vec::new();
        for clause in clauses {
            match merged.last_mut() {
                Some(last) if last.slot == clause.slot => {
                    last.lo = last.lo.max(clause.lo);
                    last.hi = last.hi.min(clause.hi);
                }
                _ => merged.push(clause),
            }
        }
        Some(merged)
    }
}

/// A borrowed-or-computed expression result; borrowing is the common case
/// (slots, literals), owning only happens for computed booleans.
enum ValueRef<'a> {
    Borrowed(&'a Value),
    Owned(Value),
}

impl ValueRef<'_> {
    #[inline]
    fn get(&self) -> &Value {
        match self {
            ValueRef::Borrowed(v) => v,
            ValueRef::Owned(v) => v,
        }
    }
}

fn collect_ranges(expr: &Expr, out: &mut Vec<RangeClause>) -> bool {
    match expr {
        Expr::And(parts) => parts.iter().all(|p| collect_ranges(p, out)),
        Expr::Cmp(op, a, b) => {
            let (slot, lit, op) = match (a.as_ref(), b.as_ref()) {
                (Expr::Slot(s), Expr::Lit(v)) => (*s, v, *op),
                (Expr::Lit(v), Expr::Slot(s)) => (*s, v, flip(*op)),
                _ => return false,
            };
            let Some(x) = lit.as_f64() else { return false };
            let clause = match op {
                CmpOp::Eq => RangeClause { slot, lo: x, hi: x },
                CmpOp::Le => RangeClause {
                    slot,
                    lo: f64::NEG_INFINITY,
                    hi: x,
                },
                CmpOp::Lt => RangeClause {
                    slot,
                    lo: f64::NEG_INFINITY,
                    hi: x,
                },
                CmpOp::Ge => RangeClause {
                    slot,
                    lo: x,
                    hi: f64::INFINITY,
                },
                CmpOp::Gt => RangeClause {
                    slot,
                    lo: x,
                    hi: f64::INFINITY,
                },
                CmpOp::Ne => return false,
            };
            out.push(clause);
            true
        }
        _ => false,
    }
}

/// Mirrors a comparison when its operands swap sides (`lit op slot` ⇔
/// `slot flip(op) lit`); shared by range extraction and kernel compile.
pub(crate) fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// An interval constraint on one slot: `lo <= value <= hi`.
///
/// Strict comparisons are widened to closed intervals for subsumption
/// purposes — safe because a *covering* cache is re-filtered with the
/// exact predicate on reuse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeClause {
    pub slot: usize,
    pub lo: f64,
    pub hi: f64,
}

impl RangeClause {
    /// True when `self`'s interval fully covers `other`'s (same slot).
    pub fn covers(&self, other: &RangeClause) -> bool {
        self.slot == other.slot && self.lo <= other.lo && self.hi >= other.hi
    }
}

impl fmt::Display for RangeClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{} in [{}, {}]", self.slot, self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_match_sql_semantics() {
        let row = vec![Value::Int(5), Value::Float(2.5), Value::Null];
        assert!(Expr::cmp(0, CmpOp::Gt, 4i64).eval_bool(&row));
        assert!(!Expr::cmp(0, CmpOp::Gt, 5i64).eval_bool(&row));
        assert!(Expr::cmp(0, CmpOp::Ge, 5i64).eval_bool(&row));
        assert!(Expr::cmp(1, CmpOp::Eq, 2.5).eval_bool(&row));
        assert!(Expr::cmp(1, CmpOp::Ne, 2.0).eval_bool(&row));
        // Null operands never satisfy.
        assert!(!Expr::cmp(2, CmpOp::Eq, 0i64).eval_bool(&row));
        assert!(!Expr::cmp(2, CmpOp::Ne, 0i64).eval_bool(&row));
    }

    #[test]
    fn boolean_connectives() {
        let row = vec![Value::Int(5)];
        let e = Expr::And(vec![
            Expr::cmp(0, CmpOp::Gt, 1i64),
            Expr::cmp(0, CmpOp::Lt, 10i64),
        ]);
        assert!(e.eval_bool(&row));
        let e = Expr::Or(vec![
            Expr::cmp(0, CmpOp::Gt, 100i64),
            Expr::cmp(0, CmpOp::Lt, 10i64),
        ]);
        assert!(e.eval_bool(&row));
        assert!(!Expr::Not(Box::new(e)).eval_bool(&row));
    }

    #[test]
    fn cross_type_numeric_comparison() {
        let row = vec![Value::Int(3)];
        assert!(Expr::cmp(0, CmpOp::Le, 3.0).eval_bool(&row));
        assert!(Expr::cmp(0, CmpOp::Ge, 2.9).eval_bool(&row));
    }

    #[test]
    fn between_builds_closed_interval() {
        let e = Expr::between(2, 1.0, 5.0);
        let ranges = e.as_ranges().unwrap();
        assert_eq!(
            ranges,
            vec![RangeClause {
                slot: 2,
                lo: 1.0,
                hi: 5.0
            }]
        );
    }

    #[test]
    fn range_extraction_merges_same_slot() {
        let e = Expr::And(vec![
            Expr::cmp(0, CmpOp::Ge, 1i64),
            Expr::cmp(0, CmpOp::Le, 9i64),
            Expr::cmp(1, CmpOp::Gt, 4i64),
        ]);
        let ranges = e.as_ranges().unwrap();
        assert_eq!(ranges.len(), 2);
        assert_eq!(
            ranges[0],
            RangeClause {
                slot: 0,
                lo: 1.0,
                hi: 9.0
            }
        );
        assert_eq!(
            ranges[1],
            RangeClause {
                slot: 1,
                lo: 4.0,
                hi: f64::INFINITY
            }
        );
    }

    #[test]
    fn range_extraction_handles_flipped_literal() {
        let e = Expr::Cmp(
            CmpOp::Ge,
            Box::new(Expr::Lit(Value::Int(10))),
            Box::new(Expr::Slot(0)),
        );
        // 10 >= slot  <=>  slot <= 10
        let ranges = e.as_ranges().unwrap();
        assert_eq!(
            ranges,
            vec![RangeClause {
                slot: 0,
                lo: f64::NEG_INFINITY,
                hi: 10.0
            }]
        );
    }

    #[test]
    fn non_conjunctive_shapes_are_rejected() {
        let or = Expr::Or(vec![Expr::cmp(0, CmpOp::Gt, 1i64)]);
        assert!(or.as_ranges().is_none());
        let ne = Expr::cmp(0, CmpOp::Ne, 1i64);
        assert!(ne.as_ranges().is_none());
        let string_cmp = Expr::cmp(0, CmpOp::Eq, "x");
        assert!(string_cmp.as_ranges().is_none());
    }

    #[test]
    fn covers_relation() {
        let wide = RangeClause {
            slot: 0,
            lo: 0.0,
            hi: 100.0,
        };
        let narrow = RangeClause {
            slot: 0,
            lo: 10.0,
            hi: 20.0,
        };
        let other_slot = RangeClause {
            slot: 1,
            lo: 10.0,
            hi: 20.0,
        };
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.covers(&wide));
        assert!(!wide.covers(&other_slot));
    }

    #[test]
    fn slots_enumeration() {
        let e = Expr::And(vec![
            Expr::cmp(3, CmpOp::Gt, 1i64),
            Expr::cmp(1, CmpOp::Lt, 2i64),
        ]);
        let mut slots = Vec::new();
        e.slots(&mut slots);
        slots.sort_unstable();
        assert_eq!(slots, vec![1, 3]);
    }

    #[test]
    fn eval_returns_values() {
        let row = vec![Value::Int(5)];
        assert_eq!(Expr::Slot(0).eval(&row), Value::Int(5));
        assert_eq!(Expr::Lit(Value::from("x")).eval(&row), Value::from("x"));
        assert_eq!(Expr::cmp(0, CmpOp::Gt, 1i64).eval(&row), Value::Bool(true));
    }
}
