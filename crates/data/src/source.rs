//! [`RawFile`]: a raw CSV or JSON source with a lazily built positional
//! map, exposing flattened, projected scans to the query engine.

use crate::posmap::PositionalMap;
use crate::{csv, json};
use recache_types::{
    flatten_record_projected, DataType, FlatRow, LeafField, Result, Schema, Value,
};
use std::sync::{Arc, Mutex};

/// Raw file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileFormat {
    Csv,
    Json,
}

impl FileFormat {
    pub fn name(&self) -> &'static str {
        match self {
            FileFormat::Csv => "csv",
            FileFormat::Json => "json",
        }
    }
}

/// Per-scan statistics fed into ReCache's cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanMetrics {
    /// Records visited.
    pub records: usize,
    /// Flattened rows produced (≥ records when nested leaves are accessed).
    pub rows: usize,
    /// Whether the positional map was available (subsequent scans are
    /// cheaper than the first).
    pub used_posmap: bool,
}

/// An in-memory raw data file (the paper runs over warm OS caches; loading
/// the bytes up front models that while keeping scans CPU-bound).
pub struct RawFile {
    format: FileFormat,
    schema: Schema,
    bytes: Vec<u8>,
    leaves: Vec<LeafField>,
    /// For each leaf, the index of the top-level field it lives under
    /// (drives selective JSON parsing).
    leaf_top: Vec<usize>,
    posmap: Mutex<Option<Arc<PositionalMap>>>,
}

impl std::fmt::Debug for RawFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawFile")
            .field("format", &self.format)
            .field("bytes", &self.bytes.len())
            .field("leaves", &self.leaves.len())
            .finish()
    }
}

impl RawFile {
    /// Wraps raw bytes (used by tests and generators).
    pub fn from_bytes(bytes: Vec<u8>, format: FileFormat, schema: Schema) -> Self {
        let leaves = schema.leaves();
        let leaf_top = leaf_top_indices(&schema);
        debug_assert_eq!(leaves.len(), leaf_top.len());
        RawFile {
            format,
            schema,
            bytes,
            leaves,
            leaf_top,
            posmap: Mutex::new(None),
        }
    }

    /// Reads a file from disk into memory.
    pub fn open(
        path: impl AsRef<std::path::Path>,
        format: FileFormat,
        schema: Schema,
    ) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Ok(Self::from_bytes(bytes, format, schema))
    }

    pub fn format(&self) -> FileFormat {
        self.format
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Scalar leaves in canonical order (the engine's column universe).
    pub fn leaves(&self) -> &[LeafField] {
        &self.leaves
    }

    /// Raw size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Number of records, known once a positional map exists.
    pub fn record_count(&self) -> Option<usize> {
        self.posmap
            .lock()
            .expect("posmap lock")
            .as_ref()
            .map(|m| m.record_count())
    }

    /// The positional map, if one has been built.
    pub fn posmap(&self) -> Option<Arc<PositionalMap>> {
        self.posmap.lock().expect("posmap lock").clone()
    }

    /// Scans the file, emitting flattened rows restricted to the accessed
    /// leaves (`accessed` is indexed by leaf id). The first scan tokenizes
    /// everything and builds the positional map; later scans navigate it.
    pub fn scan_projected(
        &self,
        accessed: &[bool],
        on_row: &mut dyn FnMut(usize, FlatRow),
    ) -> Result<ScanMetrics> {
        debug_assert_eq!(accessed.len(), self.leaves.len());
        let existing = self.posmap();
        let mut metrics = ScanMetrics {
            records: 0,
            rows: 0,
            used_posmap: existing.is_some(),
        };
        match self.format {
            FileFormat::Csv => {
                let mut emit = |id: usize, values: Vec<Value>| {
                    metrics.records += 1;
                    metrics.rows += 1;
                    on_row(id, values);
                    Ok(())
                };
                match existing {
                    Some(map) => {
                        csv::scan_with_map(&self.bytes, &self.schema, &map, accessed, emit)?
                    }
                    None => {
                        let map =
                            csv::scan_build_map(&self.bytes, &self.schema, accessed, &mut emit)?;
                        self.install_posmap(map);
                    }
                }
            }
            FileFormat::Json => {
                let accessed_top = self.accessed_top(accessed);
                let mut emit = |id: usize, record: Value| {
                    let rows = flatten_record_projected(&self.schema, &record, accessed);
                    metrics.records += 1;
                    metrics.rows += rows.len();
                    for row in rows {
                        on_row(id, row);
                    }
                    Ok(())
                };
                match existing {
                    Some(map) => json::scan_with_map(
                        &self.bytes,
                        &self.schema,
                        &map,
                        Some(&accessed_top),
                        emit,
                    )?,
                    None => {
                        let map = json::scan_build_map(
                            &self.bytes,
                            &self.schema,
                            Some(&accessed_top),
                            &mut emit,
                        )?;
                        self.install_posmap(map);
                    }
                }
            }
        }
        Ok(metrics)
    }

    /// Re-reads specific records by id (lazy-cache path). Requires a
    /// positional map, which the first scan always installs.
    pub fn scan_records_projected(
        &self,
        record_ids: &[u32],
        accessed: &[bool],
        on_row: &mut dyn FnMut(usize, FlatRow),
    ) -> Result<ScanMetrics> {
        let map = self
            .posmap()
            .ok_or_else(|| recache_types::Error::exec("no positional map for offset re-read"))?;
        let mut metrics = ScanMetrics {
            records: 0,
            rows: 0,
            used_posmap: true,
        };
        match self.format {
            FileFormat::Csv => {
                for &id in record_ids {
                    let values = csv::parse_record_at(
                        &self.bytes,
                        &self.schema,
                        &map,
                        id as usize,
                        accessed,
                    )?;
                    metrics.records += 1;
                    metrics.rows += 1;
                    on_row(id as usize, values);
                }
            }
            FileFormat::Json => {
                let accessed_top = self.accessed_top(accessed);
                for &id in record_ids {
                    let record = json::parse_record_at(
                        &self.bytes,
                        &self.schema,
                        &map,
                        id as usize,
                        Some(&accessed_top),
                    )?;
                    let rows = flatten_record_projected(&self.schema, &record, accessed);
                    metrics.records += 1;
                    metrics.rows += rows.len();
                    for row in rows {
                        on_row(id as usize, row);
                    }
                }
            }
        }
        Ok(metrics)
    }

    /// Chunked variant of [`RawFile::scan_records_projected`] for the
    /// lazy-cache reuse path: flattened rows are buffered into batches of
    /// up to `batch_rows` and emitted as parallel id/row slices, so tight
    /// consumers (the engine's offsets scan) pay one virtual call per
    /// batch instead of per row.
    pub fn scan_records_projected_batched(
        &self,
        record_ids: &[u32],
        accessed: &[bool],
        batch_rows: usize,
        on_batch: &mut dyn FnMut(&[u32], &[FlatRow]),
    ) -> Result<ScanMetrics> {
        let batch_rows = batch_rows.max(1);
        let mut ids: Vec<u32> = Vec::with_capacity(batch_rows);
        let mut rows: Vec<FlatRow> = Vec::with_capacity(batch_rows);
        let metrics = self.scan_records_projected(record_ids, accessed, &mut |id, row| {
            ids.push(id as u32);
            rows.push(row);
            if rows.len() == batch_rows {
                on_batch(&ids, &rows);
                ids.clear();
                rows.clear();
            }
        })?;
        if !rows.is_empty() {
            on_batch(&ids, &rows);
        }
        Ok(metrics)
    }

    /// Scans full records as nested values (used by cache materialization
    /// when the whole tuple is cached).
    pub fn scan_records(&self, on_record: &mut dyn FnMut(usize, Value)) -> Result<usize> {
        match self.format {
            FileFormat::Csv => {
                let accessed = vec![true; self.schema.len()];
                let mut count = 0usize;
                let emit = |id: usize, values: Vec<Value>| {
                    count += 1;
                    on_record(id, Value::Struct(values));
                    Ok(())
                };
                match self.posmap() {
                    Some(map) => {
                        csv::scan_with_map(&self.bytes, &self.schema, &map, &accessed, emit)?
                    }
                    None => {
                        let mut emit = emit;
                        let map =
                            csv::scan_build_map(&self.bytes, &self.schema, &accessed, &mut emit)?;
                        self.install_posmap(map);
                    }
                }
                Ok(count)
            }
            FileFormat::Json => {
                let mut count = 0usize;
                let emit = |id: usize, record: Value| {
                    count += 1;
                    on_record(id, record);
                    Ok(())
                };
                match self.posmap() {
                    Some(map) => json::scan_with_map(&self.bytes, &self.schema, &map, None, emit)?,
                    None => {
                        let mut emit = emit;
                        let map = json::scan_build_map(&self.bytes, &self.schema, None, &mut emit)?;
                        self.install_posmap(map);
                    }
                }
                Ok(count)
            }
        }
    }

    /// Reads one full nested record by id through the positional map (the
    /// eager-cache materialization path).
    pub fn read_record(&self, record_id: u32) -> Result<Value> {
        let mut out = self.read_records(std::slice::from_ref(&record_id))?;
        Ok(out.pop().expect("one record requested"))
    }

    /// Reads a batch of full records by id: one positional-map
    /// acquisition for the whole batch (the per-record path pays a lock
    /// and an `Arc` bump per call, which dominates at materialization
    /// scale).
    pub fn read_records(&self, record_ids: &[u32]) -> Result<Vec<Value>> {
        let map = self
            .posmap()
            .ok_or_else(|| recache_types::Error::exec("no positional map for record read"))?;
        let mut out = Vec::with_capacity(record_ids.len());
        match self.format {
            FileFormat::Csv => {
                let accessed = vec![true; self.schema.len()];
                for &id in record_ids {
                    let values = csv::parse_record_at(
                        &self.bytes,
                        &self.schema,
                        &map,
                        id as usize,
                        &accessed,
                    )?;
                    out.push(Value::Struct(values));
                }
            }
            FileFormat::Json => {
                for &id in record_ids {
                    out.push(json::parse_record_at(
                        &self.bytes,
                        &self.schema,
                        &map,
                        id as usize,
                        None,
                    )?);
                }
            }
        }
        Ok(out)
    }

    fn install_posmap(&self, map: PositionalMap) {
        *self.posmap.lock().expect("posmap lock") = Some(Arc::new(map));
    }

    /// Top-level access bitmap derived from a leaf access bitmap.
    fn accessed_top(&self, accessed: &[bool]) -> Vec<bool> {
        let mut top = vec![false; self.schema.len()];
        for (leaf, &a) in accessed.iter().enumerate() {
            if a {
                top[self.leaf_top[leaf]] = true;
            }
        }
        top
    }
}

/// For each leaf (in canonical order), the top-level field it belongs to.
fn leaf_top_indices(schema: &Schema) -> Vec<usize> {
    fn count(ty: &DataType) -> usize {
        match ty {
            DataType::Struct(fields) => fields.iter().map(|f| count(&f.data_type)).sum(),
            DataType::List(inner) => count(inner),
            _ => 1,
        }
    }
    let mut out = Vec::new();
    for (i, field) in schema.fields().iter().enumerate() {
        out.extend(std::iter::repeat_n(i, count(&field.data_type)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::Field;

    fn csv_file() -> RawFile {
        let schema = Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::required("b", DataType::Float),
        ]);
        let bytes = csv::write_csv(
            &schema,
            &[
                vec![Value::Int(1), Value::Float(0.5)],
                vec![Value::Int(2), Value::Float(1.5)],
            ],
        );
        RawFile::from_bytes(bytes, FileFormat::Csv, schema)
    }

    fn json_file() -> RawFile {
        let schema = Schema::new(vec![
            Field::required("o", DataType::Int),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![Field::required(
                    "q",
                    DataType::Int,
                )]))),
            ),
        ]);
        let records = vec![
            Value::Struct(vec![
                Value::Int(1),
                Value::List(vec![
                    Value::Struct(vec![Value::Int(10)]),
                    Value::Struct(vec![Value::Int(11)]),
                ]),
            ]),
            Value::Struct(vec![
                Value::Int(2),
                Value::List(vec![Value::Struct(vec![Value::Int(20)])]),
            ]),
        ];
        let bytes = json::write_json(&schema, &records);
        RawFile::from_bytes(bytes, FileFormat::Json, schema)
    }

    #[test]
    fn csv_scan_builds_map_then_reuses_it() {
        let file = csv_file();
        assert!(file.record_count().is_none());
        let mut rows = Vec::new();
        let m1 = file
            .scan_projected(&[true, true], &mut |_, row| rows.push(row))
            .unwrap();
        assert!(!m1.used_posmap);
        assert_eq!(m1.records, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(file.record_count(), Some(2));

        let mut rows2 = Vec::new();
        let m2 = file
            .scan_projected(&[true, false], &mut |_, row| rows2.push(row))
            .unwrap();
        assert!(m2.used_posmap);
        assert_eq!(rows2, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn json_nested_scan_flattens_per_element() {
        let file = json_file();
        let mut rows = Vec::new();
        let m = file
            .scan_projected(&[true, true], &mut |id, row| rows.push((id, row)))
            .unwrap();
        assert_eq!(m.records, 2);
        assert_eq!(m.rows, 3);
        assert_eq!(rows[0], (0, vec![Value::Int(1), Value::Int(10)]));
        assert_eq!(rows[1], (0, vec![Value::Int(1), Value::Int(11)]));
        assert_eq!(rows[2], (1, vec![Value::Int(2), Value::Int(20)]));
    }

    #[test]
    fn json_non_nested_scan_yields_one_row_per_record() {
        let file = json_file();
        let mut rows = Vec::new();
        let m = file
            .scan_projected(&[true, false], &mut |_, row| rows.push(row))
            .unwrap();
        assert_eq!(m.rows, 2);
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn offset_reread_returns_selected_records() {
        let file = json_file();
        // First scan installs the positional map.
        file.scan_projected(&[true, false], &mut |_, _| {}).unwrap();
        let mut rows = Vec::new();
        let m = file
            .scan_records_projected(&[1], &[true, true], &mut |id, row| rows.push((id, row)))
            .unwrap();
        assert_eq!(m.records, 1);
        assert_eq!(rows, vec![(1, vec![Value::Int(2), Value::Int(20)])]);
    }

    #[test]
    fn offset_reread_without_map_errors() {
        let file = json_file();
        let err = file.scan_records_projected(&[0], &[true, true], &mut |_, _| {});
        assert!(err.is_err());
    }

    #[test]
    fn scan_full_records() {
        let file = json_file();
        let mut records = Vec::new();
        let n = file.scan_records(&mut |_, r| records.push(r)).unwrap();
        assert_eq!(n, 2);
        assert!(matches!(records[0], Value::Struct(_)));
        // Map installed as a side effect.
        assert_eq!(file.record_count(), Some(2));
    }

    #[test]
    fn leaf_top_mapping() {
        let file = json_file();
        assert_eq!(super::leaf_top_indices(file.schema()), vec![0, 1]);
    }
}
