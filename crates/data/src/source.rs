//! [`RawFile`]: a raw CSV or JSON source with a lazily built positional
//! map, exposing flattened, projected scans to the query engine.

use crate::fault::{FaultPlan, FaultSite, RetryPolicy};
use crate::posmap::PositionalMap;
use crate::raw_batch::{self, RawBatchIndex};
use crate::{csv, json, json_batch};
use recache_layout::{BatchScratch, ColumnBatch, ScanCost, SelectionVector, BATCH_ROWS};
use recache_types::{
    flatten_record_projected, DataType, FlatRow, LeafField, Result, ScalarType, ScanCtl, Schema,
    Value,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Raw file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileFormat {
    Csv,
    Json,
}

impl FileFormat {
    pub fn name(&self) -> &'static str {
        match self {
            FileFormat::Csv => "csv",
            FileFormat::Json => "json",
        }
    }
}

/// Per-scan statistics fed into ReCache's cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanMetrics {
    /// Records visited.
    pub records: usize,
    /// Flattened rows produced (≥ records when nested leaves are accessed).
    pub rows: usize,
    /// Whether the positional map was available (subsequent scans are
    /// cheaper than the first).
    pub used_posmap: bool,
}

/// An in-memory raw data file (the paper runs over warm OS caches; loading
/// the bytes up front models that while keeping scans CPU-bound).
pub struct RawFile {
    format: FileFormat,
    schema: Schema,
    bytes: Vec<u8>,
    leaves: Vec<LeafField>,
    /// For each leaf, the index of the top-level field it lives under
    /// (drives selective JSON parsing).
    leaf_top: Vec<usize>,
    posmap: Mutex<Option<Arc<PositionalMap>>>,
    /// Batched-scan state for flat files (CSV and flat JSON): the SWAR
    /// newline record index plus, until the positional map is assembled,
    /// per-chunk capture slabs — shared chunk-grid machinery in
    /// [`raw_batch`], format-specific tokenize + map assembly here.
    batch: Mutex<Option<Arc<RawBatchIndex>>>,
    /// Fault injection + retry configuration. Sampled once per scan
    /// call (not per chunk); a `None` plan is production mode and costs
    /// that single sample.
    faults: Mutex<FaultState>,
    /// Ordinal of row-path scans, used as the fault-decision coordinate
    /// for [`FaultSite::RowScan`] (chunked scans use the chunk index).
    row_scan_seq: AtomicU64,
}

#[derive(Debug, Clone, Default)]
struct FaultState {
    plan: Option<Arc<FaultPlan>>,
    retry: RetryPolicy,
}

impl std::fmt::Debug for RawFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawFile")
            .field("format", &self.format)
            .field("bytes", &self.bytes.len())
            .field("leaves", &self.leaves.len())
            .finish()
    }
}

impl RawFile {
    /// Wraps raw bytes (used by tests and generators).
    pub fn from_bytes(bytes: Vec<u8>, format: FileFormat, schema: Schema) -> Self {
        let leaves = schema.leaves();
        let leaf_top = leaf_top_indices(&schema);
        debug_assert_eq!(leaves.len(), leaf_top.len());
        RawFile {
            format,
            schema,
            bytes,
            leaves,
            leaf_top,
            posmap: Mutex::new(None),
            batch: Mutex::new(None),
            faults: Mutex::new(FaultState::default()),
            row_scan_seq: AtomicU64::new(0),
        }
    }

    /// Installs (or clears, with `None`) a seeded fault-injection plan.
    /// Scans already in flight keep the configuration they sampled at
    /// their start.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        self.faults.lock().expect("faults lock").plan = plan.map(Arc::new);
    }

    /// Overrides the bounded-retry policy for transient chunk faults.
    pub fn set_retry_policy(&self, retry: RetryPolicy) {
        self.faults.lock().expect("faults lock").retry = retry;
    }

    /// One sample of the fault configuration, taken at scan start.
    fn fault_state(&self) -> FaultState {
        self.faults.lock().expect("faults lock").clone()
    }

    /// Fault gate for row-at-a-time scan entry points. Injection (and
    /// bounded retry of transient faults) happens *before* any row is
    /// emitted: a mid-stream retry would re-emit rows the consumer has
    /// already seen, so the row paths only fault at scan start. The
    /// decision coordinate is the row-scan ordinal.
    fn row_scan_gate(&self) -> Result<()> {
        let FaultState { plan, retry } = self.fault_state();
        let Some(plan) = plan else {
            return Ok(());
        };
        let ordinal = self.row_scan_seq.fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0u32;
        loop {
            match plan.inject(FaultSite::RowScan, ordinal, attempt) {
                Ok(()) => return Ok(()),
                Err(err) if err.is_transient() && attempt + 1 < retry.max_attempts.max(1) => {
                    attempt += 1;
                    std::thread::sleep(retry.delay(attempt));
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Reads a file from disk into memory.
    pub fn open(
        path: impl AsRef<std::path::Path>,
        format: FileFormat,
        schema: Schema,
    ) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Ok(Self::from_bytes(bytes, format, schema))
    }

    pub fn format(&self) -> FileFormat {
        self.format
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Scalar leaves in canonical order (the engine's column universe).
    pub fn leaves(&self) -> &[LeafField] {
        &self.leaves
    }

    /// Raw size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Number of records, known once a positional map exists.
    pub fn record_count(&self) -> Option<usize> {
        self.posmap
            .lock()
            .expect("posmap lock")
            .as_ref()
            .map(|m| m.record_count())
    }

    /// The positional map, if one has been built.
    pub fn posmap(&self) -> Option<Arc<PositionalMap>> {
        self.posmap.lock().expect("posmap lock").clone()
    }

    /// Scans the file, emitting flattened rows restricted to the accessed
    /// leaves (`accessed` is indexed by leaf id). The first scan tokenizes
    /// everything and builds the positional map; later scans navigate it.
    pub fn scan_projected(
        &self,
        accessed: &[bool],
        on_row: &mut dyn FnMut(usize, FlatRow),
    ) -> Result<ScanMetrics> {
        debug_assert_eq!(accessed.len(), self.leaves.len());
        self.row_scan_gate()?;
        let existing = self.posmap();
        let mut metrics = ScanMetrics {
            records: 0,
            rows: 0,
            used_posmap: existing.is_some(),
        };
        match self.format {
            FileFormat::Csv => {
                let mut emit = |id: usize, values: Vec<Value>| {
                    metrics.records += 1;
                    metrics.rows += 1;
                    on_row(id, values);
                    Ok(())
                };
                match existing {
                    Some(map) => {
                        csv::scan_with_map(&self.bytes, &self.schema, &map, accessed, emit)?
                    }
                    None => {
                        let map =
                            csv::scan_build_map(&self.bytes, &self.schema, accessed, &mut emit)?;
                        self.install_posmap(map);
                    }
                }
            }
            FileFormat::Json => {
                let accessed_top = self.accessed_top(accessed);
                let mut emit = |id: usize, record: Value| {
                    let rows = flatten_record_projected(&self.schema, &record, accessed);
                    metrics.records += 1;
                    metrics.rows += rows.len();
                    for row in rows {
                        on_row(id, row);
                    }
                    Ok(())
                };
                match existing {
                    Some(map) => json::scan_with_map(
                        &self.bytes,
                        &self.schema,
                        &map,
                        Some(&accessed_top),
                        emit,
                    )?,
                    None => {
                        let map = json::scan_build_map(
                            &self.bytes,
                            &self.schema,
                            Some(&accessed_top),
                            &mut emit,
                        )?;
                        self.install_posmap(map);
                    }
                }
            }
        }
        Ok(metrics)
    }

    /// Re-reads specific records by id (lazy-cache path). Requires a
    /// positional map, which the first scan always installs.
    pub fn scan_records_projected(
        &self,
        record_ids: &[u32],
        accessed: &[bool],
        on_row: &mut dyn FnMut(usize, FlatRow),
    ) -> Result<ScanMetrics> {
        self.row_scan_gate()?;
        let map = self
            .posmap()
            .ok_or_else(|| recache_types::Error::exec("no positional map for offset re-read"))?;
        let mut metrics = ScanMetrics {
            records: 0,
            rows: 0,
            used_posmap: true,
        };
        match self.format {
            FileFormat::Csv => {
                for &id in record_ids {
                    let values = csv::parse_record_at(
                        &self.bytes,
                        &self.schema,
                        &map,
                        id as usize,
                        accessed,
                    )?;
                    metrics.records += 1;
                    metrics.rows += 1;
                    on_row(id as usize, values);
                }
            }
            FileFormat::Json => {
                let accessed_top = self.accessed_top(accessed);
                for &id in record_ids {
                    let record = json::parse_record_at(
                        &self.bytes,
                        &self.schema,
                        &map,
                        id as usize,
                        Some(&accessed_top),
                    )?;
                    let rows = flatten_record_projected(&self.schema, &record, accessed);
                    metrics.records += 1;
                    metrics.rows += rows.len();
                    for row in rows {
                        on_row(id as usize, row);
                    }
                }
            }
        }
        Ok(metrics)
    }

    /// Chunked variant of [`RawFile::scan_records_projected`] for the
    /// lazy-cache reuse path: flattened rows are buffered into batches of
    /// up to `batch_rows` and emitted as parallel id/row slices, so tight
    /// consumers (the engine's offsets scan) pay one virtual call per
    /// batch instead of per row.
    pub fn scan_records_projected_batched(
        &self,
        record_ids: &[u32],
        accessed: &[bool],
        batch_rows: usize,
        on_batch: &mut dyn FnMut(&[u32], &[FlatRow]),
    ) -> Result<ScanMetrics> {
        let batch_rows = batch_rows.max(1);
        let mut ids: Vec<u32> = Vec::with_capacity(batch_rows);
        let mut rows: Vec<FlatRow> = Vec::with_capacity(batch_rows);
        let metrics = self.scan_records_projected(record_ids, accessed, &mut |id, row| {
            ids.push(id as u32);
            rows.push(row);
            if rows.len() == batch_rows {
                on_batch(&ids, &rows);
                ids.clear();
                rows.clear();
            }
        })?;
        if !rows.is_empty() {
            on_batch(&ids, &rows);
        }
        Ok(metrics)
    }

    /// Scans full records as nested values (used by cache materialization
    /// when the whole tuple is cached).
    pub fn scan_records(&self, on_record: &mut dyn FnMut(usize, Value)) -> Result<usize> {
        self.row_scan_gate()?;
        match self.format {
            FileFormat::Csv => {
                let accessed = vec![true; self.schema.len()];
                let mut count = 0usize;
                let emit = |id: usize, values: Vec<Value>| {
                    count += 1;
                    on_record(id, Value::Struct(values));
                    Ok(())
                };
                match self.posmap() {
                    Some(map) => {
                        csv::scan_with_map(&self.bytes, &self.schema, &map, &accessed, emit)?
                    }
                    None => {
                        let mut emit = emit;
                        let map =
                            csv::scan_build_map(&self.bytes, &self.schema, &accessed, &mut emit)?;
                        self.install_posmap(map);
                    }
                }
                Ok(count)
            }
            FileFormat::Json => {
                let mut count = 0usize;
                let emit = |id: usize, record: Value| {
                    count += 1;
                    on_record(id, record);
                    Ok(())
                };
                match self.posmap() {
                    Some(map) => json::scan_with_map(&self.bytes, &self.schema, &map, None, emit)?,
                    None => {
                        let mut emit = emit;
                        let map = json::scan_build_map(&self.bytes, &self.schema, None, &mut emit)?;
                        self.install_posmap(map);
                    }
                }
                Ok(count)
            }
        }
    }

    /// Reads one full nested record by id through the positional map (the
    /// eager-cache materialization path).
    pub fn read_record(&self, record_id: u32) -> Result<Value> {
        let mut out = self.read_records(std::slice::from_ref(&record_id))?;
        Ok(out.pop().expect("one record requested"))
    }

    /// Reads a batch of full records by id: one positional-map
    /// acquisition for the whole batch (the per-record path pays a lock
    /// and an `Arc` bump per call, which dominates at materialization
    /// scale).
    pub fn read_records(&self, record_ids: &[u32]) -> Result<Vec<Value>> {
        self.row_scan_gate()?;
        let map = self
            .posmap()
            .ok_or_else(|| recache_types::Error::exec("no positional map for record read"))?;
        let mut out = Vec::with_capacity(record_ids.len());
        match self.format {
            FileFormat::Csv => {
                let accessed = vec![true; self.schema.len()];
                for &id in record_ids {
                    let values = csv::parse_record_at(
                        &self.bytes,
                        &self.schema,
                        &map,
                        id as usize,
                        &accessed,
                    )?;
                    out.push(Value::Struct(values));
                }
            }
            FileFormat::Json => {
                for &id in record_ids {
                    out.push(json::parse_record_at(
                        &self.bytes,
                        &self.schema,
                        &map,
                        id as usize,
                        None,
                    )?);
                }
            }
        }
        Ok(out)
    }

    /// Whether [`RawFile::scan_batches_range`] can serve this file. The
    /// shape test: every leaf must be a top-level scalar, so each record
    /// is exactly one flattened row — true for all CSV by construction,
    /// and for JSON whose schema is flat (nested or ragged shapes keep
    /// the row-at-a-time flattening fallback). The file must also be
    /// small enough for the tokenizers' `u32` position indexing (4 GiB+
    /// files fall back to the `usize`-indexed row tokenizers).
    pub fn supports_batch_scan(&self) -> bool {
        let flat = match self.format {
            FileFormat::Csv => true,
            FileFormat::Json => self
                .schema
                .fields()
                .iter()
                .all(|f| f.data_type.as_scalar().is_some()),
        };
        flat && self.bytes.len() <= u32::MAX as usize
    }

    /// Number of records, from the positional map or the batched-scan
    /// record index, if either has been built.
    pub fn known_record_count(&self) -> Option<usize> {
        if let Some(n) = self.record_count() {
            return Some(n);
        }
        self.batch
            .lock()
            .expect("batch lock")
            .as_ref()
            .map(|ix| ix.n_records())
    }

    /// Drops the positional map and batched-scan index, returning the
    /// file to its never-scanned state (benchmarks re-measure first
    /// scans with it; queries never need it).
    pub fn reset_scan_state(&self) {
        *self.posmap.lock().expect("posmap lock") = None;
        *self.batch.lock().expect("batch lock") = None;
    }

    /// Size of the batched-scan chunk grid: [`BATCH_ROWS`]-record
    /// windows. Builds the newline record index on first use (one cheap
    /// byte pass — the expensive tokenize/parse work stays inside the
    /// chunk scans, which is what makes the grid parallelizable).
    pub fn batch_chunks(&self) -> usize {
        assert!(
            self.supports_batch_scan(),
            "batched scans require a flat source"
        );
        loop {
            if let Some(map) = self.posmap() {
                return map.record_count().div_ceil(BATCH_ROWS);
            }
            if let Some(index) = self.batch_index() {
                return index.n_chunks();
            }
            // batch_index() saw an installed map (a racing scan completed
            // coverage) that a concurrent reset_scan_state() has since
            // cleared: start over from the cold state.
        }
    }

    /// The first-scan chunk index, built on demand. Returns `None` when
    /// a positional map already exists — in particular when a racing
    /// scan completed coverage (installing the map and retiring the
    /// index) between the caller's posmap sample and this call:
    /// rebuilding then would re-index the whole file into an index no
    /// one would ever complete. Callers take the mapped path instead.
    fn batch_index(&self) -> Option<Arc<RawBatchIndex>> {
        let mut slot = self.batch.lock().expect("batch lock");
        if let Some(index) = slot.as_ref() {
            return Some(Arc::clone(index));
        }
        if self.posmap.lock().expect("posmap lock").is_some() {
            return None;
        }
        let index = Arc::new(RawBatchIndex::new(raw_batch::index_records(&self.bytes)));
        if index.n_chunks() == 0 {
            // Empty file: nothing will ever scan a chunk, so install the
            // (empty) positional map right away — the row path does the
            // same on its first scan.
            self.install_posmap(self.assemble_posmap(vec![0], Vec::new()));
        }
        *slot = Some(Arc::clone(&index));
        Some(index)
    }

    /// The positional map a completed batched first scan installs: CSV
    /// gets record + field offsets, JSON record + per-key value offsets
    /// — either way `capture` is the concatenation of the per-chunk
    /// capture slabs in chunk order.
    fn assemble_posmap(&self, record_offsets: Vec<u64>, capture: Vec<u32>) -> PositionalMap {
        match self.format {
            FileFormat::Csv => {
                PositionalMap::with_fields(record_offsets, capture, self.schema.len())
            }
            FileFormat::Json => {
                PositionalMap::with_json_values(record_offsets, capture, self.schema.len())
            }
        }
    }

    /// Submits one chunk's capture slab; the call that completes
    /// coverage (and only that call — redundant re-scans of an
    /// already-filled chunk are ignored inside the index) assembles the
    /// positional map and retires the index. The install runs *inside*
    /// the index's capture critical section (see
    /// [`RawBatchIndex::submit_with`]): a racing session that finishes
    /// its own scan of this file can only have done so after interacting
    /// with the coverage-completing chunk under that lock, so by the
    /// time it reaches map-dependent work (offsets re-reads, cache
    /// materialization) the map is guaranteed to be installed.
    ///
    /// Lock order: capture → posmap / batch (nothing acquires capture
    /// while holding either of those).
    fn submit_capture(&self, index: &RawBatchIndex, chunk: usize, slab: Vec<u32>) {
        index.submit_with(chunk, slab, |field_offsets| {
            self.install_posmap(
                self.assemble_posmap(index.record_offsets().to_vec(), field_offsets),
            );
            // The index has served its purpose; mapped scans take over.
            *self.batch.lock().expect("batch lock") = None;
        });
    }

    /// Vectorized scan over chunks `[chunk_lo, chunk_hi)` of the
    /// [`RawFile::batch_chunks`] grid: parses the projected fields of
    /// each [`BATCH_ROWS`]-record window straight into typed scratch
    /// columns and yields them as a [`ColumnBatch`] with an identity
    /// selection (flat sources: one row per record; `record_ids` are
    /// file record ids). First scans tokenize and capture the positional
    /// map as a side effect (CSV: field offsets; JSON: per-key value
    /// offsets); once a map exists, CSV navigates field spans directly
    /// and JSON seeks straight to each accessed key's value (falling
    /// back to re-tokenizing known record spans for records-only maps
    /// built by the row path). Chunks are
    /// share-nothing, so disjoint ranges may run concurrently — the
    /// executor fans them out on its work pool exactly as it does
    /// cache-store chunks.
    ///
    /// Cost attribution: tokenize/parse time is data access `D` (raw
    /// scans are one fused navigate+load pass); batch assembly rides the
    /// same timer. `compute_ns` stays 0, matching the row-path scans
    /// which report no D/C split for raw access at all.
    pub fn scan_batches_range(
        &self,
        projection: &[usize],
        want_record_ids: bool,
        chunk_lo: usize,
        chunk_hi: usize,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> Result<ScanCost> {
        self.scan_batches_range_ctl(
            projection,
            want_record_ids,
            chunk_lo,
            chunk_hi,
            None,
            on_batch,
        )
    }

    /// [`RawFile::scan_batches_range`] with a per-scan control block.
    ///
    /// With a [`ScanCtl`]: each chunk is gated on admission first —
    /// external cancellation/timeout aborts the range with a typed
    /// error, and a chunk is *skipped* when another task has already
    /// recorded a failure at a lower chunk index (its output would be
    /// discarded anyway). Chunk failures that survive bounded retry are
    /// recorded in the control block keyed by chunk index, so the error
    /// the merge surfaces is the first-by-chunk-index one regardless of
    /// interleaving. Transient faults (see [`Error::is_transient`])
    /// retry at chunk granularity with capped backoff; each attempt
    /// starts from cleared scratch and a fresh capture slab, and the
    /// slab is only submitted on success, so retries never corrupt the
    /// positional-map capture.
    ///
    /// [`Error::is_transient`]: recache_types::Error::is_transient
    pub fn scan_batches_range_ctl(
        &self,
        projection: &[usize],
        want_record_ids: bool,
        chunk_lo: usize,
        chunk_hi: usize,
        ctl: Option<&ScanCtl>,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> Result<ScanCost> {
        assert!(
            self.supports_batch_scan(),
            "batched scans require a flat source"
        );
        let types: Vec<ScalarType> = self
            .schema
            .fields()
            .iter()
            .map(|f| {
                f.data_type
                    .as_scalar()
                    .expect("flat sources have scalar fields")
            })
            .collect();
        let accessed_fields: Vec<(usize, ScalarType, usize)> = projection
            .iter()
            .enumerate()
            .map(|(slot, &leaf)| (leaf, types[leaf], slot))
            .collect();
        let mut scratch = BatchScratch::for_projection(projection.iter().map(|&leaf| types[leaf]));
        let mut selection = SelectionVector::new();
        let mut cost = ScanCost::default();
        let FaultState {
            plan: fault_plan,
            retry,
        } = self.fault_state();

        // Mapped vs first-scan mode is decided once per range: a posmap
        // installed mid-scan (by this range's own capture or a racing
        // scan) only benefits the *next* scan, keeping per-chunk work
        // uniform within one fan-out.
        let (existing, index) = loop {
            let existing = self.posmap();
            if existing.is_some() {
                break (existing, None);
            }
            if let Some(index) = self.batch_index() {
                break (None, Some(index));
            }
            // batch_index() declined because a racing scan installed the
            // map; this range runs mapped — unless a concurrent
            // reset_scan_state() cleared it again, in which case retry
            // from the cold state.
            let resampled = self.posmap();
            if resampled.is_some() {
                break (resampled, None);
            }
        };
        let n_records = match (&existing, &index) {
            (Some(map), _) => map.record_count(),
            (None, Some(ix)) => ix.n_records(),
            (None, None) => unreachable!("the mode loop breaks with a map or an index"),
        };
        for chunk in chunk_lo..chunk_hi {
            let rec_lo = chunk * BATCH_ROWS;
            if rec_lo >= n_records {
                break;
            }
            if let Some(ctl) = ctl {
                // Err: the query was cancelled or timed out. Ok(false):
                // a chunk at a lower index already failed, so this
                // chunk's output would be discarded — skip the work.
                if !ctl.admit(chunk)? {
                    continue;
                }
            }
            let rec_hi = (rec_lo + BATCH_ROWS).min(n_records);
            // Chunk work is transactional: every attempt starts from
            // cleared scratch and a fresh capture slab (submitted only
            // on success), so a transient fault retries cleanly.
            let mut attempt = 0u32;
            let data_ns = loop {
                let t0 = Instant::now();
                scratch.clear();
                let outcome: Result<()> = (|| {
                    if let Some(plan) = &fault_plan {
                        plan.inject(FaultSite::Chunk, chunk as u64, attempt)?;
                    }
                    match (&existing, &index, self.format) {
                        (Some(map), _, FileFormat::Csv) => {
                            csv::parse_range_with_map(
                                &self.bytes,
                                map,
                                rec_lo,
                                rec_hi,
                                &accessed_fields,
                                &mut scratch.cols,
                            )?;
                        }
                        (Some(map), _, FileFormat::Json) => {
                            if map.has_json_value_offsets() {
                                // A batched first scan captured per-key value
                                // offsets: seek straight to each accessed value,
                                // never touching the other keys' bytes.
                                json_batch::parse_range_with_map(
                                    &self.bytes,
                                    map,
                                    rec_lo,
                                    rec_hi,
                                    &accessed_fields,
                                    &mut scratch.cols,
                                )?;
                            } else {
                                // Records-only map (row-path first scan):
                                // re-tokenize from the known record spans — the
                                // win over the row path is the typed-batch
                                // parse, not the map.
                                json_batch::tokenize_range_into(
                                    &self.bytes,
                                    map.record_offsets(),
                                    rec_lo,
                                    rec_hi,
                                    self.schema.fields(),
                                    &accessed_fields,
                                    &mut scratch.cols,
                                    None,
                                )?;
                            }
                        }
                        (None, Some(ix), FileFormat::Csv) => {
                            if ix.chunk_filled(chunk) {
                                // This chunk's capture is already in: re-scan in
                                // capture-free mode, which skips tokenizing the
                                // trailing unaccessed fields entirely.
                                csv::tokenize_range_into(
                                    &self.bytes,
                                    ix.record_offsets(),
                                    rec_lo,
                                    rec_hi,
                                    self.schema.len(),
                                    &accessed_fields,
                                    &mut scratch.cols,
                                    None,
                                )?;
                            } else {
                                let mut slab =
                                    Vec::with_capacity((rec_hi - rec_lo) * (self.schema.len() + 1));
                                csv::tokenize_range_into(
                                    &self.bytes,
                                    ix.record_offsets(),
                                    rec_lo,
                                    rec_hi,
                                    self.schema.len(),
                                    &accessed_fields,
                                    &mut scratch.cols,
                                    Some(&mut slab),
                                )?;
                                self.submit_capture(ix, chunk, slab);
                            }
                        }
                        (None, Some(ix), FileFormat::Json) => {
                            if ix.chunk_filled(chunk) {
                                // This chunk's capture is already in: re-scan in
                                // capture-free mode (accessed-keys-only
                                // matching, no slab writes).
                                json_batch::tokenize_range_into(
                                    &self.bytes,
                                    ix.record_offsets(),
                                    rec_lo,
                                    rec_hi,
                                    self.schema.fields(),
                                    &accessed_fields,
                                    &mut scratch.cols,
                                    None,
                                )?;
                            } else {
                                // First pass over this chunk: capture every
                                // schema key's value offset so re-scans seek
                                // straight to accessed values.
                                let mut slab =
                                    Vec::with_capacity((rec_hi - rec_lo) * self.schema.len());
                                json_batch::tokenize_range_into(
                                    &self.bytes,
                                    ix.record_offsets(),
                                    rec_lo,
                                    rec_hi,
                                    self.schema.fields(),
                                    &accessed_fields,
                                    &mut scratch.cols,
                                    Some(&mut slab),
                                )?;
                                self.submit_capture(ix, chunk, slab);
                            }
                        }
                        (None, None, _) => unreachable!(),
                    }
                    Ok(())
                })();
                match outcome {
                    Ok(()) => break t0.elapsed().as_nanos() as u64,
                    Err(err) if err.is_transient() && attempt + 1 < retry.max_attempts.max(1) => {
                        attempt += 1;
                        if let Some(ctl) = ctl {
                            ctl.note_retry();
                        }
                        std::thread::sleep(retry.delay(attempt));
                    }
                    Err(err) => {
                        if let Some(ctl) = ctl {
                            ctl.record_failure(chunk, err.clone());
                        }
                        return Err(err);
                    }
                }
            };
            if want_record_ids {
                scratch.record_ids.extend(rec_lo as u32..rec_hi as u32);
            }
            selection.fill_identity(rec_hi - rec_lo);
            let batch = ColumnBatch {
                len: rec_hi - rec_lo,
                columns: scratch.columns(),
                record_ids: &scratch.record_ids,
            };
            on_batch(&batch, &mut selection);
            cost.add(&ScanCost {
                data_ns,
                compute_ns: 0,
                rows: rec_hi - rec_lo,
                rows_visited: rec_hi - rec_lo,
            });
        }
        Ok(cost)
    }

    fn install_posmap(&self, map: PositionalMap) {
        *self.posmap.lock().expect("posmap lock") = Some(Arc::new(map));
    }

    /// Top-level access bitmap derived from a leaf access bitmap.
    fn accessed_top(&self, accessed: &[bool]) -> Vec<bool> {
        let mut top = vec![false; self.schema.len()];
        for (leaf, &a) in accessed.iter().enumerate() {
            if a {
                top[self.leaf_top[leaf]] = true;
            }
        }
        top
    }
}

/// For each leaf (in canonical order), the top-level field it belongs to.
fn leaf_top_indices(schema: &Schema) -> Vec<usize> {
    fn count(ty: &DataType) -> usize {
        match ty {
            DataType::Struct(fields) => fields.iter().map(|f| count(&f.data_type)).sum(),
            DataType::List(inner) => count(inner),
            _ => 1,
        }
    }
    let mut out = Vec::new();
    for (i, field) in schema.fields().iter().enumerate() {
        out.extend(std::iter::repeat_n(i, count(&field.data_type)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::Field;

    fn csv_file() -> RawFile {
        let schema = Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::required("b", DataType::Float),
        ]);
        let bytes = csv::write_csv(
            &schema,
            &[
                vec![Value::Int(1), Value::Float(0.5)],
                vec![Value::Int(2), Value::Float(1.5)],
            ],
        );
        RawFile::from_bytes(bytes, FileFormat::Csv, schema)
    }

    fn json_file() -> RawFile {
        let schema = Schema::new(vec![
            Field::required("o", DataType::Int),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![Field::required(
                    "q",
                    DataType::Int,
                )]))),
            ),
        ]);
        let records = vec![
            Value::Struct(vec![
                Value::Int(1),
                Value::List(vec![
                    Value::Struct(vec![Value::Int(10)]),
                    Value::Struct(vec![Value::Int(11)]),
                ]),
            ]),
            Value::Struct(vec![
                Value::Int(2),
                Value::List(vec![Value::Struct(vec![Value::Int(20)])]),
            ]),
        ];
        let bytes = json::write_json(&schema, &records);
        RawFile::from_bytes(bytes, FileFormat::Json, schema)
    }

    #[test]
    fn csv_scan_builds_map_then_reuses_it() {
        let file = csv_file();
        assert!(file.record_count().is_none());
        let mut rows = Vec::new();
        let m1 = file
            .scan_projected(&[true, true], &mut |_, row| rows.push(row))
            .unwrap();
        assert!(!m1.used_posmap);
        assert_eq!(m1.records, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(file.record_count(), Some(2));

        let mut rows2 = Vec::new();
        let m2 = file
            .scan_projected(&[true, false], &mut |_, row| rows2.push(row))
            .unwrap();
        assert!(m2.used_posmap);
        assert_eq!(rows2, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn json_nested_scan_flattens_per_element() {
        let file = json_file();
        let mut rows = Vec::new();
        let m = file
            .scan_projected(&[true, true], &mut |id, row| rows.push((id, row)))
            .unwrap();
        assert_eq!(m.records, 2);
        assert_eq!(m.rows, 3);
        assert_eq!(rows[0], (0, vec![Value::Int(1), Value::Int(10)]));
        assert_eq!(rows[1], (0, vec![Value::Int(1), Value::Int(11)]));
        assert_eq!(rows[2], (1, vec![Value::Int(2), Value::Int(20)]));
    }

    #[test]
    fn json_non_nested_scan_yields_one_row_per_record() {
        let file = json_file();
        let mut rows = Vec::new();
        let m = file
            .scan_projected(&[true, false], &mut |_, row| rows.push(row))
            .unwrap();
        assert_eq!(m.rows, 2);
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn offset_reread_returns_selected_records() {
        let file = json_file();
        // First scan installs the positional map.
        file.scan_projected(&[true, false], &mut |_, _| {}).unwrap();
        let mut rows = Vec::new();
        let m = file
            .scan_records_projected(&[1], &[true, true], &mut |id, row| rows.push((id, row)))
            .unwrap();
        assert_eq!(m.records, 1);
        assert_eq!(rows, vec![(1, vec![Value::Int(2), Value::Int(20)])]);
    }

    #[test]
    fn offset_reread_without_map_errors() {
        let file = json_file();
        let err = file.scan_records_projected(&[0], &[true, true], &mut |_, _| {});
        assert!(err.is_err());
    }

    #[test]
    fn scan_full_records() {
        let file = json_file();
        let mut records = Vec::new();
        let n = file.scan_records(&mut |_, r| records.push(r)).unwrap();
        assert_eq!(n, 2);
        assert!(matches!(records[0], Value::Struct(_)));
        // Map installed as a side effect.
        assert_eq!(file.record_count(), Some(2));
    }

    #[test]
    fn leaf_top_mapping() {
        let file = json_file();
        assert_eq!(super::leaf_top_indices(file.schema()), vec![0, 1]);
    }

    fn wide_csv_file(rows: usize) -> RawFile {
        let schema = Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::required("b", DataType::Float),
            Field::required("s", DataType::Str),
        ]);
        let records: Vec<Vec<Value>> = (0..rows as i64)
            .map(|i| {
                vec![
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    Value::Float(i as f64 * 0.25),
                    Value::from(format!("s{}", i % 13)),
                ]
            })
            .collect();
        let bytes = csv::write_csv(&schema, &records);
        RawFile::from_bytes(bytes, FileFormat::Csv, schema)
    }

    fn collect_batched(
        file: &RawFile,
        projection: &[usize],
        chunk_ranges: &[(usize, usize)],
    ) -> Vec<(u32, Vec<Value>)> {
        let mut out = Vec::new();
        for &(lo, hi) in chunk_ranges {
            file.scan_batches_range(projection, true, lo, hi, &mut |batch, sel| {
                for &i in sel.as_slice() {
                    let i = i as usize;
                    let row: Vec<Value> = batch.columns.iter().map(|c| c.value(i)).collect();
                    out.push((batch.record_ids[i], row));
                }
            })
            .unwrap();
        }
        out
    }

    #[test]
    fn batched_first_scan_matches_row_scan_and_installs_posmap() {
        let rows = 10_000; // several BATCH_ROWS chunks
        let batched_file = wide_csv_file(rows);
        let row_file = wide_csv_file(rows);
        assert!(batched_file.supports_batch_scan());
        let chunks = batched_file.batch_chunks();
        assert!(chunks > 2, "need a multi-chunk file, got {chunks}");
        assert!(batched_file.posmap().is_none());
        assert_eq!(batched_file.known_record_count(), Some(rows));

        let projection = [2usize, 0];
        let got = collect_batched(&batched_file, &projection, &[(0, chunks)]);
        let mut expected = Vec::new();
        row_file
            .scan_projected(&[true, false, true], &mut |id, row| {
                // Row scans emit in leaf order; reorder to projection.
                expected.push((id as u32, vec![row[1].clone(), row[0].clone()]));
            })
            .unwrap();
        assert_eq!(got, expected);

        // Posmap assembled from the capture slabs must agree with the
        // row tokenizer's.
        let batched_map = batched_file.posmap().expect("posmap installed");
        let row_map = row_file.posmap().unwrap();
        assert_eq!(batched_map.record_count(), row_map.record_count());
        for rec in [0, 1, rows / 2, rows - 1] {
            for field in 0..3 {
                assert_eq!(
                    batched_map.field_span(rec, field),
                    row_map.field_span(rec, field),
                    "record {rec} field {field}"
                );
            }
        }
    }

    #[test]
    fn batched_scan_out_of_order_ranges_still_assemble_the_posmap() {
        let file = wide_csv_file(9500);
        let chunks = file.batch_chunks();
        assert!(chunks >= 3);
        // Scan ranges in shuffled order (as parallel tasks would).
        let full = collect_batched(&file, &[0, 1, 2], &[(chunks - 1, chunks), (0, 1)]);
        assert!(!full.is_empty());
        assert!(file.posmap().is_none(), "partial coverage: no posmap yet");
        collect_batched(&file, &[0, 1, 2], &[(1, chunks - 1)]);
        assert!(file.posmap().is_some(), "full coverage assembles the map");
        // Mapped re-scan agrees with itself.
        let again = collect_batched(&file, &[0, 1, 2], &[(0, chunks)]);
        assert_eq!(again.len(), 9500);
    }

    #[test]
    fn batched_mapped_scan_matches_first_scan() {
        let file = wide_csv_file(6000);
        let chunks = file.batch_chunks();
        let first = collect_batched(&file, &[1, 2], &[(0, chunks)]);
        assert!(file.posmap().is_some());
        let mapped = collect_batched(&file, &[1, 2], &[(0, chunks)]);
        assert_eq!(first, mapped);
    }

    #[test]
    fn batched_scan_reports_parse_errors() {
        let schema = Schema::new(vec![Field::required("a", DataType::Int)]);
        let file = RawFile::from_bytes(b"1\nnope\n3\n".to_vec(), FileFormat::Csv, schema);
        let chunks = file.batch_chunks();
        let err = file.scan_batches_range(&[0], false, 0, chunks, &mut |_, _| {});
        assert!(err.is_err());
        assert!(file.posmap().is_none());
    }

    #[test]
    fn reset_scan_state_forgets_maps_and_indexes() {
        let file = wide_csv_file(100);
        let chunks = file.batch_chunks();
        collect_batched(&file, &[0], &[(0, chunks)]);
        assert!(file.posmap().is_some());
        file.reset_scan_state();
        assert!(file.posmap().is_none());
        assert_eq!(file.known_record_count(), None);
        // Scans still work from scratch.
        let again = collect_batched(&file, &[0], &[(0, file.batch_chunks())]);
        assert_eq!(again.len(), 100);
    }

    #[test]
    fn empty_csv_batched_scan_is_empty_and_installs_empty_map() {
        let schema = Schema::new(vec![Field::required("a", DataType::Int)]);
        let file = RawFile::from_bytes(Vec::new(), FileFormat::Csv, schema);
        assert_eq!(file.batch_chunks(), 0);
        assert_eq!(file.record_count(), Some(0));
        let got = collect_batched(&file, &[0], &[(0, 0)]);
        assert!(got.is_empty());
    }

    #[test]
    fn nested_json_files_do_not_support_batched_scans() {
        assert!(!json_file().supports_batch_scan());
    }

    fn flat_json_file(rows: usize) -> RawFile {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new("s", DataType::Str),
        ]);
        let records: Vec<Value> = (0..rows as i64)
            .map(|i| {
                Value::Struct(vec![
                    if i % 5 == 0 {
                        Value::Null // written as an absent key
                    } else {
                        Value::Int(i)
                    },
                    Value::Float(i as f64 * 0.25),
                    Value::from(format!("s{}", i % 13)),
                ])
            })
            .collect();
        let bytes = json::write_json(&schema, &records);
        RawFile::from_bytes(bytes, FileFormat::Json, schema)
    }

    #[test]
    fn flat_json_batched_first_scan_matches_row_scan_and_installs_posmap() {
        let rows = 10_000; // several BATCH_ROWS chunks
        let batched_file = flat_json_file(rows);
        let row_file = flat_json_file(rows);
        assert!(batched_file.supports_batch_scan());
        let chunks = batched_file.batch_chunks();
        assert!(chunks > 2, "need a multi-chunk file, got {chunks}");
        assert!(batched_file.posmap().is_none());
        assert_eq!(batched_file.known_record_count(), Some(rows));

        let projection = [2usize, 0];
        let got = collect_batched(&batched_file, &projection, &[(0, chunks)]);
        let mut expected = Vec::new();
        row_file
            .scan_projected(&[true, false, true], &mut |id, row| {
                // Row scans emit in leaf order; reorder to projection.
                expected.push((id as u32, vec![row[1].clone(), row[0].clone()]));
            })
            .unwrap();
        assert_eq!(got, expected);

        // Coverage-complete batched scans install a record+value-offset
        // map whose record grid agrees with the row tokenizer's.
        let batched_map = batched_file.posmap().expect("posmap installed");
        let row_map = row_file.posmap().unwrap();
        assert_eq!(batched_map.record_count(), row_map.record_count());
        assert!(!batched_map.has_field_offsets());
        assert!(batched_map.has_json_value_offsets());
        for rec in [0, 1, rows / 2, rows - 1] {
            assert_eq!(batched_map.record_span(rec), row_map.record_span(rec));
        }
        // Every fifth record is written with key "a" absent; the capture
        // must record the sentinel, not a stale offset.
        assert_eq!(batched_map.json_value_offset(5, 0), None);
        assert!(batched_map.json_value_offset(6, 0).is_some());
        // Mapped batched re-scan (seeking through the value offsets)
        // agrees with the first scan.
        let again = collect_batched(&batched_file, &projection, &[(0, chunks)]);
        assert_eq!(again, got);
    }

    #[test]
    fn flat_json_mapped_rescan_handles_escapes_coercions_and_duplicates() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new("s", DataType::Str),
        ]);
        let bytes = concat!(
            r#"{"s":"he\"llo","a":1}"#,
            "\n",
            "{ \"b\" : 2.5 , \"a\" : 7 , \"s\" : \"x\" }\n",
            r#"{"junk":[1,{"s":"}"}],"a":true,"s":null}"#,
            "\n",
            r#"{"a":1,"a":2}"#,
            "\n",
            r#"{"s":"plain"}"#,
            "\n",
        )
        .as_bytes()
        .to_vec();
        let file = RawFile::from_bytes(bytes, FileFormat::Json, schema);
        assert!(file.supports_batch_scan());
        let chunks = file.batch_chunks();
        let projection = [0usize, 2];
        let first = collect_batched(&file, &projection, &[(0, chunks)]);
        let map = file.posmap().expect("capture installs the map");
        assert!(map.has_json_value_offsets());
        // The mapped seek parser must reproduce the tokenizer exactly:
        // escaped strings, whitespace after colons, bool→int coercion,
        // explicit nulls, absent keys, and duplicate keys (last wins).
        let mapped = collect_batched(&file, &projection, &[(0, chunks)]);
        assert_eq!(mapped, first);
        let rows: Vec<Vec<Value>> = mapped.into_iter().map(|(_, row)| row).collect();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::from("he\"llo")],
                vec![Value::Int(7), Value::from("x")],
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::Null],
                vec![Value::Null, Value::from("plain")],
            ]
        );
    }

    #[test]
    fn flat_json_row_built_map_falls_back_to_tokenizing_rescan() {
        let file = flat_json_file(3_000);
        // A row-path first scan installs a records-only map with no
        // value offsets...
        let mut rows = 0usize;
        file.scan_projected(&[true, true, true], &mut |_, _| rows += 1)
            .unwrap();
        assert_eq!(rows, 3_000);
        let map = file.posmap().expect("row scan installs the map");
        assert!(!map.has_json_value_offsets());
        // ...so mapped batched scans re-tokenize record spans and still
        // match a capture-built batched scan of the same data.
        let fresh = flat_json_file(3_000);
        let got = collect_batched(&file, &[2, 0], &[(0, file.batch_chunks())]);
        let expected = collect_batched(&fresh, &[2, 0], &[(0, fresh.batch_chunks())]);
        assert_eq!(got, expected);
    }

    #[test]
    fn flat_json_out_of_order_ranges_assemble_the_posmap() {
        let file = flat_json_file(9_500);
        let chunks = file.batch_chunks();
        assert!(chunks >= 3);
        collect_batched(&file, &[0, 1, 2], &[(chunks - 1, chunks), (0, 1)]);
        assert!(file.posmap().is_none(), "partial coverage: no posmap yet");
        collect_batched(&file, &[0, 1, 2], &[(1, chunks - 1)]);
        assert!(file.posmap().is_some(), "full coverage assembles the map");
        file.reset_scan_state();
        assert!(file.posmap().is_none());
        assert_eq!(
            collect_batched(&file, &[1], &[(0, file.batch_chunks())]).len(),
            9_500
        );
    }

    #[test]
    fn flat_json_batched_scan_reports_parse_errors() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let file = RawFile::from_bytes(
            b"{\"a\":1}\nnot json\n{\"a\":3}\n".to_vec(),
            FileFormat::Json,
            schema,
        );
        let chunks = file.batch_chunks();
        let err = file.scan_batches_range(&[0], false, 0, chunks, &mut |_, _| {});
        assert!(err.is_err());
        assert!(file.posmap().is_none());
    }

    #[test]
    fn empty_flat_json_batched_scan_installs_empty_records_map() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let file = RawFile::from_bytes(Vec::new(), FileFormat::Json, schema);
        assert_eq!(file.batch_chunks(), 0);
        assert_eq!(file.record_count(), Some(0));
        assert!(collect_batched(&file, &[0], &[(0, 0)]).is_empty());
    }

    #[test]
    fn transient_faults_are_retried_to_the_fault_free_result() {
        let clean = wide_csv_file(30_000);
        let faulty = wide_csv_file(30_000);
        // 50% transient rate per attempt over ~8 chunks: some chunk
        // faults, and with 10 attempts no chunk exhausts its retries
        // (deterministic — the plan is a pure function of
        // (seed, chunk, attempt)).
        faulty.set_fault_plan(Some(FaultPlan::new(42).transient(0.5)));
        faulty.set_retry_policy(RetryPolicy {
            max_attempts: 10,
            base_backoff: std::time::Duration::ZERO,
            max_backoff: std::time::Duration::ZERO,
        });
        let chunks = faulty.batch_chunks();
        let ctl = ScanCtl::new(None);
        let mut got = Vec::new();
        faulty
            .scan_batches_range_ctl(
                &[0, 1, 2],
                true,
                0,
                chunks,
                Some(&ctl),
                &mut |batch, sel| {
                    for &i in sel.as_slice() {
                        let i = i as usize;
                        got.push((
                            batch.record_ids[i],
                            batch.columns.iter().map(|c| c.value(i)).collect::<Vec<_>>(),
                        ));
                    }
                },
            )
            .expect("transient faults must be absorbed by retry");
        assert!(ctl.retries() > 0, "the seed must actually inject faults");
        let expected = collect_batched(&clean, &[0, 1, 2], &[(0, clean.batch_chunks())]);
        assert_eq!(got, expected, "retried scan must be fault-free-identical");
        // Retried captures must still assemble a correct posmap.
        assert!(faulty.posmap().is_some());
    }

    #[test]
    fn persistent_faults_surface_a_typed_io_error_and_record_into_ctl() {
        let file = wide_csv_file(10_000);
        file.set_fault_plan(Some(FaultPlan::new(7).persistent(1.0)));
        let chunks = file.batch_chunks();
        let ctl = ScanCtl::new(None);
        let err = file
            .scan_batches_range_ctl(&[0], false, 0, chunks, Some(&ctl), &mut |_, _| {})
            .unwrap_err();
        assert!(matches!(err, recache_types::Error::Io(_)), "got {err}");
        assert!(!err.is_transient());
        assert_eq!(ctl.first_failed_chunk(), Some(0));
        // Clearing the plan restores a fully working file.
        file.set_fault_plan(None);
        let again = collect_batched(&file, &[0], &[(0, chunks)]);
        assert_eq!(again.len(), 10_000);
    }

    #[test]
    fn cancelled_scan_returns_the_typed_error() {
        let file = wide_csv_file(10_000);
        let token = Arc::new(recache_types::CancelToken::new());
        token.cancel();
        let ctl = ScanCtl::new(Some(Arc::clone(&token)));
        let err = file
            .scan_batches_range_ctl(
                &[0],
                false,
                0,
                file.batch_chunks(),
                Some(&ctl),
                &mut |_, _| {},
            )
            .unwrap_err();
        assert!(matches!(err, recache_types::Error::Cancelled));
    }

    #[test]
    fn chunks_above_a_recorded_failure_are_skipped() {
        let file = wide_csv_file(10_000);
        let chunks = file.batch_chunks();
        assert!(chunks >= 3);
        let ctl = ScanCtl::new(None);
        ctl.record_failure(0, recache_types::Error::exec("peer failure"));
        let mut batches = 0usize;
        file.scan_batches_range_ctl(&[0], false, 1, chunks, Some(&ctl), &mut |_, _| {
            batches += 1;
        })
        .expect("skipped chunks are not errors");
        assert_eq!(batches, 0, "every chunk above the failure short-circuits");
    }

    #[test]
    fn row_scan_gate_faults_before_any_row_is_emitted() {
        let file = csv_file();
        file.set_fault_plan(Some(FaultPlan::new(3).persistent(1.0)));
        let mut rows = 0usize;
        let err = file
            .scan_projected(&[true, true], &mut |_, _| rows += 1)
            .unwrap_err();
        assert!(matches!(err, recache_types::Error::Io(_)));
        assert_eq!(rows, 0, "no partial emission before the fault");
        file.set_fault_plan(None);
        assert!(file.scan_projected(&[true, true], &mut |_, _| {}).is_ok());
    }
}
