//! Shared machinery of the *batched* raw-scan path, format-agnostic: the
//! SWAR record indexer that partitions a newline-delimited file into
//! [`BATCH_ROWS`]-record chunks before anything has been tokenized, and
//! the per-chunk capture-slab tracker that assembles a positional map
//! once every chunk has been scanned — in any order, from any thread.
//!
//! Both raw formats implement the same protocol on top of this module:
//!
//! * **CSV** chunks tokenize with `csv::tokenize_range_into` and submit a
//!   slab of per-record field offsets; full coverage concatenates the
//!   slabs (the layout has a fixed per-record stride) into a record+field
//!   map.
//! * **Flat JSON** chunks tokenize with `json_batch::tokenize_range_into`
//!   and submit a slab of per-record, per-schema-key *value* start
//!   offsets (stride = schema field count, `JSON_KEY_ABSENT` where a key
//!   is missing); full coverage concatenates the slabs into a
//!   record+value-offset map that later scans seek through.
//!
//! Keeping the chunk grid, coverage accounting and slab assembly here
//! means `RawFile` dispatches purely on format for the tokenize call and
//! the final map construction; the executor never sees a format at all.

use recache_layout::BATCH_ROWS;
use std::sync::Mutex;

/// SWAR byte-broadcast constants for the word-at-a-time byte scans.
const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// Marks every byte of `word` equal to `needle`: the classic SWAR
/// "has-zero-byte" trick on `word ^ broadcast(needle)`. The returned mask
/// has bit `8·j + 7` set iff byte `j` matches, so matches enumerate in
/// ascending position via `trailing_zeros() / 8` (the word was loaded
/// little-endian).
#[inline]
pub(crate) fn byte_eq_mask(word: u64, needle: u8) -> u64 {
    let x = word ^ (SWAR_LO * u64::from(needle));
    x.wrapping_sub(SWAR_LO) & !x & SWAR_HI
}

/// Record-start offsets of `bytes` (one newline scan, plus a final
/// total-length entry): the cheap half of a positional map, enough to
/// partition a batched first scan into fixed record windows before any
/// field or key has been tokenized. The scan runs word-at-a-time (SWAR),
/// so it costs a fraction of the tokenize/parse pass it enables. Offsets
/// agree exactly with the ones the row tokenizers produce — for CSV with
/// `csv::scan_build_map`, for line-delimited JSON with
/// `json::scan_build_map` (raw newlines never occur inside valid JSON
/// strings; they are escaped, so every newline byte is a record break in
/// both formats).
pub fn index_records(bytes: &[u8]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(bytes.len() / 32 + 2);
    if !bytes.is_empty() {
        offsets.push(0);
    }
    let mut i = 0usize;
    while i + 8 <= bytes.len() {
        let word = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte window"));
        let mut mask = byte_eq_mask(word, b'\n');
        while mask != 0 {
            let pos = i + (mask.trailing_zeros() / 8) as usize;
            if pos + 1 < bytes.len() {
                offsets.push((pos + 1) as u64);
            }
            mask &= mask - 1;
        }
        i += 8;
    }
    while i < bytes.len() {
        if bytes[i] == b'\n' && i + 1 < bytes.len() {
            offsets.push((i + 1) as u64);
        }
        i += 1;
    }
    offsets.push(bytes.len() as u64);
    offsets
}

/// First-scan state of a batched raw file: the record index partitioning
/// the file into [`BATCH_ROWS`]-record chunks, plus per-chunk capture
/// slabs. Each chunk's scan captures whatever its format needs for the
/// positional map (CSV: field offsets; JSON: per-key value offsets) and
/// submits it;
/// the submission that completes coverage gets the concatenated slabs
/// back and builds the map. Redundant re-scans of an already-filled
/// chunk are ignored, so racing scans of the same chunk stay idempotent.
pub struct RawBatchIndex {
    record_offsets: Vec<u64>,
    capture: Mutex<CaptureSlabs>,
}

struct CaptureSlabs {
    slabs: Vec<Option<Vec<u32>>>,
    filled: usize,
}

impl RawBatchIndex {
    pub fn new(record_offsets: Vec<u64>) -> Self {
        let n_records = record_offsets.len().saturating_sub(1);
        let n_chunks = n_records.div_ceil(BATCH_ROWS);
        RawBatchIndex {
            record_offsets,
            capture: Mutex::new(CaptureSlabs {
                slabs: vec![None; n_chunks],
                filled: 0,
            }),
        }
    }

    /// Record-start offsets plus the final total-length entry.
    pub fn record_offsets(&self) -> &[u64] {
        &self.record_offsets
    }

    pub fn n_records(&self) -> usize {
        self.record_offsets.len() - 1
    }

    pub fn n_chunks(&self) -> usize {
        self.n_records().div_ceil(BATCH_ROWS)
    }

    /// Whether this chunk's capture has already been submitted — a
    /// re-scan of a filled chunk may skip capture work entirely (its
    /// submission would be ignored anyway).
    pub fn chunk_filled(&self, chunk: usize) -> bool {
        // Poison recovery (here and in `submit_with`): the only panic
        // point inside the critical section is `on_complete`, which runs
        // after the slab/filled bookkeeping is fully updated — a
        // poisoned capture lock therefore always guards consistent
        // coverage state, and later scanners must keep completing chunks
        // rather than wedge the file for every future query.
        self.capture.lock().unwrap_or_else(|e| e.into_inner()).slabs[chunk].is_some()
    }

    /// Submits one chunk's capture slab. When this submission completes
    /// coverage, `on_complete` runs with the concatenated slabs (in
    /// chunk order) — exactly once per index, no matter how chunks were
    /// ordered across threads.
    ///
    /// `on_complete` executes **inside the capture critical section**,
    /// and that is load-bearing: every concurrent scanner of this file
    /// interacts with every chunk through this same lock (a submission
    /// or a [`RawBatchIndex::chunk_filled`] probe). Whichever scanner
    /// first fills the last-filled chunk runs the completion before
    /// releasing the lock, so any *other* scanner's interaction with
    /// that chunk — necessarily after the fill — is also after the
    /// completion's effects (e.g. the positional-map install). Running
    /// the completion after releasing the lock reopens a race where a
    /// racing session finishes its whole scan and proceeds to
    /// map-dependent work (cache materialization) before the map
    /// exists.
    pub fn submit_with(&self, chunk: usize, slab: Vec<u32>, on_complete: impl FnOnce(Vec<u32>)) {
        // See `chunk_filled` for why poison recovery is sound here.
        let mut capture = self.capture.lock().unwrap_or_else(|e| e.into_inner());
        if capture.slabs[chunk].is_some() {
            return;
        }
        capture.slabs[chunk] = Some(slab);
        capture.filled += 1;
        if capture.filled < capture.slabs.len() {
            return;
        }
        let total: usize = capture.slabs.iter().flatten().map(Vec::len).sum();
        let mut assembled = Vec::with_capacity(total);
        for slab in capture.slabs.iter_mut() {
            assembled.extend_from_slice(slab.as_deref().unwrap_or(&[]));
        }
        on_complete(assembled);
    }
}

impl std::fmt::Debug for RawBatchIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawBatchIndex")
            .field("records", &self.n_records())
            .field("chunks", &self.n_chunks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Observing `submit_with`'s completion after the lock is released —
    /// fine for a single-threaded test, exactly the race production
    /// callers must avoid (which is why this is not a method).
    fn submit(index: &RawBatchIndex, chunk: usize, slab: Vec<u32>) -> Option<Vec<u32>> {
        let mut out = None;
        index.submit_with(chunk, slab, |assembled| out = Some(assembled));
        out
    }

    #[test]
    fn index_records_splits_on_newlines() {
        assert_eq!(index_records(b"a\nbb\nccc\n"), vec![0, 2, 5, 9]);
        // No trailing newline: the last record ends at EOF.
        assert_eq!(index_records(b"a\nbb"), vec![0, 2, 4]);
        assert_eq!(index_records(b""), vec![0]);
        // A long tail exercises both the SWAR and the scalar loop.
        let long = "x".repeat(19) + "\n" + &"y".repeat(5);
        assert_eq!(index_records(long.as_bytes()), vec![0, 20, 25]);
    }

    #[test]
    fn submit_returns_assembled_slabs_on_full_coverage_only() {
        // Three records in one chunk is too small to see multi-chunk
        // behavior; fake a larger grid via BATCH_ROWS boundaries.
        let n = BATCH_ROWS * 2 + 5;
        let offsets: Vec<u64> = (0..=n as u64).collect();
        let index = RawBatchIndex::new(offsets);
        assert_eq!(index.n_chunks(), 3);
        assert!(!index.chunk_filled(1));
        assert!(submit(&index, 1, vec![10, 11]).is_none());
        assert!(index.chunk_filled(1));
        // Redundant re-submission is ignored.
        assert!(submit(&index, 1, vec![99]).is_none());
        assert!(submit(&index, 2, vec![20]).is_none());
        let assembled = submit(&index, 0, vec![0, 1]).expect("coverage complete");
        // Chunk order, not submission order.
        assert_eq!(assembled, vec![0, 1, 10, 11, 20]);
    }

    #[test]
    fn empty_file_has_no_chunks() {
        let index = RawBatchIndex::new(vec![0]);
        assert_eq!(index.n_records(), 0);
        assert_eq!(index.n_chunks(), 0);
    }

    /// A scanner that panics mid-scan (an injected fault, an assertion)
    /// abandons its remaining chunks but must not wedge the index: the
    /// chunks it did submit stay filled, and a later scanner completes
    /// coverage and triggers the completion — even when the panic
    /// happened *inside* a completion-adjacent critical section and
    /// poisoned the capture lock.
    #[test]
    fn panicking_scanner_leaves_index_recoverable() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicBool, Ordering};
        let index = RawBatchIndex::new((0..=(BATCH_ROWS * 3) as u64).collect());
        let done = AtomicBool::new(false);
        // First scanner fills chunk 0, then dies inside the capture
        // critical section while probing chunk 1 (poisons the lock).
        let result = catch_unwind(AssertUnwindSafe(|| {
            index.submit_with(0, vec![7], |_| {});
            index.submit_with(1, vec![8], |_| panic!("injected panic mid-scan"));
        }));
        // Chunk 1 was NOT the last chunk, so no completion ran and the
        // closure never fired; simulate the panic at the lock instead.
        assert!(result.is_ok());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = index.capture.lock().unwrap();
            panic!("injected panic while holding the capture lock");
        }));
        assert!(result.is_err());
        // A second scanner recovers the poisoned lock, sees chunks 0 and
        // 1 filled, submits the rest, and the completion still fires
        // with slabs assembled in chunk order.
        assert!(index.chunk_filled(0) && index.chunk_filled(1));
        index.submit_with(2, vec![9], |assembled| {
            assert_eq!(assembled, vec![7, 8, 9]);
            done.store(true, Ordering::SeqCst);
        });
        assert!(done.load(Ordering::SeqCst), "completion must still run");
    }

    /// The coverage-completion invariant behind the posmap install: any
    /// scanner that has interacted with every chunk (submission or
    /// `chunk_filled` probe — both through the capture lock) must
    /// observe the completion's effects, because the completion runs
    /// inside the critical section of the coverage-completing fill.
    #[test]
    fn completion_is_visible_to_every_finished_scanner() {
        use std::sync::atomic::{AtomicBool, Ordering};
        for _ in 0..50 {
            let index = RawBatchIndex::new((0..=(BATCH_ROWS * 3) as u64).collect());
            let done = AtomicBool::new(false);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for chunk in 0..index.n_chunks() {
                            if index.chunk_filled(chunk) {
                                continue;
                            }
                            index.submit_with(chunk, Vec::new(), |_| {
                                done.store(true, Ordering::SeqCst);
                            });
                        }
                        assert!(
                            done.load(Ordering::SeqCst),
                            "a scanner finished all chunks before the completion ran"
                        );
                    });
                }
            });
        }
    }
}
