//! Yelp-shaped dataset generator (business / user / review JSON).
//!
//! The paper's third workload uses Yelp's open dataset. Its defining
//! property for ReCache is that records carry *larger collections* on
//! average than the spam data (friends lists, categories, check-ins) —
//! flattening into a relational columnar cache multiplies rows heavily,
//! which drives the Fig. 15b result (columnar layouts degrade badly).

use super::pick;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recache_types::{DataType, Field, Schema, Value};

const CITIES: [&str; 8] = [
    "Las Vegas",
    "Phoenix",
    "Toronto",
    "Charlotte",
    "Pittsburgh",
    "Montreal",
    "Madison",
    "Tempe",
];
const CATEGORIES: [&str; 12] = [
    "Restaurants",
    "Bars",
    "Coffee",
    "Pizza",
    "Mexican",
    "Chinese",
    "Nightlife",
    "Shopping",
    "Auto",
    "Fitness",
    "Hotels",
    "Breakfast",
];

pub fn business_schema() -> Schema {
    Schema::new(vec![
        Field::required("business_id", DataType::Int),
        Field::required("name", DataType::Str),
        Field::required("city", DataType::Str),
        Field::required("stars", DataType::Float),
        Field::required("review_count", DataType::Int),
        Field::required("is_open", DataType::Bool),
        Field::new("categories", DataType::List(Box::new(DataType::Str))),
        Field::new(
            "attributes",
            DataType::Struct(vec![
                Field::new("price_range", DataType::Int),
                Field::new("wifi", DataType::Bool),
                Field::new("parking", DataType::Bool),
                Field::new("noise", DataType::Int),
            ]),
        ),
        Field::new("checkins", DataType::List(Box::new(DataType::Int))),
    ])
}

pub fn user_schema() -> Schema {
    Schema::new(vec![
        Field::required("user_id", DataType::Int),
        Field::required("review_count", DataType::Int),
        Field::required("useful", DataType::Int),
        Field::required("funny", DataType::Int),
        Field::required("cool", DataType::Int),
        Field::required("average_stars", DataType::Float),
        Field::new("friends", DataType::List(Box::new(DataType::Int))),
        Field::new("elite", DataType::List(Box::new(DataType::Int))),
    ])
}

pub fn review_schema() -> Schema {
    Schema::new(vec![
        Field::required("review_id", DataType::Int),
        Field::required("user_id", DataType::Int),
        Field::required("business_id", DataType::Int),
        Field::required("stars", DataType::Int),
        Field::required("useful", DataType::Int),
        Field::required("funny", DataType::Int),
        Field::required("cool", DataType::Int),
        Field::required("text_len", DataType::Int),
        Field::new(
            "votes",
            DataType::Struct(vec![
                Field::required("useful", DataType::Int),
                Field::required("funny", DataType::Int),
                Field::required("cool", DataType::Int),
            ]),
        ),
        Field::new("tags", DataType::List(Box::new(DataType::Str))),
    ])
}

/// Businesses: ~7 categories and ~12 check-in buckets per record.
pub fn gen_business(n: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0b15_1e55);
    (0..n as i64)
        .map(|id| {
            let n_cat = rng.random_range(2..=12);
            let n_checkins = rng.random_range(4..=20);
            Value::Struct(vec![
                Value::Int(id),
                Value::Str(format!("business-{id}")),
                Value::Str(pick(&mut rng, &CITIES).to_owned()),
                Value::Float((rng.random_range(2..=10) as f64) / 2.0),
                Value::Int(rng.random_range(1..=2_000)),
                Value::Bool(rng.random::<f64>() < 0.85),
                Value::List(
                    (0..n_cat)
                        .map(|_| Value::Str(pick(&mut rng, &CATEGORIES).to_owned()))
                        .collect(),
                ),
                Value::Struct(vec![
                    Value::Int(rng.random_range(1..=4)),
                    Value::Bool(rng.random::<f64>() < 0.6),
                    Value::Bool(rng.random::<f64>() < 0.5),
                    Value::Int(rng.random_range(0..4)),
                ]),
                Value::List(
                    (0..n_checkins)
                        .map(|_| Value::Int(rng.random_range(0..500)))
                        .collect(),
                ),
            ])
        })
        .collect()
}

/// Users: friends lists average ~20 entries — the largest collections in
/// the evaluation.
pub fn gen_user(n: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0055_e4aa);
    (0..n as i64)
        .map(|id| {
            let n_friends = rng.random_range(0..=40);
            let n_elite = rng.random_range(0..=5);
            Value::Struct(vec![
                Value::Int(id),
                Value::Int(rng.random_range(0..=3_000)),
                Value::Int(rng.random_range(0..=10_000)),
                Value::Int(rng.random_range(0..=5_000)),
                Value::Int(rng.random_range(0..=5_000)),
                Value::Float(1.0 + rng.random::<f64>() * 4.0),
                Value::List(
                    (0..n_friends)
                        .map(|_| Value::Int(rng.random_range(0..n.max(2) as i64)))
                        .collect(),
                ),
                Value::List((0..n_elite).map(|i| Value::Int(2010 + i)).collect()),
            ])
        })
        .collect()
}

/// Reviews reference user and business ids so joins have matches.
pub fn gen_review(n: usize, users: usize, businesses: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0e01_1301);
    (0..n as i64)
        .map(|id| {
            let n_tags = rng.random_range(0..=4);
            Value::Struct(vec![
                Value::Int(id),
                Value::Int(rng.random_range(0..users.max(1) as i64)),
                Value::Int(rng.random_range(0..businesses.max(1) as i64)),
                Value::Int(rng.random_range(1..=5)),
                Value::Int(rng.random_range(0..=100)),
                Value::Int(rng.random_range(0..=50)),
                Value::Int(rng.random_range(0..=50)),
                Value::Int(rng.random_range(20..=4_000)),
                Value::Struct(vec![
                    Value::Int(rng.random_range(0..=30)),
                    Value::Int(rng.random_range(0..=20)),
                    Value::Int(rng.random_range(0..=20)),
                ]),
                Value::List(
                    (0..n_tags)
                        .map(|_| Value::Str(pick(&mut rng, &CATEGORIES).to_owned()))
                        .collect(),
                ),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::flatten_record;

    #[test]
    fn collections_are_larger_on_average_than_spam() {
        let businesses = gen_business(100, 1);
        let schema = business_schema();
        let avg_rows: f64 = businesses
            .iter()
            .map(|b| flatten_record(&schema, b).len() as f64)
            .sum::<f64>()
            / 100.0;
        // categories × checkins multiply: average well above the spam
        // dataset's ~2-3 rows per record.
        assert!(avg_rows > 20.0, "avg flattened rows {avg_rows}");
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(gen_business(10, 2), gen_business(10, 2));
        assert_eq!(gen_user(10, 2), gen_user(10, 2));
        assert_eq!(gen_review(10, 5, 5, 2), gen_review(10, 5, 5, 2));
    }

    #[test]
    fn review_foreign_keys_in_range() {
        let reviews = gen_review(50, 7, 9, 3);
        for r in &reviews {
            if let Value::Struct(ch) = r {
                let user = ch[1].as_i64().unwrap();
                let business = ch[2].as_i64().unwrap();
                assert!((0..7).contains(&user));
                assert!((0..9).contains(&business));
            }
        }
    }

    #[test]
    fn schemas_flatten_all_records() {
        for (schema, records) in [
            (business_schema(), gen_business(20, 4)),
            (user_schema(), gen_user(20, 4)),
            (review_schema(), gen_review(20, 10, 10, 4)),
        ] {
            for r in &records {
                assert!(!flatten_record(&schema, r).is_empty());
            }
        }
    }
}
