//! TPC-H-shaped data generator.
//!
//! Produces the five tables the paper's SPJ workload touches (`lineitem`,
//! `orders`, `customer`, `partsupp`, `part`) as flat rows for CSV output,
//! plus the `orderLineitems` nested JSON dataset of §4.1: one JSON object
//! per order with an embedded array of its lineitems (~4 on average, the
//! TPC-H lineitem:order ratio).
//!
//! Scale factor semantics follow TPC-H: `sf = 1.0` means 1.5M orders / 6M
//! lineitems. The evaluation uses much smaller factors so the full
//! benchmark suite finishes quickly; shapes are preserved because every
//! distribution is scale-free.

use super::money;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recache_types::{DataType, Field, Schema, Value};

/// Base cardinalities at SF 1.
const ORDERS_PER_SF: f64 = 1_500_000.0;
const CUSTOMERS_PER_SF: f64 = 150_000.0;
const PARTS_PER_SF: f64 = 200_000.0;
const PARTSUPPS_PER_SF: f64 = 800_000.0;

fn scaled(base: f64, sf: f64) -> usize {
    ((base * sf).round() as usize).max(1)
}

/// Number of orders at a scale factor.
pub fn order_count(sf: f64) -> usize {
    scaled(ORDERS_PER_SF, sf)
}

pub fn customer_count(sf: f64) -> usize {
    scaled(CUSTOMERS_PER_SF, sf)
}

pub fn part_count(sf: f64) -> usize {
    scaled(PARTS_PER_SF, sf)
}

pub fn partsupp_count(sf: f64) -> usize {
    scaled(PARTSUPPS_PER_SF, sf)
}

/// `lineitem`: 16 columns, numerics dominate (dates are day numbers).
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Field::required("l_orderkey", DataType::Int),
        Field::required("l_partkey", DataType::Int),
        Field::required("l_suppkey", DataType::Int),
        Field::required("l_linenumber", DataType::Int),
        Field::required("l_quantity", DataType::Int),
        Field::required("l_extendedprice", DataType::Float),
        Field::required("l_discount", DataType::Float),
        Field::required("l_tax", DataType::Float),
        Field::required("l_returnflag", DataType::Int),
        Field::required("l_linestatus", DataType::Int),
        Field::required("l_shipdate", DataType::Int),
        Field::required("l_commitdate", DataType::Int),
        Field::required("l_receiptdate", DataType::Int),
        Field::required("l_shipinstruct", DataType::Int),
        Field::required("l_shipmode", DataType::Int),
        Field::required("l_comment", DataType::Str),
    ])
}

pub fn orders_schema() -> Schema {
    Schema::new(vec![
        Field::required("o_orderkey", DataType::Int),
        Field::required("o_custkey", DataType::Int),
        Field::required("o_orderstatus", DataType::Int),
        Field::required("o_totalprice", DataType::Float),
        Field::required("o_orderdate", DataType::Int),
        Field::required("o_orderpriority", DataType::Int),
        Field::required("o_clerk", DataType::Int),
        Field::required("o_shippriority", DataType::Int),
        Field::required("o_comment", DataType::Str),
    ])
}

pub fn customer_schema() -> Schema {
    Schema::new(vec![
        Field::required("c_custkey", DataType::Int),
        Field::required("c_name", DataType::Str),
        Field::required("c_address", DataType::Str),
        Field::required("c_nationkey", DataType::Int),
        Field::required("c_phone", DataType::Str),
        Field::required("c_acctbal", DataType::Float),
        Field::required("c_mktsegment", DataType::Int),
        Field::required("c_comment", DataType::Str),
    ])
}

pub fn part_schema() -> Schema {
    Schema::new(vec![
        Field::required("p_partkey", DataType::Int),
        Field::required("p_name", DataType::Str),
        Field::required("p_mfgr", DataType::Int),
        Field::required("p_brand", DataType::Int),
        Field::required("p_type", DataType::Int),
        Field::required("p_size", DataType::Int),
        Field::required("p_container", DataType::Int),
        Field::required("p_retailprice", DataType::Float),
        Field::required("p_comment", DataType::Str),
    ])
}

pub fn partsupp_schema() -> Schema {
    Schema::new(vec![
        Field::required("ps_partkey", DataType::Int),
        Field::required("ps_suppkey", DataType::Int),
        Field::required("ps_availqty", DataType::Int),
        Field::required("ps_supplycost", DataType::Float),
        Field::required("ps_comment", DataType::Str),
    ])
}

/// `orderLineitems`: each order with the embedded array of its lineitems
/// (the lineitem fields drop `l_orderkey`, which the nesting encodes).
pub fn order_lineitems_schema() -> Schema {
    let mut lineitem_fields: Vec<Field> = lineitem_schema().fields().to_vec();
    lineitem_fields.remove(0); // l_orderkey is implied by nesting
    let mut fields: Vec<Field> = orders_schema().fields().to_vec();
    fields.push(Field::new(
        "lineitems",
        DataType::List(Box::new(DataType::Struct(lineitem_fields))),
    ));
    Schema::new(fields)
}

fn comment(rng: &mut StdRng) -> Value {
    const WORDS: [&str; 8] = [
        "carefully",
        "quickly",
        "final",
        "pending",
        "ironic",
        "bold",
        "even",
        "slyly",
    ];
    let a = WORDS[rng.random_range(0..WORDS.len())];
    let b = WORDS[rng.random_range(0..WORDS.len())];
    Value::Str(format!("{a} {b} requests"))
}

fn gen_lineitem_row(rng: &mut StdRng, orderkey: i64, linenumber: i64, parts: i64) -> Vec<Value> {
    let quantity = rng.random_range(1..=50i64);
    let price_per_unit = 900.0 + rng.random::<f64>() * 100_000.0 / 50.0;
    vec![
        Value::Int(orderkey),
        Value::Int(rng.random_range(1..=parts)),
        Value::Int(rng.random_range(1..=10_000i64)),
        Value::Int(linenumber),
        Value::Int(quantity),
        Value::Float(money(quantity as f64 * price_per_unit / 10.0)),
        Value::Float(money(rng.random::<f64>() * 0.10)),
        Value::Float(money(rng.random::<f64>() * 0.08)),
        Value::Int(rng.random_range(0..3)),
        Value::Int(rng.random_range(0..2)),
        Value::Int(rng.random_range(8_000..11_000)),
        Value::Int(rng.random_range(8_000..11_000)),
        Value::Int(rng.random_range(8_000..11_000)),
        Value::Int(rng.random_range(0..4)),
        Value::Int(rng.random_range(0..7)),
        comment(rng),
    ]
}

/// Generates `orders` and `lineitem` together so the 1:N relationship is
/// consistent: each order owns 1–7 lineitems (avg 4).
pub fn gen_orders_and_lineitems(sf: f64, seed: u64) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let orders_n = order_count(sf);
    let customers_n = customer_count(sf) as i64;
    let parts_n = part_count(sf) as i64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0071_0c4a);
    let mut orders = Vec::with_capacity(orders_n);
    let mut lineitems = Vec::with_capacity(orders_n * 4);
    for orderkey in 1..=orders_n as i64 {
        let n_items = rng.random_range(1..=7i64);
        let mut total = 0.0;
        let item_start = lineitems.len();
        for line in 1..=n_items {
            let row = gen_lineitem_row(&mut rng, orderkey, line, parts_n);
            total += row[5].as_f64().expect("price");
            lineitems.push(row);
        }
        let _ = item_start;
        orders.push(vec![
            Value::Int(orderkey),
            Value::Int(rng.random_range(1..=customers_n)),
            Value::Int(rng.random_range(0..3)),
            Value::Float(money(total)),
            Value::Int(rng.random_range(8_000..11_000)),
            Value::Int(rng.random_range(1..=5)),
            Value::Int(rng.random_range(1..=1000)),
            Value::Int(0),
            comment(&mut rng),
        ]);
    }
    (orders, lineitems)
}

pub fn gen_customer(sf: f64, seed: u64) -> Vec<Vec<Value>> {
    const SEGMENTS: i64 = 5;
    let n = customer_count(sf);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00c5_57e3);
    (1..=n as i64)
        .map(|key| {
            vec![
                Value::Int(key),
                Value::Str(format!("Customer#{key:09}")),
                Value::Str(format!("addr-{}", rng.random_range(0..100_000))),
                Value::Int(rng.random_range(0..25)),
                Value::Str(format!("{:02}-{:07}", rng.random_range(10..35), key)),
                Value::Float(money(rng.random::<f64>() * 11_000.0 - 1_000.0)),
                Value::Int(rng.random_range(0..SEGMENTS)),
                comment(&mut rng),
            ]
        })
        .collect()
}

pub fn gen_part(sf: f64, seed: u64) -> Vec<Vec<Value>> {
    let n = part_count(sf);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00aa_b001);
    (1..=n as i64)
        .map(|key| {
            vec![
                Value::Int(key),
                Value::Str(format!("part {key}")),
                Value::Int(rng.random_range(1..=5)),
                Value::Int(rng.random_range(1..=25)),
                Value::Int(rng.random_range(0..150)),
                Value::Int(rng.random_range(1..=50)),
                Value::Int(rng.random_range(0..40)),
                Value::Float(money(
                    900.0 + (key % 1000) as f64 + rng.random::<f64>() * 100.0,
                )),
                comment(&mut rng),
            ]
        })
        .collect()
}

pub fn gen_partsupp(sf: f64, seed: u64) -> Vec<Vec<Value>> {
    let n = partsupp_count(sf);
    let parts_n = part_count(sf) as i64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0057_7155);
    (0..n)
        .map(|i| {
            vec![
                Value::Int((i as i64 % parts_n) + 1),
                Value::Int(rng.random_range(1..=10_000i64)),
                Value::Int(rng.random_range(1..=9_999)),
                Value::Float(money(rng.random::<f64>() * 1_000.0)),
                comment(&mut rng),
            ]
        })
        .collect()
}

/// Builds the nested `orderLineitems` records from consistent orders and
/// lineitems (as [`gen_orders_and_lineitems`] produces).
pub fn gen_order_lineitems(sf: f64, seed: u64) -> Vec<Value> {
    let (orders, lineitems) = gen_orders_and_lineitems(sf, seed);
    let mut by_order: Vec<Vec<Value>> = vec![Vec::new(); orders.len() + 1];
    for row in lineitems {
        let orderkey = row[0].as_i64().expect("orderkey") as usize;
        // Drop l_orderkey (index 0): the nesting encodes it.
        by_order[orderkey].push(Value::Struct(row.into_iter().skip(1).collect()));
    }
    orders
        .into_iter()
        .map(|order| {
            let orderkey = order[0].as_i64().expect("orderkey") as usize;
            let mut children = order;
            children.push(Value::List(std::mem::take(&mut by_order[orderkey])));
            Value::Struct(children)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::flatten_record;

    #[test]
    fn cardinalities_scale() {
        assert_eq!(order_count(1.0), 1_500_000);
        assert_eq!(order_count(0.0001), 150);
        assert_eq!(customer_count(0.001), 150);
        assert!(part_count(1e-9) >= 1);
    }

    #[test]
    fn lineitem_order_ratio_is_about_four() {
        let (orders, lineitems) = gen_orders_and_lineitems(0.0005, 42);
        let ratio = lineitems.len() as f64 / orders.len() as f64;
        assert!((3.5..=4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_orders_and_lineitems(0.0001, 7);
        let b = gen_orders_and_lineitems(0.0001, 7);
        assert_eq!(a, b);
        let c = gen_orders_and_lineitems(0.0001, 8);
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn rows_match_schemas() {
        let (orders, lineitems) = gen_orders_and_lineitems(0.0001, 1);
        assert_eq!(orders[0].len(), orders_schema().len());
        assert_eq!(lineitems[0].len(), lineitem_schema().len());
        assert_eq!(gen_customer(0.0001, 1)[0].len(), customer_schema().len());
        assert_eq!(gen_part(0.0001, 1)[0].len(), part_schema().len());
        assert_eq!(gen_partsupp(0.0001, 1)[0].len(), partsupp_schema().len());
    }

    #[test]
    fn order_lineitems_nesting_is_consistent() {
        let sf = 0.0002;
        let records = gen_order_lineitems(sf, 9);
        let (orders, lineitems) = gen_orders_and_lineitems(sf, 9);
        assert_eq!(records.len(), orders.len());
        let schema = order_lineitems_schema();
        // Flattened row count equals the lineitem count (every order has
        // at least one lineitem).
        let total: usize = records
            .iter()
            .map(|r| flatten_record(&schema, r).len())
            .sum();
        assert_eq!(total, lineitems.len());
    }

    #[test]
    fn order_lineitems_leaves_split_nested_and_flat() {
        let schema = order_lineitems_schema();
        let leaves = schema.leaves();
        let nested = leaves.iter().filter(|l| l.is_nested()).count();
        let flat = leaves.len() - nested;
        assert_eq!(flat, 9); // order fields
        assert_eq!(nested, 15); // lineitem fields minus l_orderkey
    }

    #[test]
    fn quantities_are_in_tpch_range() {
        let (_, lineitems) = gen_orders_and_lineitems(0.0001, 3);
        for row in &lineitems {
            let q = row[4].as_i64().unwrap();
            assert!((1..=50).contains(&q));
            let discount = row[6].as_f64().unwrap();
            assert!((0.0..=0.10).contains(&discount));
        }
    }
}
