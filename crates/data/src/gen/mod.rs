//! Deterministic dataset generators for the ReCache evaluation.
//!
//! Every generator takes an explicit seed and is reproducible
//! bit-for-bit. The datasets mirror the paper's three workloads:
//!
//! * [`tpch`] — TPC-H-shaped relational tables (CSV) plus the
//!   `orderLineitems` nested JSON file (orders with an embedded array of
//!   ~4 lineitems, as in §4.1),
//! * [`spam`] — a Symantec-like spam-log dataset: heterogeneous JSON with
//!   flat/nested/optional fields and a companion CSV summary file,
//! * [`yelp`] — Yelp-shaped business/user/review JSON with larger average
//!   collection cardinalities (the property driving Fig. 15b),
//! * [`nested`] — synthetic nested records with parameterized list
//!   cardinality for the layout microbenchmarks (Figs. 5–6).

pub mod nested;
pub mod spam;
pub mod tpch;
pub mod yelp;

use rand::rngs::StdRng;
use rand::Rng;

/// Picks one item from a pool (shared helper for string-pool columns).
pub(crate) fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

/// Rounds a float to two decimals (price-like columns).
pub(crate) fn money(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}
