//! Synthetic nested data with parameterized list cardinality.
//!
//! §4.1 of the paper studies how Parquet-style and relational columnar
//! cache layouts behave as the nested array attached to each record grows
//! (Figs. 5–6). This generator produces records shaped like
//! `orderLineitems` — a few flat fields plus a list of small structs —
//! where the list length is an explicit parameter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recache_types::{DataType, Field, Schema, Value};

/// `{key int, val float, group int, items: [{a int, b float, c int}]}`
pub fn synthetic_nested_schema() -> Schema {
    Schema::new(vec![
        Field::required("key", DataType::Int),
        Field::required("val", DataType::Float),
        Field::required("group", DataType::Int),
        Field::new(
            "items",
            DataType::List(Box::new(DataType::Struct(vec![
                Field::required("a", DataType::Int),
                Field::required("b", DataType::Float),
                Field::required("c", DataType::Int),
            ]))),
        ),
    ])
}

/// Generates `records` records, each with exactly `cardinality` list
/// elements (0 produces empty lists), values drawn uniformly.
pub fn gen_synthetic_nested(records: usize, cardinality: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0ae5_7ed0);
    (0..records as i64)
        .map(|key| {
            Value::Struct(vec![
                Value::Int(key),
                Value::Float(rng.random::<f64>() * 1_000.0),
                Value::Int(rng.random_range(0..100)),
                Value::List(
                    (0..cardinality)
                        .map(|_| {
                            Value::Struct(vec![
                                Value::Int(rng.random_range(0..1_000_000)),
                                Value::Float(rng.random::<f64>() * 100.0),
                                Value::Int(rng.random_range(0..1_000)),
                            ])
                        })
                        .collect(),
                ),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::flatten_record;

    #[test]
    fn cardinality_controls_flattened_rows() {
        let schema = synthetic_nested_schema();
        for cardinality in [0usize, 1, 5, 20] {
            let records = gen_synthetic_nested(10, cardinality, 3);
            let rows: usize = records
                .iter()
                .map(|r| flatten_record(&schema, r).len())
                .sum();
            // cardinality 0 still yields one (null-padded) row per record.
            let expected = 10 * cardinality.max(1);
            assert_eq!(rows, expected, "cardinality {cardinality}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(gen_synthetic_nested(5, 3, 9), gen_synthetic_nested(5, 3, 9));
        assert_ne!(
            gen_synthetic_nested(5, 3, 9),
            gen_synthetic_nested(5, 3, 10)
        );
    }
}
