//! Symantec-like spam-log generator.
//!
//! The paper's second workload is a proprietary Symantec dataset of spam
//! e-mail logs: JSON objects with (i) numeric and variable-length fields,
//! (ii) flat and nested entries of various depths, and (iii) fields that
//! exist only in a subset of objects — plus CSV files produced by the
//! data-mining engine (per-email identifiers, summary info, classes).
//! This generator reproduces exactly those axes synthetically.

use super::pick;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recache_types::{DataType, Field, Schema, Value};

const LANGS: [&str; 8] = ["en", "ru", "zh", "es", "de", "pt", "fr", "ja"];
const CONTENT_TYPES: [&str; 5] = [
    "text/plain",
    "text/html",
    "multipart/mixed",
    "multipart/alternative",
    "image/png",
];
const COUNTRIES: [&str; 10] = ["US", "CN", "RU", "BR", "IN", "VN", "DE", "UA", "NG", "KR"];
const ATTACH_KINDS: [&str; 5] = ["zip", "pdf", "exe", "doc", "js"];

/// JSON spam-log schema: flat numerics/strings, a nested `origin` struct,
/// repeated `urls`, and *optional* `attachments` / `headers` subtrees.
pub fn spam_json_schema() -> Schema {
    Schema::new(vec![
        Field::required("id", DataType::Int),
        Field::required("ts", DataType::Int),
        Field::required("size", DataType::Int),
        Field::required("spam_score", DataType::Float),
        Field::required("lang", DataType::Str),
        Field::required("content_type", DataType::Str),
        Field::new(
            "origin",
            DataType::Struct(vec![
                Field::required("ip", DataType::Str),
                Field::required("country", DataType::Str),
                Field::required("asn", DataType::Int),
            ]),
        ),
        Field::new(
            "urls",
            DataType::List(Box::new(DataType::Struct(vec![
                Field::required("host", DataType::Str),
                Field::required("path_len", DataType::Int),
                Field::required("score", DataType::Float),
            ]))),
        ),
        Field::new(
            "attachments",
            DataType::List(Box::new(DataType::Struct(vec![
                Field::required("kind", DataType::Str),
                Field::required("bytes", DataType::Int),
                Field::required("entropy", DataType::Float),
            ]))),
        ),
        Field::new(
            "headers",
            DataType::Struct(vec![
                Field::required("depth", DataType::Int),
                Field::required("received", DataType::Int),
                Field::new("hops", DataType::List(Box::new(DataType::Int))),
            ]),
        ),
    ])
}

/// Generates `n` spam-log JSON records.
pub fn gen_spam_json(n: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5134_a11d);
    (0..n as i64).map(|id| gen_record(&mut rng, id)).collect()
}

fn gen_record(rng: &mut StdRng, id: i64) -> Value {
    let n_urls = rng.random_range(0..=6);
    let urls = Value::List(
        (0..n_urls)
            .map(|_| {
                Value::Struct(vec![
                    Value::Str(format!("host{}.example", rng.random_range(0..5_000))),
                    Value::Int(rng.random_range(1..=120)),
                    Value::Float(rng.random::<f64>()),
                ])
            })
            .collect(),
    );
    // Optional: attachments present in ~40% of records.
    let attachments = if rng.random::<f64>() < 0.4 {
        let n = rng.random_range(1..=3);
        Value::List(
            (0..n)
                .map(|_| {
                    Value::Struct(vec![
                        Value::Str(pick(rng, &ATTACH_KINDS).to_owned()),
                        Value::Int(rng.random_range(256..2_000_000)),
                        Value::Float(rng.random::<f64>() * 8.0),
                    ])
                })
                .collect(),
        )
    } else {
        Value::Null
    };
    // Optional: headers present in ~60% of records.
    let headers = if rng.random::<f64>() < 0.6 {
        let hops = rng.random_range(1..=6);
        Value::Struct(vec![
            Value::Int(rng.random_range(1..=10)),
            Value::Int(hops),
            Value::List(
                (0..hops)
                    .map(|_| Value::Int(rng.random_range(0..86_400)))
                    .collect(),
            ),
        ])
    } else {
        Value::Null
    };
    Value::Struct(vec![
        Value::Int(id),
        Value::Int(1_400_000_000 + rng.random_range(0..100_000_000)),
        Value::Int(rng.random_range(200..200_000)),
        Value::Float(rng.random::<f64>() * 10.0),
        Value::Str(pick(rng, &LANGS).to_owned()),
        Value::Str(pick(rng, &CONTENT_TYPES).to_owned()),
        Value::Struct(vec![
            Value::Str(format!(
                "{}.{}.{}.{}",
                rng.random_range(1..255),
                rng.random_range(0..255),
                rng.random_range(0..255),
                rng.random_range(1..255)
            )),
            Value::Str(pick(rng, &COUNTRIES).to_owned()),
            Value::Int(rng.random_range(1_000..66_000)),
        ]),
        urls,
        attachments,
        headers,
    ])
}

/// Companion CSV schema: the output of the (simulated) mining engine —
/// an identifier, summary counters and class assignments, all numeric.
pub fn spam_csv_schema() -> Schema {
    Schema::new(vec![
        Field::required("id", DataType::Int),
        Field::required("class", DataType::Int),
        Field::required("cluster", DataType::Int),
        Field::required("token_count", DataType::Int),
        Field::required("link_count", DataType::Int),
        Field::required("img_count", DataType::Int),
        Field::required("score_body", DataType::Float),
        Field::required("score_subject", DataType::Float),
        Field::required("score_origin", DataType::Float),
        Field::required("confidence", DataType::Float),
    ])
}

/// Generates `n` summary CSV rows keyed like the JSON records, so
/// JSON-CSV joins on `id` have matches.
pub fn gen_spam_csv(n: usize, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0c5f_77aa);
    (0..n as i64)
        .map(|id| {
            vec![
                Value::Int(id),
                Value::Int(rng.random_range(0..12)),
                Value::Int(rng.random_range(0..400)),
                Value::Int(rng.random_range(5..4_000)),
                Value::Int(rng.random_range(0..40)),
                Value::Int(rng.random_range(0..12)),
                Value::Float(rng.random::<f64>() * 10.0),
                Value::Float(rng.random::<f64>() * 10.0),
                Value::Float(rng.random::<f64>() * 10.0),
                Value::Float(rng.random::<f64>()),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::write_json;
    use recache_types::flatten_record;

    #[test]
    fn records_match_schema_and_are_deterministic() {
        let a = gen_spam_json(50, 11);
        let b = gen_spam_json(50, 11);
        assert_eq!(a, b);
        let schema = spam_json_schema();
        for r in &a {
            // Flattening must succeed for every record shape.
            let rows = flatten_record(&schema, r);
            assert!(!rows.is_empty());
        }
    }

    #[test]
    fn optional_fields_present_in_subset() {
        let records = gen_spam_json(400, 5);
        let with_attach = records
            .iter()
            .filter(|r| match r {
                Value::Struct(ch) => !ch[8].is_null(),
                _ => false,
            })
            .count();
        let with_headers = records
            .iter()
            .filter(|r| match r {
                Value::Struct(ch) => !ch[9].is_null(),
                _ => false,
            })
            .count();
        // ~40% and ~60% with slack.
        assert!(
            (100..=220).contains(&with_attach),
            "attachments: {with_attach}"
        );
        assert!(
            (180..=300).contains(&with_headers),
            "headers: {with_headers}"
        );
    }

    #[test]
    fn json_serialization_round_trips() {
        let schema = spam_json_schema();
        let records = gen_spam_json(20, 3);
        let bytes = write_json(&schema, &records);
        let mut parsed = Vec::new();
        crate::json::scan_build_map(&bytes, &schema, None, |_, v| {
            parsed.push(v);
            Ok(())
        })
        .unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn csv_rows_match_schema() {
        let rows = gen_spam_csv(30, 2);
        assert_eq!(rows.len(), 30);
        assert_eq!(rows[0].len(), spam_csv_schema().len());
        // ids align with JSON ids
        assert_eq!(rows[7][0], Value::Int(7));
    }

    #[test]
    fn schema_has_nested_and_flat_leaves() {
        let schema = spam_json_schema();
        let leaves = schema.leaves();
        assert!(leaves.iter().any(|l| l.is_nested()));
        assert!(leaves.iter().any(|l| !l.is_nested()));
        // origin.* is flat (struct, not list) — depth without repetition.
        let origin_ip = leaves
            .iter()
            .find(|l| l.path.to_string() == "origin.ip")
            .unwrap();
        assert_eq!(origin_ip.max_rep, 0);
        let hops = leaves
            .iter()
            .find(|l| l.path.to_string() == "headers.hops")
            .unwrap();
        assert_eq!(hops.max_rep, 1);
    }
}
