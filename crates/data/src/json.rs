//! From-scratch line-delimited JSON reader/writer.
//!
//! The reader is *schema-directed*: it parses each object against the
//! expected [`Schema`], skipping unknown keys and — when given a top-level
//! access bitmap — skipping the byte ranges of unaccessed fields without
//! materializing them. Skipping a large nested array is dramatically
//! cheaper than parsing it, which is exactly the asymmetry ReCache's cost
//! model reacts to.

use crate::posmap::PositionalMap;
use recache_types::{DataType, Error, Field, Result, Schema, Value};

/// Serializes records (struct values matching `schema`) into
/// line-delimited JSON. `Null` fields are omitted, as in real-world
/// heterogeneous JSON where optional keys are absent.
pub fn write_json(schema: &Schema, records: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 64);
    for record in records {
        write_struct(&mut out, schema.fields(), record);
        out.push(b'\n');
    }
    out
}

fn write_struct(out: &mut Vec<u8>, fields: &[Field], value: &Value) {
    out.push(b'{');
    let children: &[Value] = match value {
        Value::Struct(children) => children,
        _ => &[],
    };
    let mut first = true;
    for (i, field) in fields.iter().enumerate() {
        let child = children.get(i).unwrap_or(&Value::Null);
        if child.is_null() {
            continue;
        }
        if !first {
            out.push(b',');
        }
        first = false;
        out.push(b'"');
        out.extend_from_slice(field.name.as_bytes());
        out.extend_from_slice(b"\":");
        write_value(out, &field.data_type, child);
    }
    out.push(b'}');
}

fn write_value(out: &mut Vec<u8>, ty: &DataType, value: &Value) {
    match (ty, value) {
        (_, Value::Null) => out.extend_from_slice(b"null"),
        (DataType::Struct(fields), v) => write_struct(out, fields, v),
        (DataType::List(inner), Value::List(items)) => {
            out.push(b'[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_value(out, inner, item);
            }
            out.push(b']');
        }
        (_, Value::Bool(b)) => out.extend_from_slice(if *b { b"true" } else { b"false" }),
        (_, Value::Int(v)) => out.extend_from_slice(v.to_string().as_bytes()),
        (_, Value::Float(v)) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                out.extend_from_slice(format!("{v:.1}").as_bytes());
            } else {
                out.extend_from_slice(format!("{v}").as_bytes());
            }
        }
        (_, Value::Str(s)) => write_json_string(out, s),
        (ty, v) => unreachable!("value {v:?} does not match type {ty:?}"),
    }
}

fn write_json_string(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    for b in s.bytes() {
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\t' => out.extend_from_slice(b"\\t"),
            b'\r' => out.extend_from_slice(b"\\r"),
            0x00..=0x1f => out.extend_from_slice(format!("\\u{b:04x}").as_bytes()),
            _ => out.push(b),
        }
    }
    out.push(b'"');
}

/// Cursor over one JSON document.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse_at(
                format!("expected '{}'", b as char),
                self.pos,
            ))
        }
    }

    fn try_consume(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses a JSON string, decoding escapes.
    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let start = self.pos;
        // Fast path: no escapes.
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::parse_at("invalid utf-8 in string", start))?
                        .to_owned();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => break,
                _ => self.pos += 1,
            }
        }
        // Slow path with escape decoding.
        let mut s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse_at("truncated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::parse_at("truncated \\u escape", self.pos));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::parse_at("bad \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::parse_at("bad \\u escape", self.pos))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::parse_at(
                                format!("unknown escape '\\{}'", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                b => {
                    // Collect a run of plain bytes.
                    let run_start = self.pos;
                    while self.pos < self.bytes.len()
                        && self.bytes[self.pos] != b'"'
                        && self.bytes[self.pos] != b'\\'
                    {
                        self.pos += 1;
                    }
                    s.push_str(&String::from_utf8_lossy(&self.bytes[run_start..self.pos]));
                    let _ = b;
                }
            }
        }
        Err(Error::parse_at("unterminated string", self.pos))
    }

    /// Parses a JSON number into `Int` (integral literal) or `Float`.
    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let (value, pos) = parse_number_at(self.bytes, self.pos)?;
        self.pos = pos;
        Ok(value)
    }

    /// Skips any JSON value without materializing it. This is the cheap
    /// path for unaccessed fields.
    fn skip_value(&mut self) -> Result<()> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                self.pos += 1;
                while self.pos < self.bytes.len() {
                    match self.bytes[self.pos] {
                        b'"' => {
                            self.pos += 1;
                            return Ok(());
                        }
                        b'\\' => self.pos += 2,
                        _ => self.pos += 1,
                    }
                }
                Err(Error::parse_at("unterminated string", self.pos))
            }
            Some(b'{') | Some(b'[') => {
                let mut depth = 0usize;
                while self.pos < self.bytes.len() {
                    match self.bytes[self.pos] {
                        b'{' | b'[' => {
                            depth += 1;
                            self.pos += 1;
                        }
                        b'}' | b']' => {
                            depth -= 1;
                            self.pos += 1;
                            if depth == 0 {
                                return Ok(());
                            }
                        }
                        b'"' => {
                            self.pos += 1;
                            while self.pos < self.bytes.len() {
                                match self.bytes[self.pos] {
                                    b'"' => {
                                        self.pos += 1;
                                        break;
                                    }
                                    b'\\' => self.pos += 2,
                                    _ => self.pos += 1,
                                }
                            }
                        }
                        _ => self.pos += 1,
                    }
                }
                Err(Error::parse_at("unterminated container", self.pos))
            }
            Some(_) => {
                while let Some(b) = self.peek() {
                    match b {
                        b',' | b'}' | b']' => break,
                        _ => self.pos += 1,
                    }
                }
                Ok(())
            }
            None => Err(Error::parse_at("unexpected end of input", self.pos)),
        }
    }

    /// Parses a value of the expected type. Type mismatches degrade to
    /// `Null` (heterogeneous raw data is messy; queries treat unexpected
    /// shapes as missing).
    fn parse_typed(&mut self, ty: &DataType) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.skip_literal(b"null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.skip_literal(b"true")?;
                Ok(coerce_bool(true, ty))
            }
            Some(b'f') => {
                self.skip_literal(b"false")?;
                Ok(coerce_bool(false, ty))
            }
            Some(b'"') => {
                let s = self.parse_string()?;
                match ty {
                    DataType::Str => Ok(Value::Str(s)),
                    _ => Ok(Value::Null),
                }
            }
            Some(b'{') => match ty {
                DataType::Struct(fields) => self.parse_object(fields, None),
                _ => {
                    self.skip_value()?;
                    Ok(Value::Null)
                }
            },
            Some(b'[') => match ty {
                DataType::List(inner) => {
                    self.expect(b'[')?;
                    let mut items = Vec::new();
                    if !self.try_consume(b']') {
                        loop {
                            items.push(self.parse_typed(inner)?);
                            if !self.try_consume(b',') {
                                break;
                            }
                        }
                        self.expect(b']')?;
                    }
                    Ok(Value::List(items))
                }
                _ => {
                    self.skip_value()?;
                    Ok(Value::Null)
                }
            },
            Some(_) => {
                let num = self.parse_number()?;
                match ty {
                    DataType::Int => Ok(Value::Int(num.as_i64().unwrap_or(0))),
                    DataType::Float => Ok(Value::Float(num.as_f64().unwrap_or(0.0))),
                    _ => Ok(Value::Null),
                }
            }
            None => Err(Error::parse_at("unexpected end of input", self.pos)),
        }
    }

    fn skip_literal(&mut self, lit: &[u8]) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::parse_at(
                format!("expected '{}'", String::from_utf8_lossy(lit)),
                self.pos,
            ))
        }
    }

    /// Parses an object against known fields; unknown keys are skipped.
    /// When `accessed` is given, known-but-unaccessed fields are *skipped*
    /// rather than parsed — the selective-parse fast path.
    fn parse_object(&mut self, fields: &[Field], accessed: Option<&[bool]>) -> Result<Value> {
        self.expect(b'{')?;
        let mut children = vec![Value::Null; fields.len()];
        if !self.try_consume(b'}') {
            loop {
                let key = self.parse_string()?;
                self.expect(b':')?;
                match fields.iter().position(|f| f.name == key) {
                    Some(idx) if accessed.is_none_or(|a| a[idx]) => {
                        children[idx] = self.parse_typed(&fields[idx].data_type)?;
                    }
                    _ => self.skip_value()?,
                }
                if !self.try_consume(b',') {
                    break;
                }
            }
            self.expect(b'}')?;
        }
        Ok(Value::Struct(children))
    }
}

/// Parses the JSON number literal starting at `bytes[pos]`, returning
/// the value (`Int` for integral literals, `Float` otherwise — i64
/// overflow widens to float) and the position just past it. One routine
/// shared by the row tokenizer and the batched flat-JSON tokenizer
/// (`json_batch`), so the accepted character set and the
/// integral-vs-float split can never diverge between the two paths.
pub(crate) fn parse_number_at(bytes: &[u8], pos: usize) -> Result<(Value, usize)> {
    let start = pos;
    let mut pos = pos;
    let mut is_float = false;
    if bytes.get(pos) == Some(&b'-') {
        pos += 1;
    }
    while let Some(b) = bytes.get(pos) {
        match b {
            b'0'..=b'9' => pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..pos])
        .map_err(|_| Error::parse_at("invalid number", start))?;
    if text.is_empty() || text == "-" {
        return Err(Error::parse_at("invalid number", start));
    }
    let value = if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse_at(format!("invalid float '{text}'"), start))?
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .or_else(|_| text.parse::<f64>().map(Value::Float))
            .map_err(|_| Error::parse_at(format!("invalid int '{text}'"), start))?
    };
    Ok((value, pos))
}

/// Decodes the JSON string whose opening quote sits at `bytes[pos]`,
/// returning the decoded content and the position just past the closing
/// quote. This is the row tokenizer's [`Cursor::parse_string`] — shared
/// so the batched flat-JSON tokenizer (`json_batch`) decodes escapes
/// with byte-identical semantics (including `\u` surrogate fallback and
/// unknown-escape errors).
pub(crate) fn decode_string_at(bytes: &[u8], pos: usize) -> Result<(String, usize)> {
    let mut cursor = Cursor { bytes, pos };
    let s = cursor.parse_string()?;
    Ok((s, cursor.pos))
}

fn coerce_bool(b: bool, ty: &DataType) -> Value {
    match ty {
        DataType::Bool => Value::Bool(b),
        DataType::Int => Value::Int(i64::from(b)),
        _ => Value::Null,
    }
}

/// Parses a single JSON record against a schema. When `accessed_top` is
/// provided, unaccessed *top-level* fields are skipped without parsing
/// (their children remain `Null`).
pub fn parse_record(bytes: &[u8], schema: &Schema, accessed_top: Option<&[bool]>) -> Result<Value> {
    let mut cursor = Cursor::new(bytes);
    let value = cursor.parse_object(schema.fields(), accessed_top)?;
    Ok(value)
}

/// Full scan over line-delimited JSON: parses each record (restricted to
/// `accessed_top` top-level fields if given) and builds a record-level
/// positional map.
pub fn scan_build_map(
    bytes: &[u8],
    schema: &Schema,
    accessed_top: Option<&[bool]>,
    mut on_record: impl FnMut(usize, Value) -> Result<()>,
) -> Result<PositionalMap> {
    let mut record_offsets = Vec::with_capacity(bytes.len() / 64 + 2);
    let mut pos = 0usize;
    let mut record_id = 0usize;
    while pos < bytes.len() {
        record_offsets.push(pos as u64);
        let end = line_end(bytes, pos);
        let record = parse_record(&bytes[pos..end], schema, accessed_top)?;
        on_record(record_id, record)?;
        record_id += 1;
        pos = end + 1;
    }
    record_offsets.push(bytes.len() as u64);
    Ok(PositionalMap::records_only(record_offsets))
}

/// Positional-map-assisted scan: no line re-splitting; each record is
/// parsed (selectively) from its known byte range.
pub fn scan_with_map(
    bytes: &[u8],
    schema: &Schema,
    map: &PositionalMap,
    accessed_top: Option<&[bool]>,
    mut on_record: impl FnMut(usize, Value) -> Result<()>,
) -> Result<()> {
    for record in 0..map.record_count() {
        let (start, end) = map.record_span(record);
        let end = trim_newline(bytes, start, end);
        let value = parse_record(&bytes[start..end], schema, accessed_top)?;
        on_record(record, value)?;
    }
    Ok(())
}

/// Parses one record by id through the map — the lazy-cache re-read path.
pub fn parse_record_at(
    bytes: &[u8],
    schema: &Schema,
    map: &PositionalMap,
    record: usize,
    accessed_top: Option<&[bool]>,
) -> Result<Value> {
    let (start, end) = map.record_span(record);
    let end = trim_newline(bytes, start, end);
    parse_record(&bytes[start..end], schema, accessed_top)
}

fn line_end(bytes: &[u8], start: usize) -> usize {
    bytes[start..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| start + i)
        .unwrap_or(bytes.len())
}

fn trim_newline(bytes: &[u8], start: usize, end: usize) -> usize {
    if end > start && bytes.get(end - 1) == Some(&b'\n') {
        end - 1
    } else {
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::Field;

    fn nested_schema() -> Schema {
        Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![
                    Field::required("q", DataType::Int),
                    Field::new("tag", DataType::Str),
                ]))),
            ),
        ])
    }

    fn sample_record() -> Value {
        Value::Struct(vec![
            Value::Int(1),
            Value::Float(2.5),
            Value::List(vec![
                Value::Struct(vec![Value::Int(10), Value::Str("x".into())]),
                Value::Struct(vec![Value::Int(20), Value::Null]),
            ]),
        ])
    }

    #[test]
    fn write_then_parse_round_trips() {
        let schema = nested_schema();
        let bytes = write_json(&schema, &[sample_record()]);
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert_eq!(
            text,
            "{\"a\":1,\"b\":2.5,\"items\":[{\"q\":10,\"tag\":\"x\"},{\"q\":20}]}\n"
        );
        let mut records = Vec::new();
        scan_build_map(&bytes, &schema, None, |_, v| {
            records.push(v);
            Ok(())
        })
        .unwrap();
        assert_eq!(records, vec![sample_record()]);
    }

    #[test]
    fn selective_parse_skips_nested_array() {
        let schema = nested_schema();
        let bytes = write_json(&schema, &[sample_record()]);
        let record = parse_record(
            &bytes[..bytes.len() - 1],
            &schema,
            Some(&[true, false, false]),
        )
        .unwrap();
        assert_eq!(
            record,
            Value::Struct(vec![Value::Int(1), Value::Null, Value::Null])
        );
    }

    #[test]
    fn unknown_keys_are_skipped() {
        let schema = Schema::new(vec![Field::required("a", DataType::Int)]);
        let record =
            parse_record(br#"{"z":[1,2,{"w":"}"}],"a":7,"y":"s"}"#, &schema, None).unwrap();
        assert_eq!(record, Value::Struct(vec![Value::Int(7)]));
    }

    #[test]
    fn absent_optional_fields_are_null() {
        let schema = nested_schema();
        let record = parse_record(br#"{"a":3}"#, &schema, None).unwrap();
        assert_eq!(
            record,
            Value::Struct(vec![Value::Int(3), Value::Null, Value::Null])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let schema = Schema::new(vec![Field::required("s", DataType::Str)]);
        let original = Value::Struct(vec![Value::Str("a\"b\\c\nd\te\u{1}".into())]);
        let bytes = write_json(&schema, std::slice::from_ref(&original));
        let mut records = Vec::new();
        scan_build_map(&bytes, &schema, None, |_, v| {
            records.push(v);
            Ok(())
        })
        .unwrap();
        assert_eq!(records[0], original);
    }

    #[test]
    fn unicode_escape_decodes() {
        let schema = Schema::new(vec![Field::required("s", DataType::Str)]);
        let record = parse_record("{\"s\":\"A\\u00e9\"}".as_bytes(), &schema, None).unwrap();
        assert_eq!(record, Value::Struct(vec![Value::Str("Aé".into())]));
    }

    #[test]
    fn numbers_parse_by_schema_type() {
        let schema = Schema::new(vec![
            Field::required("i", DataType::Int),
            Field::required("f", DataType::Float),
        ]);
        // Float literal into Int field truncates; int literal into Float
        // field widens.
        let record = parse_record(br#"{"i":3.9,"f":4}"#, &schema, None).unwrap();
        assert_eq!(
            record,
            Value::Struct(vec![Value::Int(3), Value::Float(4.0)])
        );
        let record = parse_record(br#"{"i":-12,"f":-1.5e2}"#, &schema, None).unwrap();
        assert_eq!(
            record,
            Value::Struct(vec![Value::Int(-12), Value::Float(-150.0)])
        );
    }

    #[test]
    fn type_mismatches_degrade_to_null() {
        let schema = Schema::new(vec![
            Field::required("i", DataType::Int),
            Field::required("s", DataType::Str),
        ]);
        let record = parse_record(br#"{"i":"not a number","s":42}"#, &schema, None).unwrap();
        assert_eq!(record, Value::Struct(vec![Value::Null, Value::Null]));
    }

    #[test]
    fn scan_with_map_matches_full_scan() {
        let schema = nested_schema();
        let records: Vec<Value> = (0..5)
            .map(|i| {
                Value::Struct(vec![
                    Value::Int(i),
                    Value::Float(i as f64),
                    Value::List(vec![Value::Struct(vec![Value::Int(i * 10), Value::Null])]),
                ])
            })
            .collect();
        let bytes = write_json(&schema, &records);
        let map = scan_build_map(&bytes, &schema, None, |_, _| Ok(())).unwrap();
        assert_eq!(map.record_count(), 5);

        let mut out = Vec::new();
        scan_with_map(&bytes, &schema, &map, None, |id, v| {
            out.push((id, v));
            Ok(())
        })
        .unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out[3].1, records[3]);

        let one = parse_record_at(&bytes, &schema, &map, 2, None).unwrap();
        assert_eq!(one, records[2]);
    }

    #[test]
    fn empty_containers() {
        let schema = nested_schema();
        let record = parse_record(br#"{"a":1,"items":[]}"#, &schema, None).unwrap();
        assert_eq!(
            record,
            Value::Struct(vec![Value::Int(1), Value::Null, Value::List(vec![])])
        );
    }

    #[test]
    fn malformed_inputs_error() {
        let schema = Schema::new(vec![Field::required("a", DataType::Int)]);
        assert!(parse_record(br#"{"a":}"#, &schema, None).is_err());
        assert!(parse_record(br#"{"a":1"#, &schema, None).is_err());
        assert!(parse_record(br#"{"a" 1}"#, &schema, None).is_err());
        assert!(parse_record(br#"{"a":"unterminated}"#, &schema, None).is_err());
    }

    #[test]
    fn bool_and_null_literals() {
        let schema = Schema::new(vec![
            Field::required("b", DataType::Bool),
            Field::new("i", DataType::Int),
        ]);
        let record = parse_record(br#"{"b":true,"i":null}"#, &schema, None).unwrap();
        assert_eq!(record, Value::Struct(vec![Value::Bool(true), Value::Null]));
        // Bool into int field coerces (heterogeneous-data tolerance).
        let record = parse_record(br#"{"i":true,"b":false}"#, &schema, None).unwrap();
        assert_eq!(
            record,
            Value::Struct(vec![Value::Bool(false), Value::Int(1)])
        );
    }
}
