//! Batched tokenizer for **flat** line-delimited JSON: parses the
//! accessed keys of each record straight into typed [`ScratchColumn`]s —
//! no per-record `Value` tree, no per-key `String`, no flattening pass.
//!
//! Two passes per chunk, mirroring the batched CSV tokenizer:
//!
//! 1. a word-at-a-time (SWAR) **structural sweep** over the chunk's bytes
//!    collects every *unescaped* quote position (a quote preceded by an
//!    odd run of backslashes is string content, not a boundary). In valid
//!    JSON unescaped quotes strictly alternate open/close, so this buffer
//!    is the string skeleton of the chunk: every key span, string-value
//!    span and string-inside-skipped-container is a `O(1)` jump instead
//!    of a byte scan;
//! 2. a per-record **key-cursor walk** matches each key (raw bytes — no
//!    decode unless the key itself contains escapes) against the accessed
//!    field names, parses matching values straight into scratch columns,
//!    and skips everything else (unknown keys, unaccessed fields, nested
//!    junk) through the skeleton without materializing a thing.
//!
//! Semantics are byte-identical to the row tokenizer (`json::Cursor`):
//! numbers follow the same integral-vs-float literal rules and schema
//! coercions (float into `Int` truncates, overflow widens, `-0.0` and
//! exponent forms round-trip through the same `str::parse`), escaped
//! strings decode through the *same* `decode_string_at` routine, type
//! mismatches degrade to `Null`, duplicate keys keep the last value, and
//! absent keys are `Null`. Nested shapes never reach this module —
//! `RawFile::supports_batch_scan` routes them to the row-at-a-time
//! flattening fallback.

use crate::json;
use crate::posmap::{PositionalMap, JSON_KEY_ABSENT};
use crate::raw_batch::byte_eq_mask;
use recache_layout::ScratchColumn;
use recache_types::{Error, Field, Result, ScalarType};

/// A parsed-but-not-yet-pushed value for one accessed field of the record
/// being walked. Staging (instead of pushing mid-record) is what makes
/// arbitrary key order, duplicate keys (last wins) and missing keys
/// (null) line up with the row tokenizer: columns receive exactly one
/// value per record, in slot order, after the record closes.
enum Staged<'a> {
    Missing,
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    /// Escape-free string content, pushed straight from the input bytes
    /// into the column arena (single copy).
    Bytes(&'a [u8]),
    /// Escaped string content, decoded through the row tokenizer's
    /// escape machinery.
    Owned(String),
}

/// Capture context for one record of a first batched scan: the record's
/// slice of the per-accessed-key value-offset slab being built for the
/// positional map (stride = top-level schema field count,
/// [`JSON_KEY_ABSENT`] where the key never appears). Capturing scans
/// match keys against **all** schema names — not just the accessed ones —
/// so the finished map serves any later projection.
struct CaptureRow<'t, 'r> {
    /// Every top-level schema field name.
    all_names: &'t [&'t [u8]],
    /// Schema field index → accessed-slot index, for fields being parsed.
    accessed_of: &'t [Option<usize>],
    /// This record's slab slice, pre-filled with [`JSON_KEY_ABSENT`].
    row: &'r mut [u32],
    /// Record start offset; captured offsets are relative to it.
    line_start: usize,
}

/// Tokenizes records `[rec_lo, rec_hi)` of the `record_offsets` grid into
/// `cols` (one scratch column per projection slot). `accessed_fields`
/// holds `(top-level field index, scalar type, slot)` triples; `fields`
/// is the flat schema the field indices refer to. All fields must be
/// scalar (the caller guarantees flatness via `supports_batch_scan`).
///
/// With `capture`, the walk additionally appends one stride of per-key
/// value offsets per record to the slab (see `CaptureRow`); the caller
/// submits the slab toward the positional map only on success, so a
/// retried chunk never corrupts the capture.
#[allow(clippy::too_many_arguments)]
pub fn tokenize_range_into(
    bytes: &[u8],
    record_offsets: &[u64],
    rec_lo: usize,
    rec_hi: usize,
    fields: &[Field],
    accessed_fields: &[(usize, ScalarType, usize)],
    cols: &mut [ScratchColumn],
    mut capture: Option<&mut Vec<u32>>,
) -> Result<()> {
    debug_assert!(
        bytes.len() <= u32::MAX as usize,
        "batched JSON is u32-indexed"
    );
    let range_start = record_offsets[rec_lo] as usize;
    let range_end = record_offsets[rec_hi] as usize;

    // Pass 1: the unescaped-quote skeleton of the window.
    let quotes = quote_index(bytes, range_start, range_end);

    // Pass 2: per-record key-cursor walk.
    let names: Vec<&[u8]> = accessed_fields
        .iter()
        .map(|&(field, _, _)| fields[field].name.as_bytes())
        .collect();
    // Key-matching tables for capture mode only, so the capture-free hot
    // path walks exactly as before.
    let cap_tables = capture.is_some().then(|| {
        let all_names: Vec<&[u8]> = fields.iter().map(|f| f.name.as_bytes()).collect();
        let mut accessed_of: Vec<Option<usize>> = vec![None; fields.len()];
        for (ai, &(field, _, _)) in accessed_fields.iter().enumerate() {
            accessed_of[field] = Some(ai);
        }
        (all_names, accessed_of)
    });
    let mut staged: Vec<Staged<'_>> = (0..accessed_fields.len())
        .map(|_| Staged::Missing)
        .collect();
    let mut qi = 0usize;
    for rec in rec_lo..rec_hi {
        let line_start = record_offsets[rec] as usize;
        let span_end = record_offsets[rec + 1] as usize;
        // Content excludes the trailing newline when one exists (the last
        // record of a file may end at EOF instead).
        let end = if span_end > line_start && bytes[span_end - 1] == b'\n' {
            span_end - 1
        } else {
            span_end
        };
        // Resync the skeleton cursor past any quotes in skipped trailing
        // bytes of the previous record.
        while qi < quotes.len() && (quotes[qi] as usize) < line_start {
            qi += 1;
        }
        for slot in staged.iter_mut() {
            *slot = Staged::Missing;
        }
        let cap = match (capture.as_deref_mut(), &cap_tables) {
            (Some(slab), Some((all_names, accessed_of))) => {
                let base = slab.len();
                slab.resize(base + fields.len(), JSON_KEY_ABSENT);
                Some(CaptureRow {
                    all_names,
                    accessed_of,
                    row: &mut slab[base..],
                    line_start,
                })
            }
            _ => None,
        };
        let mut walk = RecordWalk {
            bytes,
            end,
            pos: line_start,
            quotes: &quotes,
            qi,
        };
        walk.parse_record(&names, accessed_fields, &mut staged, cap)?;
        qi = walk.qi;
        for (slot, &(_, _, col_slot)) in staged.iter_mut().zip(accessed_fields) {
            push_staged(
                &mut cols[col_slot],
                std::mem::replace(slot, Staged::Missing),
            );
        }
    }
    Ok(())
}

fn push_staged(col: &mut ScratchColumn, staged: Staged<'_>) {
    match staged {
        Staged::Missing | Staged::Null => col.push_null(),
        Staged::Int(v) => col.push_int(v),
        Staged::Float(v) => col.push_float(v),
        Staged::Bool(v) => col.push_bool(v),
        Staged::Bytes(s) => col.push_str_bytes(s),
        Staged::Owned(s) => col.push_str_bytes(s.as_bytes()),
    }
}

/// Mapped re-scan: parses records `[rec_lo, rec_hi)` through a
/// positional map carrying per-key value offsets
/// ([`PositionalMap::has_json_value_offsets`]). Each accessed field
/// seeks straight to its captured value start and parses just that value
/// — no record walk, no key matching, no quote skeleton, and every
/// unaccessed key's bytes are never touched. Value semantics (schema
/// coercions, escape decoding, nulls for absent keys) are identical to
/// the tokenizing path: the shared number/string routines do the work.
pub fn parse_range_with_map(
    bytes: &[u8],
    map: &PositionalMap,
    rec_lo: usize,
    rec_hi: usize,
    accessed_fields: &[(usize, ScalarType, usize)],
    cols: &mut [ScratchColumn],
) -> Result<()> {
    for rec in rec_lo..rec_hi {
        let (start, span_end) = map.record_span(rec);
        let end = if span_end > start && bytes[span_end - 1] == b'\n' {
            span_end - 1
        } else {
            span_end
        };
        for &(field, ty, col_slot) in accessed_fields {
            let col = &mut cols[col_slot];
            match map.json_value_offset(rec, field) {
                None => col.push_null(),
                Some(pos) => push_value_at(bytes, pos, end, ty, col)?,
            }
        }
    }
    Ok(())
}

/// Parses the single JSON value starting at `pos` (bounded by the record
/// content end) under schema type `ty` and pushes it. Mirrors
/// [`RecordWalk::stage_value`]'s coercions exactly; the value was walked
/// by the capturing first scan, so `pos` is its exact first byte.
fn push_value_at(
    bytes: &[u8],
    pos: usize,
    end: usize,
    ty: ScalarType,
    col: &mut ScratchColumn,
) -> Result<()> {
    let expect_lit = |lit: &[u8]| -> Result<()> {
        if end - pos >= lit.len() && &bytes[pos..pos + lit.len()] == lit {
            Ok(())
        } else {
            Err(Error::parse_at(
                format!("expected '{}'", String::from_utf8_lossy(lit)),
                pos,
            ))
        }
    };
    match bytes.get(pos).copied() {
        Some(b'n') => {
            expect_lit(b"null")?;
            col.push_null();
        }
        Some(b't') => {
            expect_lit(b"true")?;
            push_staged(col, stage_bool(true, ty));
        }
        Some(b'f') => {
            expect_lit(b"false")?;
            push_staged(col, stage_bool(false, ty));
        }
        Some(b'"') => {
            if ty != ScalarType::Str {
                // String into a non-string field: null, as everywhere.
                col.push_null();
                return Ok(());
            }
            // Local closing-quote scan with escape awareness — cheaper
            // than a chunk-wide skeleton when only this value is read.
            let mut i = pos + 1;
            let mut saw_escape = false;
            loop {
                if i >= end {
                    return Err(Error::parse_at("unterminated string", pos));
                }
                match bytes[i] {
                    b'\\' => {
                        saw_escape = true;
                        i += 2;
                    }
                    b'"' => break,
                    _ => i += 1,
                }
            }
            if saw_escape {
                let (s, _) = json::decode_string_at(bytes, pos)?;
                col.push_str_bytes(s.as_bytes());
            } else {
                let span = &bytes[pos + 1..i];
                std::str::from_utf8(span)
                    .map_err(|_| Error::parse_at("invalid utf-8 in string", pos + 1))?;
                col.push_str_bytes(span);
            }
        }
        Some(b'{') | Some(b'[') => col.push_null(),
        Some(_) => {
            let (num, _) = json::parse_number_at(&bytes[..end], pos)?;
            push_staged(
                col,
                match ty {
                    ScalarType::Int => Staged::Int(num.as_i64().unwrap_or(0)),
                    ScalarType::Float => Staged::Float(num.as_f64().unwrap_or(0.0)),
                    ScalarType::Bool | ScalarType::Str => Staged::Null,
                },
            );
        }
        None => return Err(Error::parse_at("unexpected end of input", pos)),
    }
    Ok(())
}

/// Absolute positions of every unescaped `"` in `bytes[start..end)`,
/// ascending. The SWAR sweep visits quote and backslash bytes only; a
/// quote immediately preceded by an odd-length backslash run is escaped
/// string content and excluded.
fn quote_index(bytes: &[u8], start: usize, end: usize) -> Vec<u32> {
    struct Sweep {
        quotes: Vec<u32>,
        last_bs: usize,
        bs_run: usize,
    }
    impl Sweep {
        #[inline]
        fn note(&mut self, pos: usize, b: u8) {
            if b == b'\\' {
                if self.last_bs.wrapping_add(1) == pos {
                    self.bs_run += 1;
                } else {
                    self.bs_run = 1;
                }
                self.last_bs = pos;
            } else if !(self.last_bs.wrapping_add(1) == pos && self.bs_run % 2 == 1) {
                self.quotes.push(pos as u32);
            }
        }
    }
    let window = &bytes[start..end];
    let mut sweep = Sweep {
        quotes: Vec::with_capacity(window.len() / 16 + 8),
        last_bs: usize::MAX,
        bs_run: 0,
    };
    let mut i = 0usize;
    while i + 8 <= window.len() {
        let word = u64::from_le_bytes(window[i..i + 8].try_into().expect("8-byte window"));
        let mut mask = byte_eq_mask(word, b'"') | byte_eq_mask(word, b'\\');
        while mask != 0 {
            let pos = i + (mask.trailing_zeros() / 8) as usize;
            sweep.note(start + pos, window[pos]);
            mask &= mask - 1;
        }
        i += 8;
    }
    for (pos, &b) in window.iter().enumerate().skip(i) {
        if b == b'"' || b == b'\\' {
            sweep.note(start + pos, b);
        }
    }
    sweep.quotes
}

/// Cursor over one record's bytes (`[pos, end)`) plus the chunk-wide
/// quote skeleton. Whitespace, `expect`, literal and number handling
/// mirror the row tokenizer's `Cursor` exactly.
struct RecordWalk<'a> {
    bytes: &'a [u8],
    end: usize,
    pos: usize,
    quotes: &'a [u32],
    qi: usize,
}

impl<'a> RecordWalk<'a> {
    #[inline]
    fn skip_ws(&mut self) {
        while self.pos < self.end && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        if self.pos < self.end {
            Some(self.bytes[self.pos])
        } else {
            None
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse_at(
                format!("expected '{}'", b as char),
                self.pos,
            ))
        }
    }

    fn try_consume(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// At an opening quote: returns the content span and advances past
    /// the closing quote, consuming the pair from the skeleton. The
    /// cursor resync at entry tolerates quotes skipped over by the
    /// lenient scalar skip.
    fn string_span(&mut self) -> Result<(usize, usize)> {
        while self.qi < self.quotes.len() && (self.quotes[self.qi] as usize) < self.pos {
            self.qi += 1;
        }
        if self.qi + 1 >= self.quotes.len() || self.quotes[self.qi] as usize != self.pos {
            return Err(Error::parse_at("unterminated string", self.pos));
        }
        let close = self.quotes[self.qi + 1] as usize;
        if close >= self.end {
            return Err(Error::parse_at("unterminated string", self.pos));
        }
        let open = self.pos;
        self.qi += 2;
        self.pos = close + 1;
        Ok((open + 1, close))
    }

    /// Skips a `{...}` / `[...]` value (unknown keys carrying nested
    /// junk, or a container where a scalar was expected): depth counting
    /// over structural bytes, with strings jumped through the skeleton.
    fn skip_container(&mut self) -> Result<()> {
        let mut depth = 0usize;
        while self.pos < self.end {
            match self.bytes[self.pos] {
                b'{' | b'[' => {
                    depth += 1;
                    self.pos += 1;
                }
                b'}' | b']' => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                b'"' => {
                    self.string_span()?;
                }
                _ => self.pos += 1,
            }
        }
        Err(Error::parse_at("unterminated container", self.pos))
    }

    /// Skips any value without materializing it — same leniency as the
    /// row tokenizer's `skip_value` (scalars scan to the next
    /// `,` / `}` / `]`, nothing inside is validated).
    fn skip_value_lenient(&mut self) -> Result<()> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string_span().map(|_| ()),
            Some(b'{') | Some(b'[') => self.skip_container(),
            Some(_) => {
                while let Some(b) = self.peek() {
                    match b {
                        b',' | b'}' | b']' => break,
                        _ => self.pos += 1,
                    }
                }
                Ok(())
            }
            None => Err(Error::parse_at("unexpected end of input", self.pos)),
        }
    }

    fn expect_literal(&mut self, lit: &[u8]) -> Result<()> {
        if self.end - self.pos >= lit.len() && &self.bytes[self.pos..self.pos + lit.len()] == lit {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::parse_at(
                format!("expected '{}'", String::from_utf8_lossy(lit)),
                self.pos,
            ))
        }
    }

    /// Parses a number literal and stages it under the schema type. The
    /// literal itself goes through the row tokenizer's *own*
    /// `parse_number_at` (shared, like string decoding), and the schema
    /// coercions mirror `parse_typed` exactly: `Float` into an `Int`
    /// field truncates (`as_i64`), `Int` into a `Float` field widens,
    /// numbers into bool/string fields degrade to null.
    fn stage_number(&mut self, ty: ScalarType) -> Result<Staged<'a>> {
        self.skip_ws();
        // Bound the shared parser by the record end, as the row
        // tokenizer's per-record cursor is.
        let (num, pos) = json::parse_number_at(&self.bytes[..self.end], self.pos)?;
        self.pos = pos;
        Ok(match ty {
            ScalarType::Int => Staged::Int(num.as_i64().unwrap_or(0)),
            ScalarType::Float => Staged::Float(num.as_f64().unwrap_or(0.0)),
            ScalarType::Bool | ScalarType::Str => Staged::Null,
        })
    }

    /// Parses an accessed field's value under its schema type.
    fn stage_value(&mut self, ty: ScalarType) -> Result<Staged<'a>> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal(b"null")?;
                Ok(Staged::Null)
            }
            Some(b't') => {
                self.expect_literal(b"true")?;
                Ok(stage_bool(true, ty))
            }
            Some(b'f') => {
                self.expect_literal(b"false")?;
                Ok(stage_bool(false, ty))
            }
            Some(b'"') => {
                let open = self.pos;
                let (lo, hi) = self.string_span()?;
                if ty != ScalarType::Str {
                    // String into a non-string field: null, as in the
                    // row path's type-mismatch tolerance.
                    return Ok(Staged::Null);
                }
                let span = &self.bytes[lo..hi];
                if span.contains(&b'\\') {
                    let (s, _) = json::decode_string_at(self.bytes, open)?;
                    Ok(Staged::Owned(s))
                } else {
                    std::str::from_utf8(span)
                        .map_err(|_| Error::parse_at("invalid utf-8 in string", lo))?;
                    Ok(Staged::Bytes(span))
                }
            }
            Some(b'{') | Some(b'[') => {
                self.skip_container()?;
                Ok(Staged::Null)
            }
            Some(_) => self.stage_number(ty),
            None => Err(Error::parse_at("unexpected end of input", self.pos)),
        }
    }

    /// Walks one `{...}` record, staging accessed fields and skipping the
    /// rest. Keys match as raw bytes against the accessed names (decoded
    /// first only when the key itself contains escapes); keys are
    /// UTF-8-validated exactly as the row tokenizer's `parse_string`
    /// validates every key it touches.
    ///
    /// With `capture`, keys match against the full schema instead and
    /// each match records its value's start offset (relative to the
    /// record start) into the capture row; duplicate keys overwrite, so
    /// the map points at the last occurrence — the one whose value the
    /// staging below also keeps.
    fn parse_record(
        &mut self,
        names: &[&[u8]],
        accessed_fields: &[(usize, ScalarType, usize)],
        staged: &mut [Staged<'a>],
        mut capture: Option<CaptureRow<'_, '_>>,
    ) -> Result<()> {
        self.expect(b'{')?;
        if self.try_consume(b'}') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(Error::parse_at("expected '\"'", self.pos));
            }
            let key_open = self.pos;
            let (klo, khi) = self.string_span()?;
            let key_span = &self.bytes[klo..khi];
            // `slot` is the accessed-field index to stage into;
            // `field` is the schema field index to capture under.
            let (slot, field) = if key_span.contains(&b'\\') {
                let (decoded, _) = json::decode_string_at(self.bytes, key_open)?;
                match &capture {
                    Some(cap) => {
                        let fi = cap.all_names.iter().position(|n| *n == decoded.as_bytes());
                        (fi.and_then(|f| cap.accessed_of[f]), fi)
                    }
                    None => (names.iter().position(|n| *n == decoded.as_bytes()), None),
                }
            } else {
                std::str::from_utf8(key_span)
                    .map_err(|_| Error::parse_at("invalid utf-8 in string", klo))?;
                match &capture {
                    Some(cap) => {
                        let fi = cap.all_names.iter().position(|n| *n == key_span);
                        (fi.and_then(|f| cap.accessed_of[f]), fi)
                    }
                    None => (names.iter().position(|n| *n == key_span), None),
                }
            };
            self.expect(b':')?;
            if let (Some(cap), Some(fi)) = (capture.as_mut(), field) {
                // Land the offset on the value's first byte (stage_value
                // and skip_value_lenient both tolerate leading ws, so the
                // walk itself hasn't consumed it yet).
                self.skip_ws();
                cap.row[fi] = (self.pos - cap.line_start) as u32;
            }
            match slot {
                Some(ai) => staged[ai] = self.stage_value(accessed_fields[ai].1)?,
                None => self.skip_value_lenient()?,
            }
            if !self.try_consume(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        Ok(())
    }
}

fn stage_bool(b: bool, ty: ScalarType) -> Staged<'static> {
    match ty {
        ScalarType::Bool => Staged::Bool(b),
        // Bool into an int field coerces, everything else degrades to
        // null — `coerce_bool` in the row tokenizer.
        ScalarType::Int => Staged::Int(i64::from(b)),
        ScalarType::Float | ScalarType::Str => Staged::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw_batch::index_records;
    use recache_types::{DataType, Value};

    fn flat_fields() -> Vec<Field> {
        vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("b", DataType::Bool),
        ]
    }

    fn tokenize_all(bytes: &[u8], fields: &[Field]) -> Result<Vec<Vec<Value>>> {
        let accessed: Vec<(usize, ScalarType, usize)> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.data_type.as_scalar().unwrap(), i))
            .collect();
        let mut cols: Vec<ScratchColumn> = accessed
            .iter()
            .map(|&(_, ty, _)| ScratchColumn::new(ty))
            .collect();
        let offsets = index_records(bytes);
        let n = offsets.len() - 1;
        tokenize_range_into(bytes, &offsets, 0, n, fields, &accessed, &mut cols, None)?;
        let views: Vec<_> = cols.iter().map(|c| c.as_batch_column()).collect();
        Ok((0..n)
            .map(|r| views.iter().map(|v| v.value(r)).collect())
            .collect())
    }

    #[test]
    fn parses_keys_in_any_order_with_missing_and_unknown_keys() {
        let fields = flat_fields();
        let bytes = concat!(
            "{\"s\":\"x\",\"i\":3}\n",
            "{\"junk\":[1,{\"w\":\"}\"}],\"f\":2.5,\"b\":true,\"i\":-7}\n",
            "{}\n",
            "{\"b\":false,\"unknown\":\"a,b:c\"}\n",
        )
        .as_bytes()
        .to_vec();
        let rows = tokenize_all(&bytes, &fields).unwrap();
        assert_eq!(
            rows[0],
            vec![Value::Int(3), Value::Null, Value::from("x"), Value::Null]
        );
        assert_eq!(
            rows[1],
            vec![
                Value::Int(-7),
                Value::Float(2.5),
                Value::Null,
                Value::Bool(true)
            ]
        );
        assert_eq!(rows[2], vec![Value::Null; 4]);
        assert_eq!(
            rows[3],
            vec![Value::Null, Value::Null, Value::Null, Value::Bool(false)]
        );
    }

    #[test]
    fn escapes_and_numeric_edge_forms_match_row_semantics() {
        let fields = flat_fields();
        let bytes = concat!(
            "{\"s\":\"a\\\"b\\\\c\\nd\\u00e9\",\"i\":3.9,\"f\":4}\n",
            "{\"i\":-0.0,\"f\":-1.5e2,\"s\":\"plain\"}\n",
            "{\"i\":1e3,\"f\":2.5e-2,\"b\":1}\n",
        )
        .as_bytes()
        .to_vec();
        let rows = tokenize_all(&bytes, &fields).unwrap();
        assert_eq!(rows[0][2], Value::from("a\"b\\c\ndé"));
        assert_eq!(rows[0][0], Value::Int(3)); // float into int truncates
        assert_eq!(rows[0][1], Value::Float(4.0)); // int widens
        assert_eq!(rows[1][0], Value::Int(0)); // -0.0 truncates to 0
        assert_eq!(rows[1][1], Value::Float(-150.0));
        assert_eq!(rows[2][0], Value::Int(1000));
        assert_eq!(rows[2][1], Value::Float(0.025));
        assert_eq!(rows[2][3], Value::Null); // number into bool -> null
    }

    #[test]
    fn type_mismatches_and_explicit_nulls_degrade_like_the_row_path() {
        let fields = flat_fields();
        let bytes = concat!(
            "{\"i\":\"nope\",\"s\":42,\"b\":null,\"f\":true}\n",
            "{\"i\":true,\"s\":{\"nested\":1},\"f\":[1,2]}\n",
        )
        .as_bytes()
        .to_vec();
        let rows = tokenize_all(&bytes, &fields).unwrap();
        assert_eq!(rows[0], vec![Value::Null; 4]);
        // Bool into int coerces; containers into scalars degrade to null.
        assert_eq!(
            rows[1],
            vec![Value::Int(1), Value::Null, Value::Null, Value::Null]
        );
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let fields = flat_fields();
        let rows = tokenize_all(b"{\"i\":1,\"i\":2}\n", &fields).unwrap();
        assert_eq!(rows[0][0], Value::Int(2));
    }

    #[test]
    fn malformed_records_error() {
        let fields = flat_fields();
        assert!(tokenize_all(b"{\"i\":}\n", &fields).is_err());
        assert!(tokenize_all(b"{\"i\":1\n", &fields).is_err());
        assert!(tokenize_all(b"{\"i\" 1}\n", &fields).is_err());
        assert!(tokenize_all(b"{\"s\":\"unterminated}\n", &fields).is_err());
        assert!(tokenize_all(b"not json\n", &fields).is_err());
    }

    #[test]
    fn quote_index_handles_escape_parity() {
        // "a\"b" and "c\\" — the escaped quote is excluded, the quote
        // after an even backslash run is not.
        let bytes = br#"{"k":"a\"b","m":"c\\"}"#;
        let quotes = quote_index(bytes, 0, bytes.len());
        let expected: Vec<u32> = vec![1, 3, 5, 10, 12, 14, 16, 20];
        assert_eq!(quotes, expected);
    }
}
