//! Batched tokenizer for **flat** line-delimited JSON: parses the
//! accessed keys of each record straight into typed [`ScratchColumn`]s —
//! no per-record `Value` tree, no per-key `String`, no flattening pass.
//!
//! Two passes per chunk, mirroring the batched CSV tokenizer:
//!
//! 1. a word-at-a-time (SWAR) **structural sweep** over the chunk's bytes
//!    collects every *unescaped* quote position (a quote preceded by an
//!    odd run of backslashes is string content, not a boundary). In valid
//!    JSON unescaped quotes strictly alternate open/close, so this buffer
//!    is the string skeleton of the chunk: every key span, string-value
//!    span and string-inside-skipped-container is a `O(1)` jump instead
//!    of a byte scan;
//! 2. a per-record **key-cursor walk** matches each key (raw bytes — no
//!    decode unless the key itself contains escapes) against the accessed
//!    field names, parses matching values straight into scratch columns,
//!    and skips everything else (unknown keys, unaccessed fields, nested
//!    junk) through the skeleton without materializing a thing.
//!
//! Semantics are byte-identical to the row tokenizer (`json::Cursor`):
//! numbers follow the same integral-vs-float literal rules and schema
//! coercions (float into `Int` truncates, overflow widens, `-0.0` and
//! exponent forms round-trip through the same `str::parse`), escaped
//! strings decode through the *same* `decode_string_at` routine, type
//! mismatches degrade to `Null`, duplicate keys keep the last value, and
//! absent keys are `Null`. Nested shapes never reach this module —
//! `RawFile::supports_batch_scan` routes them to the row-at-a-time
//! flattening fallback.

use crate::json;
use crate::raw_batch::byte_eq_mask;
use recache_layout::ScratchColumn;
use recache_types::{Error, Field, Result, ScalarType};

/// A parsed-but-not-yet-pushed value for one accessed field of the record
/// being walked. Staging (instead of pushing mid-record) is what makes
/// arbitrary key order, duplicate keys (last wins) and missing keys
/// (null) line up with the row tokenizer: columns receive exactly one
/// value per record, in slot order, after the record closes.
enum Staged<'a> {
    Missing,
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    /// Escape-free string content, pushed straight from the input bytes
    /// into the column arena (single copy).
    Bytes(&'a [u8]),
    /// Escaped string content, decoded through the row tokenizer's
    /// escape machinery.
    Owned(String),
}

/// Tokenizes records `[rec_lo, rec_hi)` of the `record_offsets` grid into
/// `cols` (one scratch column per projection slot). `accessed_fields`
/// holds `(top-level field index, scalar type, slot)` triples; `fields`
/// is the flat schema the field indices refer to. All fields must be
/// scalar (the caller guarantees flatness via `supports_batch_scan`).
pub fn tokenize_range_into(
    bytes: &[u8],
    record_offsets: &[u64],
    rec_lo: usize,
    rec_hi: usize,
    fields: &[Field],
    accessed_fields: &[(usize, ScalarType, usize)],
    cols: &mut [ScratchColumn],
) -> Result<()> {
    debug_assert!(
        bytes.len() <= u32::MAX as usize,
        "batched JSON is u32-indexed"
    );
    let range_start = record_offsets[rec_lo] as usize;
    let range_end = record_offsets[rec_hi] as usize;

    // Pass 1: the unescaped-quote skeleton of the window.
    let quotes = quote_index(bytes, range_start, range_end);

    // Pass 2: per-record key-cursor walk.
    let names: Vec<&[u8]> = accessed_fields
        .iter()
        .map(|&(field, _, _)| fields[field].name.as_bytes())
        .collect();
    let mut staged: Vec<Staged<'_>> = (0..accessed_fields.len())
        .map(|_| Staged::Missing)
        .collect();
    let mut qi = 0usize;
    for rec in rec_lo..rec_hi {
        let line_start = record_offsets[rec] as usize;
        let span_end = record_offsets[rec + 1] as usize;
        // Content excludes the trailing newline when one exists (the last
        // record of a file may end at EOF instead).
        let end = if span_end > line_start && bytes[span_end - 1] == b'\n' {
            span_end - 1
        } else {
            span_end
        };
        // Resync the skeleton cursor past any quotes in skipped trailing
        // bytes of the previous record.
        while qi < quotes.len() && (quotes[qi] as usize) < line_start {
            qi += 1;
        }
        for slot in staged.iter_mut() {
            *slot = Staged::Missing;
        }
        let mut walk = RecordWalk {
            bytes,
            end,
            pos: line_start,
            quotes: &quotes,
            qi,
        };
        walk.parse_record(&names, accessed_fields, &mut staged)?;
        qi = walk.qi;
        for (slot, &(_, _, col_slot)) in staged.iter_mut().zip(accessed_fields) {
            let col = &mut cols[col_slot];
            match std::mem::replace(slot, Staged::Missing) {
                Staged::Missing | Staged::Null => col.push_null(),
                Staged::Int(v) => col.push_int(v),
                Staged::Float(v) => col.push_float(v),
                Staged::Bool(v) => col.push_bool(v),
                Staged::Bytes(s) => col.push_str_bytes(s),
                Staged::Owned(s) => col.push_str_bytes(s.as_bytes()),
            }
        }
    }
    Ok(())
}

/// Absolute positions of every unescaped `"` in `bytes[start..end)`,
/// ascending. The SWAR sweep visits quote and backslash bytes only; a
/// quote immediately preceded by an odd-length backslash run is escaped
/// string content and excluded.
fn quote_index(bytes: &[u8], start: usize, end: usize) -> Vec<u32> {
    struct Sweep {
        quotes: Vec<u32>,
        last_bs: usize,
        bs_run: usize,
    }
    impl Sweep {
        #[inline]
        fn note(&mut self, pos: usize, b: u8) {
            if b == b'\\' {
                if self.last_bs.wrapping_add(1) == pos {
                    self.bs_run += 1;
                } else {
                    self.bs_run = 1;
                }
                self.last_bs = pos;
            } else if !(self.last_bs.wrapping_add(1) == pos && self.bs_run % 2 == 1) {
                self.quotes.push(pos as u32);
            }
        }
    }
    let window = &bytes[start..end];
    let mut sweep = Sweep {
        quotes: Vec::with_capacity(window.len() / 16 + 8),
        last_bs: usize::MAX,
        bs_run: 0,
    };
    let mut i = 0usize;
    while i + 8 <= window.len() {
        let word = u64::from_le_bytes(window[i..i + 8].try_into().expect("8-byte window"));
        let mut mask = byte_eq_mask(word, b'"') | byte_eq_mask(word, b'\\');
        while mask != 0 {
            let pos = i + (mask.trailing_zeros() / 8) as usize;
            sweep.note(start + pos, window[pos]);
            mask &= mask - 1;
        }
        i += 8;
    }
    for (pos, &b) in window.iter().enumerate().skip(i) {
        if b == b'"' || b == b'\\' {
            sweep.note(start + pos, b);
        }
    }
    sweep.quotes
}

/// Cursor over one record's bytes (`[pos, end)`) plus the chunk-wide
/// quote skeleton. Whitespace, `expect`, literal and number handling
/// mirror the row tokenizer's `Cursor` exactly.
struct RecordWalk<'a> {
    bytes: &'a [u8],
    end: usize,
    pos: usize,
    quotes: &'a [u32],
    qi: usize,
}

impl<'a> RecordWalk<'a> {
    #[inline]
    fn skip_ws(&mut self) {
        while self.pos < self.end && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        if self.pos < self.end {
            Some(self.bytes[self.pos])
        } else {
            None
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse_at(
                format!("expected '{}'", b as char),
                self.pos,
            ))
        }
    }

    fn try_consume(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// At an opening quote: returns the content span and advances past
    /// the closing quote, consuming the pair from the skeleton. The
    /// cursor resync at entry tolerates quotes skipped over by the
    /// lenient scalar skip.
    fn string_span(&mut self) -> Result<(usize, usize)> {
        while self.qi < self.quotes.len() && (self.quotes[self.qi] as usize) < self.pos {
            self.qi += 1;
        }
        if self.qi + 1 >= self.quotes.len() || self.quotes[self.qi] as usize != self.pos {
            return Err(Error::parse_at("unterminated string", self.pos));
        }
        let close = self.quotes[self.qi + 1] as usize;
        if close >= self.end {
            return Err(Error::parse_at("unterminated string", self.pos));
        }
        let open = self.pos;
        self.qi += 2;
        self.pos = close + 1;
        Ok((open + 1, close))
    }

    /// Skips a `{...}` / `[...]` value (unknown keys carrying nested
    /// junk, or a container where a scalar was expected): depth counting
    /// over structural bytes, with strings jumped through the skeleton.
    fn skip_container(&mut self) -> Result<()> {
        let mut depth = 0usize;
        while self.pos < self.end {
            match self.bytes[self.pos] {
                b'{' | b'[' => {
                    depth += 1;
                    self.pos += 1;
                }
                b'}' | b']' => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                b'"' => {
                    self.string_span()?;
                }
                _ => self.pos += 1,
            }
        }
        Err(Error::parse_at("unterminated container", self.pos))
    }

    /// Skips any value without materializing it — same leniency as the
    /// row tokenizer's `skip_value` (scalars scan to the next
    /// `,` / `}` / `]`, nothing inside is validated).
    fn skip_value_lenient(&mut self) -> Result<()> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string_span().map(|_| ()),
            Some(b'{') | Some(b'[') => self.skip_container(),
            Some(_) => {
                while let Some(b) = self.peek() {
                    match b {
                        b',' | b'}' | b']' => break,
                        _ => self.pos += 1,
                    }
                }
                Ok(())
            }
            None => Err(Error::parse_at("unexpected end of input", self.pos)),
        }
    }

    fn expect_literal(&mut self, lit: &[u8]) -> Result<()> {
        if self.end - self.pos >= lit.len() && &self.bytes[self.pos..self.pos + lit.len()] == lit {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::parse_at(
                format!("expected '{}'", String::from_utf8_lossy(lit)),
                self.pos,
            ))
        }
    }

    /// Parses a number literal and stages it under the schema type. The
    /// literal itself goes through the row tokenizer's *own*
    /// `parse_number_at` (shared, like string decoding), and the schema
    /// coercions mirror `parse_typed` exactly: `Float` into an `Int`
    /// field truncates (`as_i64`), `Int` into a `Float` field widens,
    /// numbers into bool/string fields degrade to null.
    fn stage_number(&mut self, ty: ScalarType) -> Result<Staged<'a>> {
        self.skip_ws();
        // Bound the shared parser by the record end, as the row
        // tokenizer's per-record cursor is.
        let (num, pos) = json::parse_number_at(&self.bytes[..self.end], self.pos)?;
        self.pos = pos;
        Ok(match ty {
            ScalarType::Int => Staged::Int(num.as_i64().unwrap_or(0)),
            ScalarType::Float => Staged::Float(num.as_f64().unwrap_or(0.0)),
            ScalarType::Bool | ScalarType::Str => Staged::Null,
        })
    }

    /// Parses an accessed field's value under its schema type.
    fn stage_value(&mut self, ty: ScalarType) -> Result<Staged<'a>> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal(b"null")?;
                Ok(Staged::Null)
            }
            Some(b't') => {
                self.expect_literal(b"true")?;
                Ok(stage_bool(true, ty))
            }
            Some(b'f') => {
                self.expect_literal(b"false")?;
                Ok(stage_bool(false, ty))
            }
            Some(b'"') => {
                let open = self.pos;
                let (lo, hi) = self.string_span()?;
                if ty != ScalarType::Str {
                    // String into a non-string field: null, as in the
                    // row path's type-mismatch tolerance.
                    return Ok(Staged::Null);
                }
                let span = &self.bytes[lo..hi];
                if span.contains(&b'\\') {
                    let (s, _) = json::decode_string_at(self.bytes, open)?;
                    Ok(Staged::Owned(s))
                } else {
                    std::str::from_utf8(span)
                        .map_err(|_| Error::parse_at("invalid utf-8 in string", lo))?;
                    Ok(Staged::Bytes(span))
                }
            }
            Some(b'{') | Some(b'[') => {
                self.skip_container()?;
                Ok(Staged::Null)
            }
            Some(_) => self.stage_number(ty),
            None => Err(Error::parse_at("unexpected end of input", self.pos)),
        }
    }

    /// Walks one `{...}` record, staging accessed fields and skipping the
    /// rest. Keys match as raw bytes against the accessed names (decoded
    /// first only when the key itself contains escapes); keys are
    /// UTF-8-validated exactly as the row tokenizer's `parse_string`
    /// validates every key it touches.
    fn parse_record(
        &mut self,
        names: &[&[u8]],
        accessed_fields: &[(usize, ScalarType, usize)],
        staged: &mut [Staged<'a>],
    ) -> Result<()> {
        self.expect(b'{')?;
        if self.try_consume(b'}') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(Error::parse_at("expected '\"'", self.pos));
            }
            let key_open = self.pos;
            let (klo, khi) = self.string_span()?;
            let key_span = &self.bytes[klo..khi];
            let slot = if key_span.contains(&b'\\') {
                let (decoded, _) = json::decode_string_at(self.bytes, key_open)?;
                names.iter().position(|n| *n == decoded.as_bytes())
            } else {
                std::str::from_utf8(key_span)
                    .map_err(|_| Error::parse_at("invalid utf-8 in string", klo))?;
                names.iter().position(|n| *n == key_span)
            };
            self.expect(b':')?;
            match slot {
                Some(ai) => staged[ai] = self.stage_value(accessed_fields[ai].1)?,
                None => self.skip_value_lenient()?,
            }
            if !self.try_consume(b',') {
                break;
            }
        }
        self.expect(b'}')?;
        Ok(())
    }
}

fn stage_bool(b: bool, ty: ScalarType) -> Staged<'static> {
    match ty {
        ScalarType::Bool => Staged::Bool(b),
        // Bool into an int field coerces, everything else degrades to
        // null — `coerce_bool` in the row tokenizer.
        ScalarType::Int => Staged::Int(i64::from(b)),
        ScalarType::Float | ScalarType::Str => Staged::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw_batch::index_records;
    use recache_types::{DataType, Value};

    fn flat_fields() -> Vec<Field> {
        vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("b", DataType::Bool),
        ]
    }

    fn tokenize_all(bytes: &[u8], fields: &[Field]) -> Result<Vec<Vec<Value>>> {
        let accessed: Vec<(usize, ScalarType, usize)> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.data_type.as_scalar().unwrap(), i))
            .collect();
        let mut cols: Vec<ScratchColumn> = accessed
            .iter()
            .map(|&(_, ty, _)| ScratchColumn::new(ty))
            .collect();
        let offsets = index_records(bytes);
        let n = offsets.len() - 1;
        tokenize_range_into(bytes, &offsets, 0, n, fields, &accessed, &mut cols)?;
        let views: Vec<_> = cols.iter().map(|c| c.as_batch_column()).collect();
        Ok((0..n)
            .map(|r| views.iter().map(|v| v.value(r)).collect())
            .collect())
    }

    #[test]
    fn parses_keys_in_any_order_with_missing_and_unknown_keys() {
        let fields = flat_fields();
        let bytes = concat!(
            "{\"s\":\"x\",\"i\":3}\n",
            "{\"junk\":[1,{\"w\":\"}\"}],\"f\":2.5,\"b\":true,\"i\":-7}\n",
            "{}\n",
            "{\"b\":false,\"unknown\":\"a,b:c\"}\n",
        )
        .as_bytes()
        .to_vec();
        let rows = tokenize_all(&bytes, &fields).unwrap();
        assert_eq!(
            rows[0],
            vec![Value::Int(3), Value::Null, Value::from("x"), Value::Null]
        );
        assert_eq!(
            rows[1],
            vec![
                Value::Int(-7),
                Value::Float(2.5),
                Value::Null,
                Value::Bool(true)
            ]
        );
        assert_eq!(rows[2], vec![Value::Null; 4]);
        assert_eq!(
            rows[3],
            vec![Value::Null, Value::Null, Value::Null, Value::Bool(false)]
        );
    }

    #[test]
    fn escapes_and_numeric_edge_forms_match_row_semantics() {
        let fields = flat_fields();
        let bytes = concat!(
            "{\"s\":\"a\\\"b\\\\c\\nd\\u00e9\",\"i\":3.9,\"f\":4}\n",
            "{\"i\":-0.0,\"f\":-1.5e2,\"s\":\"plain\"}\n",
            "{\"i\":1e3,\"f\":2.5e-2,\"b\":1}\n",
        )
        .as_bytes()
        .to_vec();
        let rows = tokenize_all(&bytes, &fields).unwrap();
        assert_eq!(rows[0][2], Value::from("a\"b\\c\ndé"));
        assert_eq!(rows[0][0], Value::Int(3)); // float into int truncates
        assert_eq!(rows[0][1], Value::Float(4.0)); // int widens
        assert_eq!(rows[1][0], Value::Int(0)); // -0.0 truncates to 0
        assert_eq!(rows[1][1], Value::Float(-150.0));
        assert_eq!(rows[2][0], Value::Int(1000));
        assert_eq!(rows[2][1], Value::Float(0.025));
        assert_eq!(rows[2][3], Value::Null); // number into bool -> null
    }

    #[test]
    fn type_mismatches_and_explicit_nulls_degrade_like_the_row_path() {
        let fields = flat_fields();
        let bytes = concat!(
            "{\"i\":\"nope\",\"s\":42,\"b\":null,\"f\":true}\n",
            "{\"i\":true,\"s\":{\"nested\":1},\"f\":[1,2]}\n",
        )
        .as_bytes()
        .to_vec();
        let rows = tokenize_all(&bytes, &fields).unwrap();
        assert_eq!(rows[0], vec![Value::Null; 4]);
        // Bool into int coerces; containers into scalars degrade to null.
        assert_eq!(
            rows[1],
            vec![Value::Int(1), Value::Null, Value::Null, Value::Null]
        );
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let fields = flat_fields();
        let rows = tokenize_all(b"{\"i\":1,\"i\":2}\n", &fields).unwrap();
        assert_eq!(rows[0][0], Value::Int(2));
    }

    #[test]
    fn malformed_records_error() {
        let fields = flat_fields();
        assert!(tokenize_all(b"{\"i\":}\n", &fields).is_err());
        assert!(tokenize_all(b"{\"i\":1\n", &fields).is_err());
        assert!(tokenize_all(b"{\"i\" 1}\n", &fields).is_err());
        assert!(tokenize_all(b"{\"s\":\"unterminated}\n", &fields).is_err());
        assert!(tokenize_all(b"not json\n", &fields).is_err());
    }

    #[test]
    fn quote_index_handles_escape_parity() {
        // "a\"b" and "c\\" — the escaped quote is excluded, the quote
        // after an even backslash run is not.
        let bytes = br#"{"k":"a\"b","m":"c\\"}"#;
        let quotes = quote_index(bytes, 0, bytes.len());
        let expected: Vec<u32> = vec![1, 3, 5, 10, 12, 14, 16, 20];
        assert_eq!(quotes, expected);
    }
}
