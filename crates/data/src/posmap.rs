//! NoDB-style positional maps: the "skeleton" of a raw file.
//!
//! A positional map captures the byte offsets of records (and, for CSV,
//! of every field within each record) during the first full scan of a raw
//! file. Subsequent queries navigate the file through the map instead of
//! re-tokenizing it, which is what makes repeated in-situ access viable
//! (Alagiannis et al., NoDB, SIGMOD 2012; Karpathiotakis et al., Proteus,
//! PVLDB 2016).

/// Byte-offset index over a raw file.
#[derive(Debug, Clone, Default)]
pub struct PositionalMap {
    /// Start offset of each record; a final entry holds the file length,
    /// so record `i` spans `record_offsets[i]..record_offsets[i+1]`
    /// (including the trailing newline, which parsers trim).
    record_offsets: Vec<u64>,
    /// CSV only: start offset of each field relative to its record start,
    /// flattened with stride `fields_per_record + 1`; the extra slot per
    /// record is the record length, so field `j` of record `i` spans
    /// `fo[i*s + j] .. fo[i*s + j + 1] - 1` (excluding the delimiter).
    field_offsets: Vec<u32>,
    /// Flat JSON only: start offset of each top-level schema field's
    /// *value* relative to its record start, flattened with stride
    /// `fields_per_record`; [`u32::MAX`] marks a key absent from that
    /// record. Unlike CSV, JSON fields carry no end offset — values
    /// self-terminate, so a re-scan seeks to the start and parses.
    value_offsets: Vec<u32>,
    fields_per_record: usize,
}

/// Sentinel in the JSON value-offset table: the record has no such key.
pub const JSON_KEY_ABSENT: u32 = u32::MAX;

impl PositionalMap {
    /// Builds a record-level map (JSON files, row-path first scans).
    pub fn records_only(record_offsets: Vec<u64>) -> Self {
        PositionalMap {
            record_offsets,
            field_offsets: Vec::new(),
            value_offsets: Vec::new(),
            fields_per_record: 0,
        }
    }

    /// Builds a record+field map (CSV files).
    pub fn with_fields(
        record_offsets: Vec<u64>,
        field_offsets: Vec<u32>,
        fields_per_record: usize,
    ) -> Self {
        debug_assert!(!record_offsets.is_empty());
        debug_assert_eq!(
            field_offsets.len(),
            (record_offsets.len() - 1) * (fields_per_record + 1)
        );
        PositionalMap {
            record_offsets,
            field_offsets,
            value_offsets: Vec::new(),
            fields_per_record,
        }
    }

    /// Builds a record+value-offset map (flat JSON batched first scans):
    /// `value_offsets` holds per-record, per-schema-field value start
    /// offsets (stride `fields_per_record`, [`JSON_KEY_ABSENT`] where
    /// the record lacks the key).
    pub fn with_json_values(
        record_offsets: Vec<u64>,
        value_offsets: Vec<u32>,
        fields_per_record: usize,
    ) -> Self {
        debug_assert!(!record_offsets.is_empty());
        debug_assert_eq!(
            value_offsets.len(),
            (record_offsets.len() - 1) * fields_per_record
        );
        PositionalMap {
            record_offsets,
            field_offsets: Vec::new(),
            value_offsets,
            fields_per_record,
        }
    }

    /// Number of records indexed.
    pub fn record_count(&self) -> usize {
        self.record_offsets.len().saturating_sub(1)
    }

    /// The raw record-offset table (`record_count() + 1` entries; the
    /// last is the file length). Batched scans hand this to the chunk
    /// tokenizers, which take record windows as offset slices.
    pub fn record_offsets(&self) -> &[u64] {
        &self.record_offsets
    }

    /// Byte range of a record (including any trailing newline).
    pub fn record_span(&self, record: usize) -> (usize, usize) {
        (
            self.record_offsets[record] as usize,
            self.record_offsets[record + 1] as usize,
        )
    }

    /// True if per-field offsets are available (CSV maps).
    pub fn has_field_offsets(&self) -> bool {
        self.fields_per_record > 0 && !self.field_offsets.is_empty()
    }

    /// True if per-key value offsets are available (flat JSON maps built
    /// by a batched first scan).
    pub fn has_json_value_offsets(&self) -> bool {
        self.fields_per_record > 0 && !self.value_offsets.is_empty()
    }

    /// Absolute byte offset of field `field`'s value in `record`, or
    /// `None` when the record has no such key. Only valid when
    /// [`Self::has_json_value_offsets`].
    pub fn json_value_offset(&self, record: usize, field: usize) -> Option<usize> {
        debug_assert!(field < self.fields_per_record);
        let off = self.value_offsets[record * self.fields_per_record + field];
        if off == JSON_KEY_ABSENT {
            None
        } else {
            Some(self.record_offsets[record] as usize + off as usize)
        }
    }

    /// Byte range of one field within the file (excluding the delimiter).
    /// Only valid when [`Self::has_field_offsets`].
    pub fn field_span(&self, record: usize, field: usize) -> (usize, usize) {
        debug_assert!(field < self.fields_per_record);
        let stride = self.fields_per_record + 1;
        let base = self.record_offsets[record] as usize;
        let start = base + self.field_offsets[record * stride + field] as usize;
        let end = base + self.field_offsets[record * stride + field + 1] as usize - 1;
        (start, end)
    }

    /// Approximate memory footprint of the map itself, counted against no
    /// cache budget in the paper but reported for completeness.
    pub fn byte_size(&self) -> usize {
        self.record_offsets.len() * 8 + (self.field_offsets.len() + self.value_offsets.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_spans() {
        // two records: bytes 0..6 and 6..12
        let map = PositionalMap::records_only(vec![0, 6, 12]);
        assert_eq!(map.record_count(), 2);
        assert_eq!(map.record_span(0), (0, 6));
        assert_eq!(map.record_span(1), (6, 12));
        assert!(!map.has_field_offsets());
    }

    #[test]
    fn field_spans_exclude_delimiters() {
        // record "ab|c\n" at offset 0: fields at 0 and 3, record len 5.
        let map = PositionalMap::with_fields(vec![0, 5], vec![0, 3, 5], 2);
        assert!(map.has_field_offsets());
        assert_eq!(map.field_span(0, 0), (0, 2)); // "ab"
        assert_eq!(map.field_span(0, 1), (3, 4)); // "c"
    }

    #[test]
    fn field_spans_second_record() {
        // "a|bb\n" then "cc|d\n" at offset 5.
        let map = PositionalMap::with_fields(vec![0, 5, 10], vec![0, 2, 5, 0, 3, 5], 2);
        assert_eq!(map.field_span(1, 0), (5, 7)); // "cc"
        assert_eq!(map.field_span(1, 1), (8, 9)); // "d"
    }

    #[test]
    fn byte_size_counts_both_tables() {
        let map = PositionalMap::with_fields(vec![0, 5], vec![0, 3, 5], 2);
        assert_eq!(map.byte_size(), 2 * 8 + 3 * 4);
    }

    #[test]
    fn empty_file_map() {
        let map = PositionalMap::records_only(vec![0]);
        assert_eq!(map.record_count(), 0);
    }

    #[test]
    fn json_value_offsets_resolve_absolute_with_absent_sentinel() {
        // Two records of 10 bytes; field 1 absent from record 0, field 0
        // absent from record 1.
        let map = PositionalMap::with_json_values(
            vec![0, 10, 20],
            vec![5, JSON_KEY_ABSENT, JSON_KEY_ABSENT, 7],
            2,
        );
        assert!(map.has_json_value_offsets());
        assert!(!map.has_field_offsets());
        assert_eq!(map.json_value_offset(0, 0), Some(5));
        assert_eq!(map.json_value_offset(0, 1), None);
        assert_eq!(map.json_value_offset(1, 0), None);
        assert_eq!(map.json_value_offset(1, 1), Some(17));
    }
}
