//! Seeded, deterministic fault injection for raw-file scans.
//!
//! A [`FaultPlan`] installed on a [`RawFile`](crate::RawFile) decides —
//! per (site, chunk, attempt) — whether a scan operation fails, and
//! how: a transient I/O error (clears on retry), a persistent I/O
//! error (every attempt fails), a short read (transient,
//! `UnexpectedEof`), a latency spike (the operation sleeps but
//! succeeds), or a panic (exercises the abandoned-flight and
//! panic-propagation paths).
//!
//! Decisions are **stateless**: each one hashes `(seed, site, chunk,
//! attempt)` into a fresh [`StdRng`], so the fault pattern is a pure
//! function of the seed — independent of thread interleaving, scan
//! order, or how many queries ran before. Persistent decisions omit
//! `attempt` from the hash, which is exactly what makes them
//! persistent: every retry of that chunk redraws the same answer.
//!
//! The plan lives behind an `Option<Arc<FaultPlan>>` on the source, so
//! the disabled configuration costs one pointer null-check per scan
//! site and allocates nothing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recache_types::{Error, Result};
use std::time::Duration;

/// Where in the scan pipeline a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Start of a row-at-a-time scan (per-record tokenizer paths).
    /// Injected before any row is emitted, so a retry cannot duplicate
    /// output.
    RowScan,
    /// One batched-tokenizer chunk (`scan_batches_range`). Chunk work
    /// is transactional — scratch columns are cleared and the capture
    /// slab is only submitted on success — so chunk retries are safe.
    Chunk,
}

impl FaultSite {
    fn code(self) -> u64 {
        match self {
            FaultSite::RowScan => 0x524F_5753_4341_4E00, // "ROWSCAN"
            FaultSite::Chunk => 0x4348_554E_4B00_0000,   // "CHUNK"
        }
    }
}

/// What an injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ErrorKind::Interrupted` — the canonical retryable error.
    TransientIo,
    /// `ErrorKind::InvalidData` — fails every attempt.
    PersistentIo,
    /// `ErrorKind::UnexpectedEof` — a short read; retryable.
    ShortRead,
    /// The operation sleeps for the configured spike, then succeeds.
    Latency,
    /// The operation panics (abandoned-flight / panic-surfacing paths).
    Panic,
}

/// Bounded retry with small capped backoff, applied at chunk
/// granularity by [`RawFile::scan_batches_range`](crate::RawFile).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per chunk (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff * n`, capped at
    /// [`RetryPolicy::max_backoff`].
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry attempt `attempt` (1-based: the sleep
    /// preceding the second try is `delay(1)`).
    pub fn delay(&self, attempt: u32) -> Duration {
        self.base_backoff
            .saturating_mul(attempt)
            .min(self.max_backoff)
    }
}

/// Seeded fault-injection plan. All rates are probabilities in
/// `[0, 1]`; a default plan injects nothing.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    persistent_rate: f64,
    short_read_rate: f64,
    latency_rate: f64,
    latency_spike: Duration,
    panic_rate: f64,
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            persistent_rate: 0.0,
            short_read_rate: 0.0,
            latency_rate: 0.0,
            latency_spike: Duration::from_micros(200),
            panic_rate: 0.0,
        }
    }

    /// Sets the transient I/O error rate.
    pub fn transient(mut self, rate: f64) -> Self {
        self.transient_rate = rate;
        self
    }

    /// Sets the persistent I/O error rate.
    pub fn persistent(mut self, rate: f64) -> Self {
        self.persistent_rate = rate;
        self
    }

    /// Sets the short-read rate.
    pub fn short_reads(mut self, rate: f64) -> Self {
        self.short_read_rate = rate;
        self
    }

    /// Sets the latency-spike rate and spike duration.
    pub fn latency(mut self, rate: f64, spike: Duration) -> Self {
        self.latency_rate = rate;
        self.latency_spike = spike;
        self
    }

    /// Sets the panic rate.
    pub fn panics(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn rng(&self, salt: u64, site: FaultSite, chunk: u64, attempt: Option<u32>) -> StdRng {
        // seed_from_u64 runs SplitMix64, so a cheap xor/multiply mix of
        // the coordinates is enough to decorrelate nearby chunks.
        let mut key = self.seed ^ salt;
        key = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(site.code());
        key = key.wrapping_mul(0xBF58_476D_1CE4_E5B9).wrapping_add(chunk);
        if let Some(attempt) = attempt {
            key = key
                .wrapping_mul(0x94D0_49BB_1331_11EB)
                .wrapping_add(attempt as u64 + 1);
        }
        StdRng::seed_from_u64(key)
    }

    /// The fault (if any) for one `(site, chunk, attempt)` coordinate.
    /// Pure function of the plan — no interior state.
    pub fn decide(&self, site: FaultSite, chunk: u64, attempt: u32) -> Option<FaultKind> {
        // Persistent faults are drawn without the attempt coordinate:
        // a chunk that draws one fails the same way on every retry.
        if self.persistent_rate > 0.0
            && self
                .rng(0x5045_5253, site, chunk, None)
                .random_bool(self.persistent_rate)
        {
            return Some(FaultKind::PersistentIo);
        }
        let mut rng = self.rng(0x5452_414E, site, chunk, Some(attempt));
        if self.transient_rate > 0.0 && rng.random_bool(self.transient_rate) {
            return Some(FaultKind::TransientIo);
        }
        if self.short_read_rate > 0.0 && rng.random_bool(self.short_read_rate) {
            return Some(FaultKind::ShortRead);
        }
        if self.panic_rate > 0.0 && rng.random_bool(self.panic_rate) {
            return Some(FaultKind::Panic);
        }
        if self.latency_rate > 0.0 && rng.random_bool(self.latency_rate) {
            return Some(FaultKind::Latency);
        }
        None
    }

    /// Applies the decision for this coordinate: sleeps on a latency
    /// spike, panics on a panic fault, returns a typed I/O error for
    /// the error kinds, and `Ok(())` when no fault fires.
    pub fn inject(&self, site: FaultSite, chunk: u64, attempt: u32) -> Result<()> {
        match self.decide(site, chunk, attempt) {
            None => Ok(()),
            Some(FaultKind::Latency) => {
                std::thread::sleep(self.latency_spike);
                Ok(())
            }
            Some(FaultKind::Panic) => {
                panic!("injected panic at {site:?} chunk {chunk} attempt {attempt}")
            }
            Some(FaultKind::TransientIo) => Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("injected transient I/O fault at {site:?} chunk {chunk} attempt {attempt}"),
            ))),
            Some(FaultKind::ShortRead) => Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("injected short read at {site:?} chunk {chunk} attempt {attempt}"),
            ))),
            Some(FaultKind::PersistentIo) => Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("injected persistent I/O fault at {site:?} chunk {chunk}"),
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_coordinate() {
        let a = FaultPlan::new(42).transient(0.3).persistent(0.05);
        let b = FaultPlan::new(42).transient(0.3).persistent(0.05);
        for chunk in 0..200 {
            for attempt in 0..3 {
                assert_eq!(
                    a.decide(FaultSite::Chunk, chunk, attempt),
                    b.decide(FaultSite::Chunk, chunk, attempt),
                );
            }
        }
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::new(7);
        for chunk in 0..500 {
            assert_eq!(plan.decide(FaultSite::Chunk, chunk, 0), None);
            assert!(plan.inject(FaultSite::RowScan, chunk, 0).is_ok());
        }
    }

    #[test]
    fn persistent_faults_survive_retries_transient_ones_clear() {
        let plan = FaultPlan::new(1).transient(0.5).persistent(0.1);
        let mut saw_persistent = false;
        let mut saw_transient_clear = false;
        for chunk in 0..400 {
            match plan.decide(FaultSite::Chunk, chunk, 0) {
                Some(FaultKind::PersistentIo) => {
                    saw_persistent = true;
                    for attempt in 1..4 {
                        assert_eq!(
                            plan.decide(FaultSite::Chunk, chunk, attempt),
                            Some(FaultKind::PersistentIo),
                            "persistent fault must not clear on retry"
                        );
                    }
                }
                // A 0.5 transient rate re-drawn per attempt clears
                // within a few retries for *some* chunk.
                Some(FaultKind::TransientIo)
                    if (1..4).any(|a| plan.decide(FaultSite::Chunk, chunk, a).is_none()) =>
                {
                    saw_transient_clear = true;
                }
                _ => {}
            }
        }
        assert!(saw_persistent, "0.1 rate over 400 chunks must fire");
        assert!(saw_transient_clear, "some transient fault must clear");
    }

    #[test]
    fn sites_draw_independent_patterns() {
        let plan = FaultPlan::new(3).transient(0.5);
        let differs = (0..100).any(|chunk| {
            plan.decide(FaultSite::Chunk, chunk, 0) != plan.decide(FaultSite::RowScan, chunk, 0)
        });
        assert!(differs, "sites must not mirror each other's faults");
    }

    #[test]
    fn injected_errors_carry_the_right_transience() {
        let plan = FaultPlan::new(11).transient(1.0);
        let err = plan.inject(FaultSite::Chunk, 0, 0).unwrap_err();
        assert!(err.is_transient());
        let plan = FaultPlan::new(11).persistent(1.0);
        let err = plan.inject(FaultSite::Chunk, 0, 0).unwrap_err();
        assert!(!err.is_transient());
        let plan = FaultPlan::new(11).short_reads(1.0);
        let err = plan.inject(FaultSite::Chunk, 0, 0).unwrap_err();
        assert!(err.is_transient());
    }

    #[test]
    fn retry_backoff_is_capped() {
        let policy = RetryPolicy::default();
        assert!(policy.delay(1) <= policy.max_backoff);
        assert!(policy.delay(1000) == policy.max_backoff);
        assert!(policy.delay(2) >= policy.delay(1));
    }
}
