//! Raw-data access layer for ReCache: from-scratch CSV and line-delimited
//! JSON readers/writers with NoDB-style *positional maps*, plus the
//! deterministic dataset generators used by the evaluation.
//!
//! Parsing cost is the object of study in ReCache: raw JSON is much more
//! expensive to parse than CSV, and positional maps (record/field byte
//! offsets captured during the first scan) reduce the cost of subsequent
//! selective accesses. Owning the parsers lets the engine:
//!
//! * parse only the fields a query touches once a positional map exists,
//! * re-read individual records by offset, which is what the *lazy*
//!   (offsets-only) cache admission mode needs,
//! * expose per-scan metrics that feed the cost-based cache policies.

pub mod csv;
pub mod fault;
pub mod gen;
pub mod json;
pub mod json_batch;
pub mod posmap;
pub mod raw_batch;
pub mod source;

pub use fault::{FaultKind, FaultPlan, FaultSite, RetryPolicy};
pub use posmap::PositionalMap;
pub use source::{FileFormat, RawFile, ScanMetrics};
