//! From-scratch CSV reader/writer (TPC-H style: `|`-delimited, no quoting).
//!
//! The reader works in two regimes, mirroring in-situ engines:
//! * **first scan** — tokenizes every record, parses the requested fields,
//!   and builds a [`PositionalMap`] with per-field offsets as a side effect;
//! * **mapped scan** — navigates directly to the requested fields through
//!   the positional map, paying nothing for the fields a query skips.

use crate::posmap::PositionalMap;
use recache_types::{Error, Result, ScalarType, Schema, Value};

/// Field delimiter: TPC-H convention.
pub const DELIMITER: u8 = b'|';

/// Serializes flat records (one scalar per schema field) into CSV bytes.
pub fn write_csv(schema: &Schema, records: &[Vec<Value>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * schema.len() * 8);
    for record in records {
        debug_assert_eq!(record.len(), schema.len());
        for (i, value) in record.iter().enumerate() {
            if i > 0 {
                out.push(DELIMITER);
            }
            write_scalar(&mut out, value);
        }
        out.push(b'\n');
    }
    out
}

fn write_scalar(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => {}
        Value::Bool(b) => out.extend_from_slice(if *b { b"true" } else { b"false" }),
        Value::Int(v) => {
            let mut buf = itoa_buffer();
            out.extend_from_slice(format_i64(*v, &mut buf));
        }
        Value::Float(v) => out.extend_from_slice(format_f64(*v).as_bytes()),
        Value::Str(s) => {
            debug_assert!(
                !s.bytes().any(|b| b == DELIMITER || b == b'\n'),
                "CSV strings must not contain delimiter or newline"
            );
            out.extend_from_slice(s.as_bytes());
        }
        Value::List(_) | Value::Struct(_) => {
            unreachable!("CSV schemas contain only scalar fields")
        }
    }
}

fn itoa_buffer() -> [u8; 20] {
    [0u8; 20]
}

/// Integer formatting without heap allocation.
fn format_i64(mut v: i64, buf: &mut [u8; 20]) -> &[u8] {
    if v == 0 {
        buf[0] = b'0';
        return &buf[..1];
    }
    let negative = v < 0;
    let mut i = buf.len();
    // Work with negative values to handle i64::MIN.
    if v > 0 {
        v = -v;
    }
    while v != 0 {
        i -= 1;
        buf[i] = b'0' + (-(v % 10)) as u8;
        v /= 10;
    }
    if negative {
        i -= 1;
        buf[i] = b'-';
    }
    let len = buf.len() - i;
    buf.copy_within(i.., 0);
    &buf[..len]
}

fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.2}")
    } else {
        format!("{v}")
    }
}

/// Parses one CSV field into a value of the given scalar type. Empty
/// fields are `Null`.
pub fn parse_field(bytes: &[u8], ty: ScalarType) -> Result<Value> {
    if bytes.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        ScalarType::Int => parse_i64(bytes).map(Value::Int).ok_or_else(|| {
            Error::parse(format!("invalid int: {}", String::from_utf8_lossy(bytes)))
        }),
        ScalarType::Float => std::str::from_utf8(bytes)
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Float)
            .ok_or_else(|| {
                Error::parse(format!("invalid float: {}", String::from_utf8_lossy(bytes)))
            }),
        ScalarType::Bool => match bytes {
            b"true" | b"1" => Ok(Value::Bool(true)),
            b"false" | b"0" => Ok(Value::Bool(false)),
            _ => Err(Error::parse(format!(
                "invalid bool: {}",
                String::from_utf8_lossy(bytes)
            ))),
        },
        ScalarType::Str => Ok(Value::Str(String::from_utf8_lossy(bytes).into_owned())),
    }
}

/// Hand-rolled integer parse: the hot path of CSV scans.
fn parse_i64(bytes: &[u8]) -> Option<i64> {
    let (negative, digits) = match bytes.first()? {
        b'-' => (true, &bytes[1..]),
        b'+' => (false, &bytes[1..]),
        _ => (false, bytes),
    };
    if digits.is_empty() {
        return None;
    }
    let mut acc: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return None;
        }
        acc = acc.checked_mul(10)?.checked_sub(i64::from(b - b'0'))?;
    }
    if negative {
        Some(acc)
    } else {
        acc.checked_neg()
    }
}

/// Full tokenizing scan. Invokes `on_record` with the parsed values of the
/// `accessed` fields (in schema order, compacted) and returns the
/// positional map built along the way.
pub fn scan_build_map(
    bytes: &[u8],
    schema: &Schema,
    accessed: &[bool],
    mut on_record: impl FnMut(usize, Vec<Value>) -> Result<()>,
) -> Result<PositionalMap> {
    let n_fields = schema.len();
    let stride = n_fields + 1;
    let approx_records = bytes.len() / 32 + 1;
    let mut record_offsets = Vec::with_capacity(approx_records + 1);
    let mut field_offsets: Vec<u32> = Vec::with_capacity(approx_records * stride);
    let n_accessed = accessed.iter().filter(|&&a| a).count();
    let types: Vec<ScalarType> = schema
        .fields()
        .iter()
        .map(|f| f.data_type.as_scalar().expect("CSV fields are scalars"))
        .collect();

    let mut pos = 0usize;
    let mut record_id = 0usize;
    while pos < bytes.len() {
        record_offsets.push(pos as u64);
        let line_start = pos;
        let mut field = 0usize;
        let mut field_start = pos;
        let mut values = Vec::with_capacity(n_accessed);
        loop {
            let b = if pos < bytes.len() { bytes[pos] } else { b'\n' };
            if b == DELIMITER || b == b'\n' {
                if field >= n_fields {
                    return Err(Error::parse_at(
                        format!("record {record_id} has more than {n_fields} fields"),
                        pos,
                    ));
                }
                field_offsets.push((field_start - line_start) as u32);
                if accessed[field] {
                    values.push(parse_field(&bytes[field_start..pos], types[field])?);
                }
                field += 1;
                field_start = pos + 1;
                if b == b'\n' {
                    break;
                }
            }
            pos += 1;
        }
        if field != n_fields {
            return Err(Error::parse_at(
                format!("record {record_id} has {field} fields, expected {n_fields}"),
                pos,
            ));
        }
        // Past the (possibly virtual, at EOF) newline. The record-length
        // slot includes it, so `field_span`'s `end - 1` always lands on
        // the delimiter that follows the field.
        pos = pos.min(bytes.len()) + 1;
        field_offsets.push((pos - line_start) as u32);
        on_record(record_id, values)?;
        record_id += 1;
    }
    record_offsets.push(bytes.len() as u64);
    Ok(PositionalMap::with_fields(
        record_offsets,
        field_offsets,
        n_fields,
    ))
}

/// Positional-map-assisted scan: parses only the accessed fields of every
/// record, without tokenizing the rest of the line.
pub fn scan_with_map(
    bytes: &[u8],
    schema: &Schema,
    map: &PositionalMap,
    accessed: &[bool],
    mut on_record: impl FnMut(usize, Vec<Value>) -> Result<()>,
) -> Result<()> {
    let accessed_fields: Vec<(usize, ScalarType)> = schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(i, _)| accessed[*i])
        .map(|(i, f)| (i, f.data_type.as_scalar().expect("CSV fields are scalars")))
        .collect();
    for record in 0..map.record_count() {
        let mut values = Vec::with_capacity(accessed_fields.len());
        for &(field, ty) in &accessed_fields {
            let (start, end) = map.field_span(record, field);
            values.push(parse_field(&bytes[start..end.min(bytes.len())], ty)?);
        }
        on_record(record, values)?;
    }
    Ok(())
}

/// Parses the accessed fields of a single record through the map: the
/// re-read path used by lazy (offsets-only) caches.
pub fn parse_record_at(
    bytes: &[u8],
    schema: &Schema,
    map: &PositionalMap,
    record: usize,
    accessed: &[bool],
) -> Result<Vec<Value>> {
    let mut values = Vec::new();
    for (field, f) in schema.fields().iter().enumerate() {
        if !accessed[field] {
            continue;
        }
        let ty = f.data_type.as_scalar().expect("CSV fields are scalars");
        let (start, end) = map.field_span(record, field);
        values.push(parse_field(&bytes[start..end.min(bytes.len())], ty)?);
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::required("b", DataType::Float),
            Field::required("c", DataType::Str),
        ])
    }

    fn sample() -> Vec<u8> {
        write_csv(
            &schema(),
            &[
                vec![Value::Int(1), Value::Float(1.5), Value::from("x")],
                vec![Value::Int(-2), Value::Float(2.0), Value::from("yy")],
                vec![Value::Null, Value::Float(3.25), Value::from("")],
            ],
        )
    }

    #[test]
    fn writer_format_is_pipe_delimited() {
        let bytes = sample();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text, "1|1.5|x\n-2|2.00|yy\n|3.25|\n");
    }

    #[test]
    fn full_scan_parses_all_fields_and_builds_map() {
        let bytes = sample();
        let mut rows = Vec::new();
        let map = scan_build_map(&bytes, &schema(), &[true, true, true], |id, vals| {
            rows.push((id, vals));
            Ok(())
        })
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0].1,
            vec![Value::Int(1), Value::Float(1.5), Value::from("x")]
        );
        assert_eq!(rows[1].1[0], Value::Int(-2));
        // Empty fields parse as Null for every type (the writer emits
        // nothing for Null, so Str("") does not round-trip — documented).
        assert_eq!(rows[2].1[0], Value::Null);
        assert_eq!(rows[2].1[2], Value::Null);
        assert_eq!(map.record_count(), 3);
    }

    #[test]
    fn projected_first_scan_skips_unaccessed_fields() {
        let bytes = sample();
        let mut rows = Vec::new();
        scan_build_map(&bytes, &schema(), &[false, true, false], |_, vals| {
            rows.push(vals);
            Ok(())
        })
        .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Float(1.5)],
                vec![Value::Float(2.0)],
                vec![Value::Float(3.25)],
            ]
        );
    }

    #[test]
    fn mapped_scan_matches_full_scan() {
        let bytes = sample();
        let map = scan_build_map(&bytes, &schema(), &[false, false, false], |_, _| Ok(())).unwrap();
        let mut rows = Vec::new();
        scan_with_map(&bytes, &schema(), &map, &[true, false, true], |id, vals| {
            rows.push((id, vals));
            Ok(())
        })
        .unwrap();
        assert_eq!(rows[0].1, vec![Value::Int(1), Value::from("x")]);
        assert_eq!(rows[1].1, vec![Value::Int(-2), Value::from("yy")]);
    }

    #[test]
    fn parse_record_at_reads_single_records() {
        let bytes = sample();
        let map = scan_build_map(&bytes, &schema(), &[false, false, false], |_, _| Ok(())).unwrap();
        let vals = parse_record_at(&bytes, &schema(), &map, 1, &[true, true, false]).unwrap();
        assert_eq!(vals, vec![Value::Int(-2), Value::Float(2.0)]);
    }

    #[test]
    fn missing_trailing_newline_is_accepted() {
        let bytes = b"5|2.50|end".to_vec();
        let mut rows = Vec::new();
        let map = scan_build_map(&bytes, &schema(), &[true, true, true], |_, vals| {
            rows.push(vals);
            Ok(())
        })
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0],
            vec![Value::Int(5), Value::Float(2.5), Value::from("end")]
        );
        assert_eq!(map.record_count(), 1);
    }

    #[test]
    fn field_count_mismatch_is_an_error() {
        let bytes = b"1|2.0\n".to_vec();
        let err = scan_build_map(&bytes, &schema(), &[true, true, true], |_, _| Ok(()));
        assert!(err.is_err());
        let bytes = b"1|2.0|x|extra\n".to_vec();
        let err = scan_build_map(&bytes, &schema(), &[true, true, true], |_, _| Ok(()));
        assert!(err.is_err());
    }

    #[test]
    fn int_parser_handles_extremes() {
        assert_eq!(parse_i64(b"9223372036854775807"), Some(i64::MAX));
        assert_eq!(parse_i64(b"-9223372036854775808"), Some(i64::MIN));
        assert_eq!(parse_i64(b"9223372036854775808"), None); // overflow
        assert_eq!(parse_i64(b"+42"), Some(42));
        assert_eq!(parse_i64(b"4x2"), None);
        assert_eq!(parse_i64(b"-"), None);
    }

    #[test]
    fn format_i64_matches_display() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            let mut buf = [0u8; 20];
            assert_eq!(format_i64(v, &mut buf), v.to_string().as_bytes());
        }
    }

    #[test]
    fn bool_parsing() {
        assert_eq!(
            parse_field(b"true", ScalarType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            parse_field(b"0", ScalarType::Bool).unwrap(),
            Value::Bool(false)
        );
        assert!(parse_field(b"maybe", ScalarType::Bool).is_err());
    }
}
