//! From-scratch CSV reader/writer (TPC-H style: `|`-delimited, no quoting).
//!
//! The reader works in two regimes, mirroring in-situ engines:
//! * **first scan** — tokenizes every record, parses the requested fields,
//!   and builds a [`PositionalMap`] with per-field offsets as a side effect;
//! * **mapped scan** — navigates directly to the requested fields through
//!   the positional map, paying nothing for the fields a query skips.

use crate::posmap::PositionalMap;
use crate::raw_batch::byte_eq_mask;
// Re-exported from the shared raw-batch machinery (the record index is
// format-agnostic; both the CSV and JSON batched paths partition on it).
pub use crate::raw_batch::index_records;
use recache_layout::ScratchColumn;
use recache_types::{Error, Result, ScalarType, Schema, Value};

/// Field delimiter: TPC-H convention.
pub const DELIMITER: u8 = b'|';

/// Serializes flat records (one scalar per schema field) into CSV bytes.
pub fn write_csv(schema: &Schema, records: &[Vec<Value>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * schema.len() * 8);
    for record in records {
        debug_assert_eq!(record.len(), schema.len());
        for (i, value) in record.iter().enumerate() {
            if i > 0 {
                out.push(DELIMITER);
            }
            write_scalar(&mut out, value);
        }
        out.push(b'\n');
    }
    out
}

fn write_scalar(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => {}
        Value::Bool(b) => out.extend_from_slice(if *b { b"true" } else { b"false" }),
        Value::Int(v) => {
            let mut buf = itoa_buffer();
            out.extend_from_slice(format_i64(*v, &mut buf));
        }
        Value::Float(v) => out.extend_from_slice(format_f64(*v).as_bytes()),
        Value::Str(s) => {
            debug_assert!(
                !s.bytes().any(|b| b == DELIMITER || b == b'\n'),
                "CSV strings must not contain delimiter or newline"
            );
            out.extend_from_slice(s.as_bytes());
        }
        Value::List(_) | Value::Struct(_) => {
            unreachable!("CSV schemas contain only scalar fields")
        }
    }
}

fn itoa_buffer() -> [u8; 20] {
    [0u8; 20]
}

/// Integer formatting without heap allocation.
fn format_i64(mut v: i64, buf: &mut [u8; 20]) -> &[u8] {
    if v == 0 {
        buf[0] = b'0';
        return &buf[..1];
    }
    let negative = v < 0;
    let mut i = buf.len();
    // Work with negative values to handle i64::MIN.
    if v > 0 {
        v = -v;
    }
    while v != 0 {
        i -= 1;
        buf[i] = b'0' + (-(v % 10)) as u8;
        v /= 10;
    }
    if negative {
        i -= 1;
        buf[i] = b'-';
    }
    let len = buf.len() - i;
    buf.copy_within(i.., 0);
    &buf[..len]
}

fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.2}")
    } else {
        format!("{v}")
    }
}

/// Parses one CSV field into a value of the given scalar type. Empty
/// fields are `Null`.
pub fn parse_field(bytes: &[u8], ty: ScalarType) -> Result<Value> {
    if bytes.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        ScalarType::Int => parse_i64(bytes).map(Value::Int).ok_or_else(|| {
            Error::parse(format!("invalid int: {}", String::from_utf8_lossy(bytes)))
        }),
        ScalarType::Float => std::str::from_utf8(bytes)
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Float)
            .ok_or_else(|| {
                Error::parse(format!("invalid float: {}", String::from_utf8_lossy(bytes)))
            }),
        ScalarType::Bool => match bytes {
            b"true" | b"1" => Ok(Value::Bool(true)),
            b"false" | b"0" => Ok(Value::Bool(false)),
            _ => Err(Error::parse(format!(
                "invalid bool: {}",
                String::from_utf8_lossy(bytes)
            ))),
        },
        ScalarType::Str => Ok(Value::Str(String::from_utf8_lossy(bytes).into_owned())),
    }
}

/// Parses one CSV field straight into a typed scratch column — the
/// batched tokenizer's hot path. No intermediate [`Value`], and string
/// fields copy their bytes exactly once, directly into the column's
/// arena (where [`parse_field`] allocates an owned `String` per field).
/// Empty fields append nulls, matching [`parse_field`].
#[inline]
pub fn parse_field_into(bytes: &[u8], ty: ScalarType, col: &mut ScratchColumn) -> Result<()> {
    if bytes.is_empty() {
        col.push_null();
        return Ok(());
    }
    match ty {
        ScalarType::Int => match parse_i64(bytes) {
            Some(v) => col.push_int(v),
            None => {
                return Err(Error::parse(format!(
                    "invalid int: {}",
                    String::from_utf8_lossy(bytes)
                )))
            }
        },
        ScalarType::Float => match parse_f64_fast(bytes).or_else(|| {
            std::str::from_utf8(bytes)
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
        }) {
            Some(v) => col.push_float(v),
            None => {
                return Err(Error::parse(format!(
                    "invalid float: {}",
                    String::from_utf8_lossy(bytes)
                )))
            }
        },
        ScalarType::Bool => match bytes {
            b"true" | b"1" => col.push_bool(true),
            b"false" | b"0" => col.push_bool(false),
            _ => {
                return Err(Error::parse(format!(
                    "invalid bool: {}",
                    String::from_utf8_lossy(bytes)
                )))
            }
        },
        ScalarType::Str => col.push_str_bytes(bytes),
    }
    Ok(())
}

/// Exact fast-path float parse for the plain `[-]digits[.digits]` forms
/// the CSV writer emits. When the significand fits in 15 decimal digits
/// it is exactly representable as an integer-valued `f64`, and for a
/// fraction of at most 22 digits the power of ten is exact too, so the
/// single division `mantissa / 10^frac` rounds exactly once — the result
/// is **bit-identical** to `str::parse::<f64>` (both are the correctly
/// rounded nearest double of the same rational). Anything else —
/// exponents, >15 significant digits, inf/nan — returns `None` and falls
/// back to the std parser.
#[inline]
fn parse_f64_fast(bytes: &[u8]) -> Option<f64> {
    const POW10: [f64; 23] = [
        1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16,
        1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
    ];
    let (neg, rest) = match bytes.first()? {
        b'-' => (true, &bytes[1..]),
        b'+' => (false, &bytes[1..]),
        _ => (false, bytes),
    };
    let mut mantissa: u64 = 0;
    let mut digits = 0usize;
    let mut frac = 0usize;
    let mut seen_dot = false;
    for &b in rest {
        match b {
            b'0'..=b'9' => {
                mantissa = mantissa.wrapping_mul(10) + u64::from(b - b'0');
                digits += 1;
                if seen_dot {
                    frac += 1;
                }
            }
            b'.' if !seen_dot => seen_dot = true,
            _ => return None,
        }
    }
    // ≤ 15 digits also bounds the wrapping arithmetic above well below
    // overflow.
    if digits == 0 || digits > 15 || frac >= POW10.len() {
        return None;
    }
    let v = mantissa as f64 / POW10[frac];
    Some(if neg { -v } else { v })
}

/// Hand-rolled integer parse: the hot path of CSV scans.
fn parse_i64(bytes: &[u8]) -> Option<i64> {
    let (negative, digits) = match bytes.first()? {
        b'-' => (true, &bytes[1..]),
        b'+' => (false, &bytes[1..]),
        _ => (false, bytes),
    };
    if digits.is_empty() {
        return None;
    }
    let mut acc: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return None;
        }
        acc = acc.checked_mul(10)?.checked_sub(i64::from(b - b'0'))?;
    }
    if negative {
        Some(acc)
    } else {
        acc.checked_neg()
    }
}

/// Full tokenizing scan. Invokes `on_record` with the parsed values of the
/// `accessed` fields (in schema order, compacted) and returns the
/// positional map built along the way.
pub fn scan_build_map(
    bytes: &[u8],
    schema: &Schema,
    accessed: &[bool],
    mut on_record: impl FnMut(usize, Vec<Value>) -> Result<()>,
) -> Result<PositionalMap> {
    let n_fields = schema.len();
    let stride = n_fields + 1;
    let approx_records = bytes.len() / 32 + 1;
    let mut record_offsets = Vec::with_capacity(approx_records + 1);
    let mut field_offsets: Vec<u32> = Vec::with_capacity(approx_records * stride);
    let n_accessed = accessed.iter().filter(|&&a| a).count();
    let types: Vec<ScalarType> = schema
        .fields()
        .iter()
        .map(|f| f.data_type.as_scalar().expect("CSV fields are scalars"))
        .collect();

    let mut pos = 0usize;
    let mut record_id = 0usize;
    while pos < bytes.len() {
        record_offsets.push(pos as u64);
        let line_start = pos;
        let mut field = 0usize;
        let mut field_start = pos;
        let mut values = Vec::with_capacity(n_accessed);
        loop {
            let b = if pos < bytes.len() { bytes[pos] } else { b'\n' };
            if b == DELIMITER || b == b'\n' {
                if field >= n_fields {
                    return Err(Error::parse_at(
                        format!("record {record_id} has more than {n_fields} fields"),
                        pos,
                    ));
                }
                field_offsets.push((field_start - line_start) as u32);
                if accessed[field] {
                    values.push(parse_field(&bytes[field_start..pos], types[field])?);
                }
                field += 1;
                field_start = pos + 1;
                if b == b'\n' {
                    break;
                }
            }
            pos += 1;
        }
        if field != n_fields {
            return Err(Error::parse_at(
                format!("record {record_id} has {field} fields, expected {n_fields}"),
                pos,
            ));
        }
        // Past the (possibly virtual, at EOF) newline. The record-length
        // slot includes it, so `field_span`'s `end - 1` always lands on
        // the delimiter that follows the field.
        pos = pos.min(bytes.len()) + 1;
        field_offsets.push((pos - line_start) as u32);
        on_record(record_id, values)?;
        record_id += 1;
    }
    record_offsets.push(bytes.len() as u64);
    Ok(PositionalMap::with_fields(
        record_offsets,
        field_offsets,
        n_fields,
    ))
}

/// Batched tokenizing scan over records `[rec_lo, rec_hi)` of the
/// [`index_records`] grid, in two tight passes:
///
/// 1. one word-at-a-time (SWAR) sweep over the window's bytes collects
///    every delimiter/newline position into a positions buffer;
/// 2. a per-record walk over that buffer validates the field count with
///    one O(1) check (valid records have exactly `n_fields - 1`
///    delimiters), bulk-appends the capture offsets, and parses **only
///    the accessed fields**, located by direct position indexing — the
///    per-byte tokenize branch and the per-unaccessed-field walk of the
///    row tokenizer both disappear.
///
/// `capture`, when given, receives per-record field offsets in exactly
/// [`scan_build_map`]'s layout (stride `n_fields + 1`, relative to the
/// record start, final slot = record length incl. newline), so
/// per-window capture slabs concatenate into a full positional map.
///
/// When the positional map no longer needs this window's capture
/// (`capture = None` — e.g. a redundant re-scan of a chunk whose slab is
/// already filled), the scan switches to a bounded per-record tokenize
/// that stops at the last *accessed* field and never examines the
/// trailing unaccessed bytes of each record — the same trust level as a
/// mapped re-scan, which already knows its field bounds. Full
/// field-count validation only happens in capture mode (the pass that
/// builds the map is the pass that vouches for the file).
#[allow(clippy::too_many_arguments)]
pub fn tokenize_range_into(
    bytes: &[u8],
    record_offsets: &[u64],
    rec_lo: usize,
    rec_hi: usize,
    n_fields: usize,
    accessed_fields: &[(usize, ScalarType, usize)],
    cols: &mut [ScratchColumn],
    capture: Option<&mut Vec<u32>>,
) -> Result<()> {
    let Some(capture) = capture else {
        return tokenize_range_skip_trailing(
            bytes,
            record_offsets,
            rec_lo,
            rec_hi,
            n_fields,
            accessed_fields,
            cols,
        );
    };
    let range_start = record_offsets[rec_lo] as usize;
    let range_end = record_offsets[rec_hi] as usize;
    debug_assert!(
        bytes.len() <= u32::MAX as usize,
        "batched CSV is u32-indexed"
    );

    // Pass 1: every '|' and '\n' position in the window, ascending.
    let window = &bytes[range_start..range_end];
    let mut positions: Vec<u32> = Vec::with_capacity((rec_hi - rec_lo) * (n_fields + 1));
    let mut i = 0usize;
    while i + 8 <= window.len() {
        let word = u64::from_le_bytes(window[i..i + 8].try_into().expect("8-byte window"));
        let mut mask = byte_eq_mask(word, DELIMITER) | byte_eq_mask(word, b'\n');
        while mask != 0 {
            positions.push((range_start + i) as u32 + mask.trailing_zeros() / 8);
            mask &= mask - 1;
        }
        i += 8;
    }
    for (pos, &b) in window.iter().enumerate().skip(i) {
        if b == DELIMITER || b == b'\n' {
            positions.push((range_start + pos) as u32);
        }
    }

    // Pass 2: per-record walk. The positions at cursor `p` are this
    // record's field delimiters, then (when present) its newline.
    let d = n_fields.saturating_sub(1);
    let mut p = 0usize;
    for rec in rec_lo..rec_hi {
        let line_start = record_offsets[rec] as usize;
        let span_end = record_offsets[rec + 1] as usize;
        // Content excludes the trailing newline when one exists (the
        // last record of a file may end at EOF instead).
        let content_end = if span_end > line_start && bytes[span_end - 1] == b'\n' {
            span_end - 1
        } else {
            span_end
        };
        let content_end_u32 = content_end as u32;
        // Exactly `d` delimiters before the record's end?
        let valid = p + d <= positions.len()
            && (d == 0 || positions[p + d - 1] < content_end_u32)
            && positions.get(p + d).is_none_or(|&x| x >= content_end_u32);
        if !valid {
            let mut found = 0usize;
            while p + found < positions.len() && positions[p + found] < content_end_u32 {
                found += 1;
            }
            return Err(Error::parse_at(
                format!("record {rec} has {} fields, expected {n_fields}", found + 1),
                content_end,
            ));
        }
        // Capture: field starts (relative), then the record-length slot
        // counting the (possibly virtual) newline — same convention as
        // `scan_build_map`.
        capture.push(0);
        let base = line_start as u32;
        capture.extend(positions[p..p + d].iter().map(|&pos| pos + 1 - base));
        capture.push(content_end_u32 + 1 - base);
        // Parse the accessed fields, located by direct indexing.
        for &(field, ty, slot) in accessed_fields {
            let start = if field == 0 {
                line_start
            } else {
                positions[p + field - 1] as usize + 1
            };
            let end = if field == d {
                content_end
            } else {
                positions[p + field] as usize
            };
            parse_field_into(&bytes[start..end], ty, &mut cols[slot])?;
        }
        p += d;
        // Consume the record's own newline position, if present.
        if positions.get(p) == Some(&content_end_u32) {
            p += 1;
        }
    }
    Ok(())
}

/// Capture-free batched tokenize: per record, delimiters are collected
/// only until every *accessed* field is bounded, then the cursor jumps
/// straight to the next record start (known from the index) — trailing
/// unaccessed fields are never tokenized, parsed, or even read. Used for
/// first-scan chunks whose capture slab is already filled (a redundant
/// re-scan can't contribute to the positional map, so it shouldn't pay
/// for it either).
fn tokenize_range_skip_trailing(
    bytes: &[u8],
    record_offsets: &[u64],
    rec_lo: usize,
    rec_hi: usize,
    n_fields: usize,
    accessed_fields: &[(usize, ScalarType, usize)],
    cols: &mut [ScratchColumn],
) -> Result<()> {
    let Some(max_field) = accessed_fields.iter().map(|&(f, _, _)| f).max() else {
        // Nothing projected (count(*)-style): the record windows alone
        // carry all the information this scan produces.
        return Ok(());
    };
    let d = n_fields.saturating_sub(1);
    // Delimiters needed to bound every accessed field: the max accessed
    // field ends at its following delimiter, or at the record end when
    // it is the schema's last field.
    let needed = if max_field == d {
        max_field
    } else {
        max_field + 1
    };
    let mut positions: Vec<u32> = Vec::with_capacity(needed + 8);
    for rec in rec_lo..rec_hi {
        let line_start = record_offsets[rec] as usize;
        let span_end = record_offsets[rec + 1] as usize;
        let content_end = if span_end > line_start && bytes[span_end - 1] == b'\n' {
            span_end - 1
        } else {
            span_end
        };
        positions.clear();
        let mut i = line_start;
        while positions.len() < needed && i + 8 <= content_end {
            let word = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte window"));
            let mut mask = byte_eq_mask(word, DELIMITER);
            while mask != 0 {
                positions.push(i as u32 + mask.trailing_zeros() / 8);
                mask &= mask - 1;
            }
            i += 8;
        }
        while positions.len() < needed && i < content_end {
            if bytes[i] == DELIMITER {
                positions.push(i as u32);
            }
            i += 1;
        }
        if positions.len() < needed {
            return Err(Error::parse_at(
                format!(
                    "record {rec} has {} fields, expected {n_fields}",
                    positions.len() + 1
                ),
                content_end,
            ));
        }
        for &(field, ty, slot) in accessed_fields {
            let start = if field == 0 {
                line_start
            } else {
                positions[field - 1] as usize + 1
            };
            let end = if field == d {
                content_end
            } else {
                positions[field] as usize
            };
            parse_field_into(&bytes[start..end], ty, &mut cols[slot])?;
        }
    }
    Ok(())
}

/// Batched positional-map scan over records `[rec_lo, rec_hi)`: parses
/// the accessed fields (`(field, type, slot)` triples) through the map's
/// field spans, straight into typed scratch columns.
pub fn parse_range_with_map(
    bytes: &[u8],
    map: &PositionalMap,
    rec_lo: usize,
    rec_hi: usize,
    accessed_fields: &[(usize, ScalarType, usize)],
    cols: &mut [ScratchColumn],
) -> Result<()> {
    for rec in rec_lo..rec_hi {
        for &(field, ty, slot) in accessed_fields {
            let (start, end) = map.field_span(rec, field);
            parse_field_into(&bytes[start..end.min(bytes.len())], ty, &mut cols[slot])?;
        }
    }
    Ok(())
}

/// Positional-map-assisted scan: parses only the accessed fields of every
/// record, without tokenizing the rest of the line.
pub fn scan_with_map(
    bytes: &[u8],
    schema: &Schema,
    map: &PositionalMap,
    accessed: &[bool],
    mut on_record: impl FnMut(usize, Vec<Value>) -> Result<()>,
) -> Result<()> {
    let accessed_fields: Vec<(usize, ScalarType)> = schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(i, _)| accessed[*i])
        .map(|(i, f)| (i, f.data_type.as_scalar().expect("CSV fields are scalars")))
        .collect();
    for record in 0..map.record_count() {
        let mut values = Vec::with_capacity(accessed_fields.len());
        for &(field, ty) in &accessed_fields {
            let (start, end) = map.field_span(record, field);
            values.push(parse_field(&bytes[start..end.min(bytes.len())], ty)?);
        }
        on_record(record, values)?;
    }
    Ok(())
}

/// Parses the accessed fields of a single record through the map: the
/// re-read path used by lazy (offsets-only) caches.
pub fn parse_record_at(
    bytes: &[u8],
    schema: &Schema,
    map: &PositionalMap,
    record: usize,
    accessed: &[bool],
) -> Result<Vec<Value>> {
    let mut values = Vec::new();
    for (field, f) in schema.fields().iter().enumerate() {
        if !accessed[field] {
            continue;
        }
        let ty = f.data_type.as_scalar().expect("CSV fields are scalars");
        let (start, end) = map.field_span(record, field);
        values.push(parse_field(&bytes[start..end.min(bytes.len())], ty)?);
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::required("b", DataType::Float),
            Field::required("c", DataType::Str),
        ])
    }

    fn sample() -> Vec<u8> {
        write_csv(
            &schema(),
            &[
                vec![Value::Int(1), Value::Float(1.5), Value::from("x")],
                vec![Value::Int(-2), Value::Float(2.0), Value::from("yy")],
                vec![Value::Null, Value::Float(3.25), Value::from("")],
            ],
        )
    }

    #[test]
    fn writer_format_is_pipe_delimited() {
        let bytes = sample();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text, "1|1.5|x\n-2|2.00|yy\n|3.25|\n");
    }

    #[test]
    fn full_scan_parses_all_fields_and_builds_map() {
        let bytes = sample();
        let mut rows = Vec::new();
        let map = scan_build_map(&bytes, &schema(), &[true, true, true], |id, vals| {
            rows.push((id, vals));
            Ok(())
        })
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0].1,
            vec![Value::Int(1), Value::Float(1.5), Value::from("x")]
        );
        assert_eq!(rows[1].1[0], Value::Int(-2));
        // Empty fields parse as Null for every type (the writer emits
        // nothing for Null, so Str("") does not round-trip — documented).
        assert_eq!(rows[2].1[0], Value::Null);
        assert_eq!(rows[2].1[2], Value::Null);
        assert_eq!(map.record_count(), 3);
    }

    #[test]
    fn projected_first_scan_skips_unaccessed_fields() {
        let bytes = sample();
        let mut rows = Vec::new();
        scan_build_map(&bytes, &schema(), &[false, true, false], |_, vals| {
            rows.push(vals);
            Ok(())
        })
        .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Float(1.5)],
                vec![Value::Float(2.0)],
                vec![Value::Float(3.25)],
            ]
        );
    }

    #[test]
    fn mapped_scan_matches_full_scan() {
        let bytes = sample();
        let map = scan_build_map(&bytes, &schema(), &[false, false, false], |_, _| Ok(())).unwrap();
        let mut rows = Vec::new();
        scan_with_map(&bytes, &schema(), &map, &[true, false, true], |id, vals| {
            rows.push((id, vals));
            Ok(())
        })
        .unwrap();
        assert_eq!(rows[0].1, vec![Value::Int(1), Value::from("x")]);
        assert_eq!(rows[1].1, vec![Value::Int(-2), Value::from("yy")]);
    }

    #[test]
    fn parse_record_at_reads_single_records() {
        let bytes = sample();
        let map = scan_build_map(&bytes, &schema(), &[false, false, false], |_, _| Ok(())).unwrap();
        let vals = parse_record_at(&bytes, &schema(), &map, 1, &[true, true, false]).unwrap();
        assert_eq!(vals, vec![Value::Int(-2), Value::Float(2.0)]);
    }

    #[test]
    fn missing_trailing_newline_is_accepted() {
        let bytes = b"5|2.50|end".to_vec();
        let mut rows = Vec::new();
        let map = scan_build_map(&bytes, &schema(), &[true, true, true], |_, vals| {
            rows.push(vals);
            Ok(())
        })
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0],
            vec![Value::Int(5), Value::Float(2.5), Value::from("end")]
        );
        assert_eq!(map.record_count(), 1);
    }

    #[test]
    fn field_count_mismatch_is_an_error() {
        let bytes = b"1|2.0\n".to_vec();
        let err = scan_build_map(&bytes, &schema(), &[true, true, true], |_, _| Ok(()));
        assert!(err.is_err());
        let bytes = b"1|2.0|x|extra\n".to_vec();
        let err = scan_build_map(&bytes, &schema(), &[true, true, true], |_, _| Ok(()));
        assert!(err.is_err());
    }

    #[test]
    fn int_parser_handles_extremes() {
        assert_eq!(parse_i64(b"9223372036854775807"), Some(i64::MAX));
        assert_eq!(parse_i64(b"-9223372036854775808"), Some(i64::MIN));
        assert_eq!(parse_i64(b"9223372036854775808"), None); // overflow
        assert_eq!(parse_i64(b"+42"), Some(42));
        assert_eq!(parse_i64(b"4x2"), None);
        assert_eq!(parse_i64(b"-"), None);
    }

    #[test]
    fn format_i64_matches_display() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            let mut buf = [0u8; 20];
            assert_eq!(format_i64(v, &mut buf), v.to_string().as_bytes());
        }
    }

    #[test]
    fn index_records_matches_scan_build_map_offsets() {
        for bytes in [
            sample(),
            b"5|2.50|end".to_vec(), // no trailing newline
            Vec::new(),
        ] {
            let mut from_scan: Vec<u64> = Vec::new();
            // Rebuild via the tokenizer's spans: scan_build_map exposes
            // them through the posmap record spans.
            if !bytes.is_empty() {
                let map = scan_build_map(&bytes, &schema(), &[false, false, false], |_, _| Ok(()))
                    .unwrap();
                for r in 0..map.record_count() {
                    from_scan.push(map.record_span(r).0 as u64);
                }
                from_scan.push(bytes.len() as u64);
            } else {
                from_scan.push(0);
            }
            assert_eq!(index_records(&bytes), from_scan);
        }
    }

    #[test]
    fn tokenize_range_matches_row_scan_and_capture_layout() {
        let bytes = sample();
        let offsets = index_records(&bytes);
        assert_eq!(offsets.len(), 4);
        // Project fields 0 and 2 into slots 0 and 1.
        let accessed = [(0usize, ScalarType::Int, 0usize), (2, ScalarType::Str, 1)];
        let mut cols = vec![
            ScratchColumn::new(ScalarType::Int),
            ScratchColumn::new(ScalarType::Str),
        ];
        let mut capture = Vec::new();
        tokenize_range_into(
            &bytes,
            &offsets,
            0,
            3,
            3,
            &accessed,
            &mut cols,
            Some(&mut capture),
        )
        .unwrap();
        let ints = cols[0].as_batch_column();
        let strs = cols[1].as_batch_column();
        assert_eq!(ints.value(0), Value::Int(1));
        assert_eq!(ints.value(1), Value::Int(-2));
        assert_eq!(ints.value(2), Value::Null);
        assert_eq!(strs.value(0), Value::from("x"));
        assert_eq!(strs.value(1), Value::from("yy"));
        assert_eq!(strs.value(2), Value::Null); // empty field -> null
                                                // Capture slab must equal the full tokenizer's field offsets: a
                                                // map assembled from it answers the same spans.
        let map = PositionalMap::with_fields(offsets.clone(), capture, 3);
        let reference =
            scan_build_map(&bytes, &schema(), &[false, false, false], |_, _| Ok(())).unwrap();
        for rec in 0..3 {
            for field in 0..3 {
                assert_eq!(
                    map.field_span(rec, field),
                    reference.field_span(rec, field),
                    "record {rec} field {field}"
                );
            }
        }
    }

    #[test]
    fn tokenize_range_detects_field_count_mismatch() {
        let bytes = b"1|2.0\n1|2.0|x|y\n".to_vec();
        let offsets = index_records(&bytes);
        let mut capture = Vec::new();
        assert!(
            tokenize_range_into(&bytes, &offsets, 0, 1, 3, &[], &mut [], Some(&mut capture))
                .is_err()
        );
        capture.clear();
        assert!(
            tokenize_range_into(&bytes, &offsets, 1, 2, 3, &[], &mut [], Some(&mut capture))
                .is_err()
        );
    }

    #[test]
    fn capture_free_tokenize_skips_trailing_fields_and_matches_full_mode() {
        // Wide records where only leading fields are accessed: the
        // capture-free mode must parse identically while never needing
        // the trailing delimiters.
        let schema = Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::required("b", DataType::Float),
            Field::required("c", DataType::Str),
        ]);
        let bytes = write_csv(
            &schema,
            &[
                vec![Value::Int(7), Value::Float(0.5), Value::from("tail-a")],
                vec![Value::Null, Value::Float(1.5), Value::from("tail-b")],
            ],
        );
        let offsets = index_records(&bytes);
        let accessed = [(0usize, ScalarType::Int, 0usize), (1, ScalarType::Float, 1)];
        let run = |capture: bool| {
            let mut cols = vec![
                ScratchColumn::new(ScalarType::Int),
                ScratchColumn::new(ScalarType::Float),
            ];
            let mut slab = Vec::new();
            tokenize_range_into(
                &bytes,
                &offsets,
                0,
                2,
                3,
                &accessed,
                &mut cols,
                capture.then_some(&mut slab),
            )
            .unwrap();
            let views: Vec<_> = cols.iter().map(|c| c.as_batch_column()).collect();
            (0..2)
                .map(|r| views.iter().map(|v| v.value(r)).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
        // Capture-free mode still validates that accessed fields exist.
        let short = b"1|2.0\n".to_vec();
        let short_offsets = index_records(&short);
        let mut cols = vec![ScratchColumn::new(ScalarType::Str)];
        assert!(tokenize_range_into(
            &short,
            &short_offsets,
            0,
            1,
            4,
            &[(3usize, ScalarType::Str, 0usize)],
            &mut cols,
            None,
        )
        .is_err());
        // No accessed fields: nothing to tokenize, trivially succeeds.
        tokenize_range_into(&short, &short_offsets, 0, 1, 3, &[], &mut [], None).unwrap();
    }

    #[test]
    fn parse_range_with_map_matches_scan_with_map() {
        let bytes = sample();
        let map = scan_build_map(&bytes, &schema(), &[false, false, false], |_, _| Ok(())).unwrap();
        let mut cols = vec![
            ScratchColumn::new(ScalarType::Float),
            ScratchColumn::new(ScalarType::Str),
        ];
        parse_range_with_map(
            &bytes,
            &map,
            1,
            3,
            &[(1, ScalarType::Float, 0), (2, ScalarType::Str, 1)],
            &mut cols,
        )
        .unwrap();
        let floats = cols[0].as_batch_column();
        assert_eq!(floats.value(0), Value::Float(2.0));
        assert_eq!(floats.value(1), Value::Float(3.25));
        let strs = cols[1].as_batch_column();
        assert_eq!(strs.value(0), Value::from("yy"));
        assert_eq!(strs.value(1), Value::Null);
    }

    #[test]
    fn fast_float_parse_is_bit_identical_to_std() {
        // Plain decimal forms: must agree bit-for-bit with str::parse.
        for s in [
            "0",
            "1",
            "-1",
            "0.5",
            "-0.5",
            "53107.85",
            "0.00",
            "123456789012345",
            "0.00000000000001",
            "99999.99",
            "-42.125",
            "3.14159",
            "1.",
            ".5",
            "+2.75",
        ] {
            let fast = parse_f64_fast(s.as_bytes()).unwrap_or_else(|| panic!("fast path on {s}"));
            let std = s.parse::<f64>().unwrap();
            assert_eq!(fast.to_bits(), std.to_bits(), "{s}");
        }
        // Forms outside the fast path fall back (None), never wrong.
        for s in ["1e5", "inf", "nan", "1234567890123456", "1.2.3", ""] {
            assert_eq!(parse_f64_fast(s.as_bytes()), None, "{s}");
        }
        // Seeded sweep over writer-shaped values.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let cents = (state >> 20) % 10_000_000;
            let s = format!("{}.{:02}", cents / 100, cents % 100);
            let fast = parse_f64_fast(s.as_bytes()).unwrap();
            assert_eq!(fast.to_bits(), s.parse::<f64>().unwrap().to_bits(), "{s}");
        }
    }

    #[test]
    fn parse_field_into_rejects_malformed_fields() {
        let mut col = ScratchColumn::new(ScalarType::Int);
        assert!(parse_field_into(b"4x", ScalarType::Int, &mut col).is_err());
        let mut col = ScratchColumn::new(ScalarType::Bool);
        assert!(parse_field_into(b"maybe", ScalarType::Bool, &mut col).is_err());
        let mut col = ScratchColumn::new(ScalarType::Float);
        assert!(parse_field_into(b"not-a-float", ScalarType::Float, &mut col).is_err());
    }

    #[test]
    fn bool_parsing() {
        assert_eq!(
            parse_field(b"true", ScalarType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            parse_field(b"0", ScalarType::Bool).unwrap(),
            Value::Bool(false)
        );
        assert!(parse_field(b"maybe", ScalarType::Bool).is_err());
    }
}
