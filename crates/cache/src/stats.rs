//! Per-entry cost statistics, the benefit metric (Fig. 8), and the
//! registry's aggregate counters (atomic, so concurrent sessions can
//! bump them without locking).

use std::sync::atomic::{AtomicU64, Ordering};

/// Measured costs of one cached item, in the paper's notation:
///
/// * `n` — how many times the cache has been reused,
/// * `t` — time incurred executing the operator over raw data (includes
///   parsing and any index construction),
/// * `c` — time incurred caching the operator's results in memory,
/// * `s` — time spent scanning the in-memory cache when it is reused,
/// * `l` — time spent finding a matching operator cache,
/// * `B` (`bytes`) — size of the cache in bytes.
#[derive(Debug, Clone, Default)]
pub struct EntryStats {
    pub n: u64,
    pub t_ns: u64,
    pub c_ns: u64,
    /// Mean scan time over reuses (running average).
    pub s_ns: u64,
    /// Mean lookup time (running average).
    pub l_ns: u64,
    pub bytes: usize,
    /// Logical clock of the last access (LRU baselines).
    pub last_access: u64,
    /// Total accesses including the building query (LFU baselines).
    pub access_count: u64,
    /// Logical clock at admission.
    pub created_at: u64,
}

impl EntryStats {
    /// The benefit metric `b(p) = n·(t + c − s − l)/log₂(B)`.
    ///
    /// "The resulting benefit metric ... is always non-negative assuming
    /// the cost of lookup and the cost of scanning the in-memory cache
    /// are small" — we clamp at zero in case a pathological measurement
    /// violates the assumption.
    pub fn benefit(&self) -> f64 {
        let saved = (self.t_ns + self.c_ns) as f64 - (self.s_ns + self.l_ns) as f64;
        let saved = saved.max(0.0);
        // log2(B), guarded for tiny entries: log2 must stay >= 1 so small
        // items are preferred but never divide by ~0.
        let log_b = (self.bytes.max(2) as f64).log2().max(1.0);
        (self.n as f64) * saved / log_b
    }

    /// Cost to reconstruct the item if evicted (`t + c`).
    pub fn rebuild_cost_ns(&self) -> u64 {
        self.t_ns + self.c_ns
    }

    /// Records one reuse: bumps `n`, folds the observed scan and lookup
    /// times into running means, and touches the access clock.
    pub fn record_reuse(&mut self, scan_ns: u64, lookup_ns: u64, clock: u64) {
        self.n += 1;
        self.access_count += 1;
        self.last_access = clock;
        self.s_ns = running_mean(self.s_ns, scan_ns, self.n);
        self.l_ns = running_mean(self.l_ns, lookup_ns, self.n);
    }
}

/// Aggregate registry counters (diagnostics and experiment output) — a
/// plain snapshot taken from [`AtomicRegistryCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryCounters {
    pub admissions: u64,
    pub evictions: u64,
    pub bytes_evicted: u64,
    pub hits_exact: u64,
    pub hits_subsuming: u64,
    pub misses: u64,
    /// Duplicate in-flight cacheable scans that waited for a concurrent
    /// session's admission and reused it (single-flight coalescing).
    pub coalesced: u64,
    /// Entries explicitly removed (`remove`), as opposed to evicted by
    /// the policy. Closes the reconciliation identity
    /// `admissions == residents + evictions + removals`.
    pub removals: u64,
    /// Queries that surfaced a non-retryable scan error (after any
    /// degraded fallback also failed).
    pub failed_scans: u64,
    /// Chunk-granularity retries of transient scan faults that were
    /// absorbed by the bounded-retry loop.
    pub retried_chunks: u64,
    /// Queries that hit their deadline or were cancelled.
    pub timeouts: u64,
    /// Batched raw scans that fell back to the row-at-a-time path after
    /// an I/O failure and completed there.
    pub degraded_fallbacks: u64,
    /// Single-flight followers promoted to leader after the previous
    /// leader's scan failed or was abandoned.
    pub leader_failovers: u64,
    /// Queries served whole from the semantic result cache (no executor
    /// work — distinct from the data-cache `hits_*` counters).
    pub result_hits: u64,
    /// Result-cache lookups that fell through to the executor.
    pub result_misses: u64,
    /// Result entries evicted by the result cache's own byte budget.
    pub result_evictions: u64,
    /// Result entries dropped because a pinned `(source, signature)`
    /// data-cache entry was evicted/removed, or a source changed.
    pub result_invalidations: u64,
    /// Followers whose predicate was *subsumed* by a concurrent leader's
    /// in-flight scan and who waited for the leader's admitted entry
    /// instead of re-scanning raw (distinct from exact-key `coalesced`).
    pub coalesced_subsumed: u64,
    /// Shared multi-predicate raw passes: one per batched scan that
    /// served two or more concurrently-admitted queries.
    pub shared_scans: u64,
    /// Total queries served by shared scans (each shared pass contributes
    /// its participant count, leader included).
    pub shared_scan_participants: u64,
}

/// The registry's live counters. All fields are relaxed atomics: each is
/// an independent monotonic event count, so cross-counter consistency is
/// only guaranteed at quiescence (which is what the reconciliation tests
/// assert).
#[derive(Debug, Default)]
pub struct AtomicRegistryCounters {
    pub admissions: AtomicU64,
    pub evictions: AtomicU64,
    pub bytes_evicted: AtomicU64,
    pub hits_exact: AtomicU64,
    pub hits_subsuming: AtomicU64,
    pub misses: AtomicU64,
    pub coalesced: AtomicU64,
    pub removals: AtomicU64,
    pub failed_scans: AtomicU64,
    pub retried_chunks: AtomicU64,
    pub timeouts: AtomicU64,
    pub degraded_fallbacks: AtomicU64,
    pub leader_failovers: AtomicU64,
    pub result_hits: AtomicU64,
    pub result_misses: AtomicU64,
    pub result_evictions: AtomicU64,
    pub result_invalidations: AtomicU64,
    pub coalesced_subsumed: AtomicU64,
    pub shared_scans: AtomicU64,
    pub shared_scan_participants: AtomicU64,
}

impl AtomicRegistryCounters {
    pub fn snapshot(&self) -> RegistryCounters {
        RegistryCounters {
            admissions: self.admissions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_evicted: self.bytes_evicted.load(Ordering::Relaxed),
            hits_exact: self.hits_exact.load(Ordering::Relaxed),
            hits_subsuming: self.hits_subsuming.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            removals: self.removals.load(Ordering::Relaxed),
            failed_scans: self.failed_scans.load(Ordering::Relaxed),
            retried_chunks: self.retried_chunks.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            degraded_fallbacks: self.degraded_fallbacks.load(Ordering::Relaxed),
            leader_failovers: self.leader_failovers.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            result_evictions: self.result_evictions.load(Ordering::Relaxed),
            result_invalidations: self.result_invalidations.load(Ordering::Relaxed),
            coalesced_subsumed: self.coalesced_subsumed.load(Ordering::Relaxed),
            shared_scans: self.shared_scans.load(Ordering::Relaxed),
            shared_scan_participants: self.shared_scan_participants.load(Ordering::Relaxed),
        }
    }
}

fn running_mean(current: u64, observed: u64, n: u64) -> u64 {
    if n <= 1 {
        observed
    } else {
        ((current as u128 * (n - 1) as u128 + observed as u128) / n as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(n: u64, t: u64, c: u64, s: u64, l: u64, bytes: usize) -> EntryStats {
        EntryStats {
            n,
            t_ns: t,
            c_ns: c,
            s_ns: s,
            l_ns: l,
            bytes,
            ..Default::default()
        }
    }

    #[test]
    fn benefit_formula_matches_figure_8() {
        // b = n(t + c - s - l)/log2(B)
        let st = stats(3, 1000, 500, 100, 50, 1 << 20);
        let expected = 3.0 * (1000.0 + 500.0 - 150.0) / 20.0;
        assert!((st.benefit() - expected).abs() < 1e-9);
    }

    #[test]
    fn benefit_is_nonnegative() {
        let st = stats(5, 10, 10, 1000, 1000, 64);
        assert_eq!(st.benefit(), 0.0);
    }

    #[test]
    fn more_reuse_means_more_benefit() {
        let low = stats(1, 1000, 100, 10, 10, 4096);
        let high = stats(10, 1000, 100, 10, 10, 4096);
        assert!(high.benefit() > low.benefit());
    }

    #[test]
    fn smaller_items_preferred_at_equal_cost() {
        let small = stats(2, 1000, 100, 10, 10, 1 << 10);
        let large = stats(2, 1000, 100, 10, 10, 1 << 24);
        assert!(small.benefit() > large.benefit());
    }

    #[test]
    fn record_reuse_updates_means_and_clock() {
        let mut st = stats(0, 1000, 100, 0, 0, 4096);
        st.record_reuse(100, 10, 7);
        assert_eq!(st.n, 1);
        assert_eq!(st.s_ns, 100);
        assert_eq!(st.l_ns, 10);
        assert_eq!(st.last_access, 7);
        st.record_reuse(300, 30, 9);
        assert_eq!(st.n, 2);
        assert_eq!(st.s_ns, 200);
        assert_eq!(st.l_ns, 20);
        assert_eq!(st.last_access, 9);
    }

    #[test]
    fn tiny_entries_do_not_divide_by_zero() {
        let st = stats(1, 100, 0, 0, 0, 1);
        assert!(st.benefit().is_finite());
        assert!(st.benefit() > 0.0);
    }
}
