//! The cache registry: exact-match + R-tree range subsumption (§3.2–3.3),
//! statistics upkeep, and capacity enforcement through an eviction policy.

use crate::eviction::{EvictView, EvictionContext, EvictionPolicy};
use crate::layout_model::LayoutHistory;
use crate::stats::EntryStats;
use recache_data::FileFormat;
use recache_layout::CacheData;
use recache_rtree::{RTree, Rect};
use std::collections::HashMap;
use std::time::Instant;

pub use crate::eviction::EntryId;

/// A closed interval constraint on one leaf of the source schema.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafRange {
    pub leaf: usize,
    pub lo: f64,
    pub hi: f64,
}

impl LeafRange {
    /// True when `self` (the cached predicate) is weaker than or equal to
    /// `other` (the query predicate) on the same leaf.
    pub fn covers(&self, other: &LeafRange) -> bool {
        self.leaf == other.leaf && self.lo <= other.lo && self.hi >= other.hi
    }
}

/// Canonical signature of a conjunctive range predicate, used for
/// exact-match lookup.
pub fn range_signature(ranges: &[LeafRange]) -> String {
    let mut sorted: Vec<&LeafRange> = ranges.iter().collect();
    sorted.sort_by_key(|a| a.leaf);
    let mut out = String::new();
    for r in sorted {
        out.push_str(&format!("{}:[{};{}];", r.leaf, r.lo, r.hi));
    }
    if out.is_empty() {
        out.push_str("true");
    }
    out
}

/// One cached operator result.
pub struct CacheEntry {
    pub id: EntryId,
    /// Source (table) name.
    pub source: String,
    /// Raw format of the source (Proteus' JSON≫CSV policy needs it).
    pub format: FileFormat,
    /// Canonical predicate signature.
    pub signature: String,
    /// Conjunctive range predicate (empty = caches the whole source).
    pub ranges: Vec<LeafRange>,
    /// Whether the entry participates in subsumption (false when the
    /// predicate had clauses beyond conjunctive ranges).
    pub subsumable: bool,
    /// The materialized data, in its current layout.
    pub data: CacheData,
    pub stats: EntryStats,
    /// Layout-selection observation window.
    pub history: LayoutHistory,
}

/// Oracle interface for the offline eviction algorithms: given an entry
/// and the current query clock, report the next query index that would
/// reuse it.
pub trait FutureOracle: Send {
    fn next_use(&self, entry: &CacheEntry, clock: u64) -> Option<u64>;
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchResult {
    /// Same source + identical predicate.
    Exact(EntryId),
    /// A cached predicate that covers the query's; the query re-filters.
    Subsuming(EntryId),
    Miss,
}

impl MatchResult {
    pub fn entry(&self) -> Option<EntryId> {
        match self {
            MatchResult::Exact(id) | MatchResult::Subsuming(id) => Some(*id),
            MatchResult::Miss => None,
        }
    }
}

/// Aggregate registry counters (diagnostics and experiment output).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistryCounters {
    pub admissions: u64,
    pub evictions: u64,
    pub bytes_evicted: u64,
    pub hits_exact: u64,
    pub hits_subsuming: u64,
    pub misses: u64,
}

/// The ReCache cache: entries, indexes, policy, capacity.
pub struct CacheRegistry {
    entries: HashMap<EntryId, CacheEntry>,
    /// (source, signature) → entry, for exact matches.
    by_signature: HashMap<(String, String), EntryId>,
    /// (source, leaf) → interval index over cached range clauses.
    rtrees: HashMap<(String, usize), RTree<1, EntryId>>,
    /// Entries with no range predicate (whole-source caches), per source.
    unconstrained: HashMap<String, Vec<EntryId>>,
    policy: Box<dyn EvictionPolicy>,
    oracle: Option<Box<dyn FutureOracle>>,
    /// `None` = unlimited (the paper's "infinite cache" baseline).
    capacity: Option<usize>,
    total_bytes: usize,
    next_id: EntryId,
    clock: u64,
    pub counters: RegistryCounters,
}

impl CacheRegistry {
    pub fn new(policy: Box<dyn EvictionPolicy>, capacity: Option<usize>) -> Self {
        CacheRegistry {
            entries: HashMap::new(),
            by_signature: HashMap::new(),
            rtrees: HashMap::new(),
            unconstrained: HashMap::new(),
            policy,
            oracle: None,
            capacity,
            total_bytes: 0,
            next_id: 1,
            clock: 0,
            counters: RegistryCounters::default(),
        }
    }

    /// Installs an offline future oracle (required by the offline
    /// eviction baselines).
    pub fn set_oracle(&mut self, oracle: Box<dyn FutureOracle>) {
        self.oracle = Some(oracle);
    }

    /// Advances the logical query clock; call once per query.
    pub fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    pub fn clock(&self) -> u64 {
        self.clock
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    pub fn entry(&self, id: EntryId) -> Option<&CacheEntry> {
        self.entries.get(&id)
    }

    pub fn entry_mut(&mut self, id: EntryId) -> Option<&mut CacheEntry> {
        self.entries.get_mut(&id)
    }

    /// Iterates over all entries (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// True when a cached item from this source is resident *and has been
    /// reused* (the admission controller's working-set heuristic). Mere
    /// residency is not enough: treating every touched file as hot would
    /// make the overhead threshold bind only on each file's very first
    /// query.
    pub fn source_in_working_set(&self, source: &str) -> bool {
        self.entries
            .values()
            .any(|e| e.source == source && e.stats.n > 0)
    }

    /// Looks up a match for a query over `source`: exact by `signature`,
    /// then subsumption over the query's conjunctive `ranges`. Returns
    /// the match and the measured lookup time `l` in nanoseconds.
    pub fn lookup(
        &mut self,
        source: &str,
        signature: &str,
        ranges: &[LeafRange],
    ) -> (MatchResult, u64) {
        let t0 = Instant::now();
        let result = self.lookup_inner(source, signature, ranges);
        let lookup_ns = t0.elapsed().as_nanos() as u64;
        match result {
            MatchResult::Exact(_) => self.counters.hits_exact += 1,
            MatchResult::Subsuming(_) => self.counters.hits_subsuming += 1,
            MatchResult::Miss => self.counters.misses += 1,
        }
        (result, lookup_ns)
    }

    fn lookup_inner(&self, source: &str, signature: &str, ranges: &[LeafRange]) -> MatchResult {
        // 1. Exact signature match.
        if let Some(&id) = self
            .by_signature
            .get(&(source.to_owned(), signature.to_owned()))
        {
            return MatchResult::Exact(id);
        }
        // 2. Subsumption: gather candidates from the per-leaf interval
        //    indexes, verify each candidate's full predicate is weaker.
        let mut best: Option<(usize, EntryId)> = None;
        let mut consider = |id: EntryId, entries: &HashMap<EntryId, CacheEntry>| {
            let entry = &entries[&id];
            let covers = entry
                .ranges
                .iter()
                .all(|er| ranges.iter().any(|qr| er.covers(qr)));
            if covers {
                let cost_proxy = entry.data.flattened_rows();
                if best.is_none_or(|(c, _)| cost_proxy < c) {
                    best = Some((cost_proxy, id));
                }
            }
        };
        for qr in ranges {
            if let Some(tree) = self.rtrees.get(&(source.to_owned(), qr.leaf)) {
                let query = Rect::new([qr.lo], [qr.hi]);
                let mut ids = Vec::new();
                tree.covering(&query, &mut |_, id| ids.push(*id));
                for id in ids {
                    consider(id, &self.entries);
                }
            }
        }
        // 3. Whole-source caches subsume everything on the source.
        if let Some(ids) = self.unconstrained.get(source) {
            for &id in ids {
                consider(id, &self.entries);
            }
        }
        match best {
            Some((_, id)) => MatchResult::Subsuming(id),
            None => MatchResult::Miss,
        }
    }

    /// Records a reuse of `id`: scan time `s`, lookup time `l`.
    pub fn record_reuse(&mut self, id: EntryId, scan_ns: u64, lookup_ns: u64) {
        let clock = self.clock;
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.stats.record_reuse(scan_ns, lookup_ns, clock);
            self.policy.on_access(id, &entry.stats);
        }
    }

    /// Admits a new entry (then enforces capacity, which may evict it
    /// right back if its benefit is lowest — the admission gate of §5.1).
    ///
    /// `subsumable` must be false when the predicate has clauses beyond
    /// the conjunctive ranges (the entry then only serves exact matches).
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &mut self,
        source: &str,
        format: FileFormat,
        signature: String,
        ranges: Vec<LeafRange>,
        subsumable: bool,
        data: CacheData,
        t_ns: u64,
        c_ns: u64,
        lookup_ns: u64,
    ) -> EntryId {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = data.byte_size();
        let stats = EntryStats {
            n: 0,
            t_ns,
            c_ns,
            s_ns: 0,
            l_ns: lookup_ns,
            bytes,
            last_access: self.clock,
            access_count: 1,
            created_at: self.clock,
        };
        let entry = CacheEntry {
            id,
            source: source.to_owned(),
            format,
            signature: signature.clone(),
            ranges,
            subsumable,
            data,
            stats,
            history: LayoutHistory::new(),
        };
        // Index.
        self.by_signature.insert((source.to_owned(), signature), id);
        if subsumable {
            if entry.ranges.is_empty() {
                self.unconstrained
                    .entry(source.to_owned())
                    .or_default()
                    .push(id);
            } else {
                for r in &entry.ranges {
                    self.rtrees
                        .entry((source.to_owned(), r.leaf))
                        .or_default()
                        .insert(Rect::new([r.lo], [r.hi]), id);
                }
            }
        }
        self.policy.on_admit(id, &entry.stats);
        self.total_bytes += bytes;
        self.counters.admissions += 1;
        self.entries.insert(id, entry);
        self.enforce_capacity();
        id
    }

    /// Replaces an entry's data (layout switch or lazy→eager upgrade),
    /// optionally adding the transformation cost into `c`.
    pub fn replace_data(&mut self, id: EntryId, data: CacheData, extra_c_ns: u64) {
        let Some(entry) = self.entries.get_mut(&id) else {
            return;
        };
        let old_bytes = entry.stats.bytes;
        let new_bytes = data.byte_size();
        entry.data = data;
        entry.stats.bytes = new_bytes;
        entry.stats.c_ns += extra_c_ns;
        self.total_bytes = self.total_bytes - old_bytes + new_bytes;
        self.enforce_capacity();
    }

    /// Removes an entry outright.
    pub fn remove(&mut self, id: EntryId) {
        let Some(entry) = self.entries.remove(&id) else {
            return;
        };
        self.total_bytes -= entry.stats.bytes;
        self.by_signature
            .remove(&(entry.source.clone(), entry.signature.clone()));
        if entry.subsumable {
            if entry.ranges.is_empty() {
                if let Some(ids) = self.unconstrained.get_mut(&entry.source) {
                    ids.retain(|&x| x != id);
                }
            } else {
                for r in &entry.ranges {
                    if let Some(tree) = self.rtrees.get_mut(&(entry.source.clone(), r.leaf)) {
                        tree.remove(&Rect::new([r.lo], [r.hi]), &id);
                    }
                }
            }
        }
        self.policy.on_remove(id);
    }

    /// Evicts until `total_bytes <= capacity`.
    fn enforce_capacity(&mut self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.total_bytes > capacity && !self.entries.is_empty() {
            let need = self.total_bytes - capacity;
            let views: Vec<EvictView<'_>> = self
                .entries
                .values()
                .map(|e| EvictView {
                    id: e.id,
                    stats: &e.stats,
                    format: e.format,
                    source: &e.source,
                    next_use: self.oracle.as_ref().and_then(|o| o.next_use(e, self.clock)),
                })
                .collect();
            let ctx = EvictionContext {
                entries: views,
                need_bytes: need,
                clock: self.clock,
                has_oracle: self.oracle.is_some(),
            };
            let victims = self.policy.select_victims(&ctx);
            if victims.is_empty() {
                // A policy must always make progress; fall back to
                // evicting the largest entry to avoid livelock.
                let largest = self
                    .entries
                    .values()
                    .max_by_key(|e| e.stats.bytes)
                    .map(|e| e.id)
                    .expect("entries non-empty");
                self.evict(largest);
                continue;
            }
            for id in victims {
                self.evict(id);
            }
        }
    }

    fn evict(&mut self, id: EntryId) {
        if let Some(entry) = self.entries.get(&id) {
            self.counters.evictions += 1;
            self.counters.bytes_evicted += entry.stats.bytes as u64;
        }
        self.remove(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::{EvictionKind, Lru};
    use recache_layout::OffsetStore;

    fn data(bytes: usize) -> CacheData {
        // Offset stores have a predictable size: 4 bytes per id + 8.
        let ids = (0..(bytes.saturating_sub(8) / 4) as u32).collect();
        CacheData::Offsets(std::sync::Arc::new(OffsetStore::build(ids, 10)))
    }

    fn registry(capacity: Option<usize>) -> CacheRegistry {
        CacheRegistry::new(Box::new(Lru), capacity)
    }

    fn ranges(leaf: usize, lo: f64, hi: f64) -> Vec<LeafRange> {
        vec![LeafRange { leaf, lo, hi }]
    }

    /// Test shims over the full admit/lookup signatures.
    trait RegistryTestExt {
        #[allow(clippy::too_many_arguments)]
        fn admit_t(
            &mut self,
            source: &str,
            format: FileFormat,
            rs: Vec<LeafRange>,
            data: CacheData,
            t: u64,
            c: u64,
            l: u64,
        ) -> EntryId;
        fn lookup_t(&mut self, source: &str, rs: &[LeafRange]) -> (MatchResult, u64);
    }

    impl RegistryTestExt for CacheRegistry {
        fn admit_t(
            &mut self,
            source: &str,
            format: FileFormat,
            rs: Vec<LeafRange>,
            data: CacheData,
            t: u64,
            c: u64,
            l: u64,
        ) -> EntryId {
            let sig = range_signature(&rs);
            self.admit(source, format, sig, rs, true, data, t, c, l)
        }

        fn lookup_t(&mut self, source: &str, rs: &[LeafRange]) -> (MatchResult, u64) {
            let sig = range_signature(rs);
            self.lookup(source, &sig, rs)
        }
    }

    #[test]
    fn exact_match_round_trip() {
        let mut reg = registry(None);
        let id = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 1.0, 9.0),
            data(100),
            10,
            5,
            1,
        );
        let (m, l_ns) = reg.lookup_t("t", &ranges(0, 1.0, 9.0));
        assert_eq!(m, MatchResult::Exact(id));
        let _ = l_ns;
        // Different source or predicate: miss.
        assert_eq!(reg.lookup_t("u", &ranges(0, 1.0, 9.0)).0, MatchResult::Miss);
        assert_eq!(reg.lookup_t("t", &ranges(0, 1.0, 8.0)).0.entry(), Some(id)); // subsuming
        assert_eq!(reg.lookup_t("t", &ranges(1, 1.0, 9.0)).0, MatchResult::Miss);
    }

    #[test]
    fn subsumption_requires_full_coverage() {
        let mut reg = registry(None);
        // Cached: leaf0 in [0, 100] AND leaf1 in [5, 10].
        let mut rs = ranges(0, 0.0, 100.0);
        rs.push(LeafRange {
            leaf: 1,
            lo: 5.0,
            hi: 10.0,
        });
        let id = reg.admit_t("t", FileFormat::Json, rs, data(100), 10, 5, 1);
        // Query narrower on both leaves: subsumed.
        let mut q = ranges(0, 10.0, 20.0);
        q.push(LeafRange {
            leaf: 1,
            lo: 6.0,
            hi: 9.0,
        });
        assert_eq!(reg.lookup_t("t", &q).0, MatchResult::Subsuming(id));
        // Query missing the leaf-1 constraint: the cached predicate is
        // NOT weaker (it restricts leaf1), so no subsumption.
        let q = ranges(0, 10.0, 20.0);
        assert_eq!(reg.lookup_t("t", &q).0, MatchResult::Miss);
        // Query wider on leaf1: not covered.
        let mut q = ranges(0, 10.0, 20.0);
        q.push(LeafRange {
            leaf: 1,
            lo: 0.0,
            hi: 9.0,
        });
        assert_eq!(reg.lookup_t("t", &q).0, MatchResult::Miss);
    }

    #[test]
    fn unconstrained_entry_subsumes_everything_on_source() {
        let mut reg = registry(None);
        let id = reg.admit_t("t", FileFormat::Csv, vec![], data(100), 10, 5, 1);
        assert_eq!(
            reg.lookup_t("t", &ranges(3, 1.0, 2.0)).0,
            MatchResult::Subsuming(id)
        );
        // Exact match for the predicate-less query itself.
        assert_eq!(reg.lookup_t("t", &[]).0, MatchResult::Exact(id));
        assert_eq!(
            reg.lookup_t("other", &ranges(3, 1.0, 2.0)).0,
            MatchResult::Miss
        );
    }

    #[test]
    fn best_subsuming_match_is_smallest() {
        let mut reg = registry(None);
        let _big = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 0.0, 1000.0),
            data(100),
            10,
            5,
            1,
        );
        let small = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 10.0, 50.0),
            data(100),
            10,
            5,
            1,
        );
        // Both cover [20, 30]; the one with fewer flattened rows wins.
        // (Both offset stores report the same rows here, so the tie keeps
        // the first found; force different sizes.)
        if let Some(e) = reg.entry_mut(small) {
            e.data = CacheData::Offsets(std::sync::Arc::new(OffsetStore::build(vec![1], 1)));
        }
        let (m, _) = reg.lookup_t("t", &ranges(0, 20.0, 30.0));
        assert_eq!(m, MatchResult::Subsuming(small));
    }

    #[test]
    fn capacity_enforcement_evicts_lru() {
        let mut reg = registry(Some(1000));
        let a = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 0.0, 1.0),
            data(400),
            10,
            5,
            1,
        );
        reg.tick();
        let b = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 2.0, 3.0),
            data(400),
            10,
            5,
            1,
        );
        reg.tick();
        // Touch a so b becomes the LRU victim.
        reg.record_reuse(a, 5, 1);
        let _c = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 4.0, 5.0),
            data(400),
            10,
            5,
            1,
        );
        assert!(reg.total_bytes() <= 1000);
        assert!(reg.entry(a).is_some());
        assert!(reg.entry(b).is_none(), "LRU victim should be evicted");
        assert_eq!(reg.counters.evictions, 1);
        // Evicted entries leave the indexes too.
        assert_eq!(reg.lookup_t("t", &ranges(0, 2.0, 3.0)).0, MatchResult::Miss);
    }

    #[test]
    fn replace_data_adjusts_totals() {
        let mut reg = registry(None);
        let id = reg.admit_t("t", FileFormat::Csv, vec![], data(400), 10, 5, 1);
        let before = reg.total_bytes();
        reg.replace_data(id, data(800), 42);
        assert!(reg.total_bytes() > before);
        let entry = reg.entry(id).unwrap();
        assert_eq!(entry.stats.c_ns, 5 + 42);
        assert_eq!(entry.stats.bytes, entry.data.byte_size());
    }

    #[test]
    fn reuse_updates_stats_and_counters() {
        let mut reg = registry(None);
        let id = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 0.0, 9.0),
            data(100),
            10,
            5,
            1,
        );
        reg.tick();
        let (m, l) = reg.lookup_t("t", &ranges(0, 1.0, 2.0));
        assert_eq!(m, MatchResult::Subsuming(id));
        reg.record_reuse(id, 123, l);
        let entry = reg.entry(id).unwrap();
        assert_eq!(entry.stats.n, 1);
        assert_eq!(entry.stats.s_ns, 123);
        assert_eq!(entry.stats.last_access, 1);
        assert_eq!(reg.counters.hits_subsuming, 1);
    }

    #[test]
    fn working_set_tracking() {
        let mut reg = registry(None);
        assert!(!reg.source_in_working_set("t"));
        let id = reg.admit_t("t", FileFormat::Csv, vec![], data(100), 10, 5, 1);
        // Residency alone is not enough: the entry must have been reused.
        assert!(!reg.source_in_working_set("t"));
        reg.record_reuse(id, 5, 1);
        assert!(reg.source_in_working_set("t"));
        reg.remove(id);
        assert!(!reg.source_in_working_set("t"));
        assert!(reg.is_empty());
        assert_eq!(reg.total_bytes(), 0);
    }

    struct FixedOracle;
    impl FutureOracle for FixedOracle {
        fn next_use(&self, entry: &CacheEntry, _clock: u64) -> Option<u64> {
            // Entries on leaf 0 reused at query 100; others never.
            entry
                .ranges
                .first()
                .and_then(|r| (r.leaf == 0).then_some(100))
        }
    }

    #[test]
    fn offline_policy_consults_oracle() {
        let mut reg = CacheRegistry::new(EvictionKind::FarthestFirst.build(), Some(900));
        reg.set_oracle(Box::new(FixedOracle));
        let keep = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 0.0, 1.0),
            data(400),
            10,
            5,
            1,
        );
        let drop = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(1, 0.0, 1.0),
            data(400),
            10,
            5,
            1,
        );
        let _third = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 2.0, 3.0),
            data(400),
            10,
            5,
            1,
        );
        assert!(reg.entry(keep).is_some());
        assert!(
            reg.entry(drop).is_none(),
            "never-reused entry evicted first"
        );
    }

    #[test]
    fn signature_is_order_insensitive() {
        let a = vec![
            LeafRange {
                leaf: 2,
                lo: 1.0,
                hi: 2.0,
            },
            LeafRange {
                leaf: 0,
                lo: 5.0,
                hi: 6.0,
            },
        ];
        let b = vec![
            LeafRange {
                leaf: 0,
                lo: 5.0,
                hi: 6.0,
            },
            LeafRange {
                leaf: 2,
                lo: 1.0,
                hi: 2.0,
            },
        ];
        assert_eq!(range_signature(&a), range_signature(&b));
        assert_eq!(range_signature(&[]), "true");
    }
}
