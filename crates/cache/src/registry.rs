//! The cache registry: exact-match + R-tree range subsumption (§3.2–3.3),
//! statistics upkeep, and capacity enforcement through an eviction policy.
//!
//! # Concurrency
//!
//! The registry is `Send + Sync` so independent sessions can admit, look
//! up and evict concurrently. Entries are partitioned into lock-striped
//! *shards* keyed by the hash of `(source, range_signature)`: an exact
//! lookup or an admission touches only the entry's home shard, while
//! subsumption walks the shards one at a time. The logical query clock,
//! the byte total and the aggregate counters are atomics; the eviction
//! policy (which is inherently stateful and global) lives behind its own
//! mutex, which doubles as the eviction serializer.
//!
//! ## Locking discipline
//!
//! * Shard locks are only ever taken **one at a time** — no operation
//!   nests one shard lock inside another. Multi-shard walks (subsumption,
//!   eviction snapshots, diagnostics) visit shards in ascending index
//!   order, releasing each before the next.
//! * The policy mutex is never acquired **while a shard lock is held**.
//!   Operations that need both (reuse bookkeeping, admission) update the
//!   shard first, release it, then talk to the policy with copied stats.
//!   Eviction holds the policy mutex across its shard visits (policy →
//!   shard is the one permitted nesting direction), which also serializes
//!   concurrent capacity enforcement.
//!
//! ## Lock poisoning
//!
//! Every lock acquisition in this module recovers from poisoning with
//! `unwrap_or_else(|e| e.into_inner())` instead of propagating the
//! panic. Poisoning only records that *some* holder panicked — it says
//! nothing about whether the guarded data is torn. Here it never is:
//! shard critical sections mutate `HashMap`/`RTree` structures through
//! single panic-safe calls, and the one cross-structure invariant
//! (an entry's bytes are in `total_bytes` iff the entry is visible in
//! its shard) has no panic point between its two halves — both updates
//! happen under the same lock with only infallible operations between
//! them. The registry is shared by every session, so wedging all future
//! queries because one scan thread panicked (e.g. an injected fault in
//! the chaos suite) would turn a contained failure into a total outage.
//! Individual sites note any extra reasoning they rely on.

use crate::eviction::{EvictView, EvictionContext, EvictionPolicy};
use crate::layout_model::LayoutHistory;
use crate::stats::{AtomicRegistryCounters, EntryStats};
use recache_data::FileFormat;
use recache_layout::{CacheData, LayoutKind};
use recache_rtree::{RTree, Rect};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

pub use crate::eviction::EntryId;
pub use crate::stats::RegistryCounters;

/// A closed interval constraint on one leaf of the source schema.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafRange {
    pub leaf: usize,
    pub lo: f64,
    pub hi: f64,
}

impl LeafRange {
    /// True when `self` (the cached predicate) is weaker than or equal to
    /// `other` (the query predicate) on the same leaf.
    pub fn covers(&self, other: &LeafRange) -> bool {
        self.leaf == other.leaf && self.lo <= other.lo && self.hi >= other.hi
    }
}

/// Canonical signature of a conjunctive range predicate, used for
/// exact-match lookup.
pub fn range_signature(ranges: &[LeafRange]) -> String {
    let mut sorted: Vec<&LeafRange> = ranges.iter().collect();
    sorted.sort_by_key(|a| a.leaf);
    let mut out = String::new();
    for r in sorted {
        out.push_str(&format!("{}:[{};{}];", r.leaf, r.lo, r.hi));
    }
    if out.is_empty() {
        out.push_str("true");
    }
    out
}

/// What `remove_inner` hands back: the freed bytes plus the departed
/// entry's identity (for result-cache invalidation).
struct RemovedEntry {
    bytes: usize,
    source: String,
    signature: String,
}

/// One cached operator result.
pub struct CacheEntry {
    pub id: EntryId,
    /// Source (table) name.
    pub source: String,
    /// Raw format of the source (Proteus' JSON≫CSV policy needs it).
    pub format: FileFormat,
    /// Canonical predicate signature.
    pub signature: String,
    /// Conjunctive range predicate (empty = caches the whole source).
    pub ranges: Vec<LeafRange>,
    /// Whether the entry participates in subsumption (false when the
    /// predicate had clauses beyond conjunctive ranges).
    pub subsumable: bool,
    /// The materialized data, in its current layout.
    pub data: CacheData,
    pub stats: EntryStats,
    /// Layout-selection observation window.
    pub history: LayoutHistory,
}

/// An owned point-in-time copy of one entry's metadata (diagnostics and
/// experiment output — the sharded registry cannot hand out borrows).
/// `data` is an `Arc` handle, so snapshotting does not copy cached bytes.
#[derive(Debug, Clone)]
pub struct EntrySnapshot {
    pub id: EntryId,
    pub source: String,
    pub format: FileFormat,
    pub signature: String,
    pub ranges: Vec<LeafRange>,
    pub subsumable: bool,
    pub data: CacheData,
    pub stats: EntryStats,
    /// Layout switches performed so far (from the entry's history).
    pub layout_switches: u32,
}

/// Oracle interface for the offline eviction algorithms: given an entry
/// and the current query clock, report the next query index that would
/// reuse it. `Sync` because concurrent sessions may trigger evictions.
pub trait FutureOracle: Send + Sync {
    fn next_use(&self, entry: &CacheEntry, clock: u64) -> Option<u64>;
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchResult {
    /// Same source + identical predicate.
    Exact(EntryId),
    /// A cached predicate that covers the query's; the query re-filters.
    Subsuming(EntryId),
    Miss,
}

impl MatchResult {
    pub fn entry(&self) -> Option<EntryId> {
        match self {
            MatchResult::Exact(id) | MatchResult::Subsuming(id) => Some(*id),
            MatchResult::Miss => None,
        }
    }
}

/// Entries and indexes of one lock stripe.
#[derive(Default)]
struct Shard {
    entries: HashMap<EntryId, CacheEntry>,
    /// (source, signature) → entry, for exact matches.
    by_signature: HashMap<(String, String), EntryId>,
    /// (source, leaf) → interval index over cached range clauses.
    rtrees: HashMap<(String, usize), RTree<1, EntryId>>,
    /// Entries with no range predicate (whole-source caches), per source.
    unconstrained: HashMap<String, Vec<EntryId>>,
}

/// Default shard count. More stripes than any realistic session count so
/// admissions on distinct signatures rarely contend.
pub const DEFAULT_SHARDS: usize = 16;

/// Callback fired when an entry leaves the registry (eviction or
/// explicit removal), identified by its `(source, signature)` pair.
/// Returns how many dependent result-cache entries it invalidated; the
/// registry charges that to `result_invalidations`.
///
/// The listener runs with registry locks held (the eviction path holds
/// the policy mutex), so it must be a *leaf*: it may take its own locks
/// but must never call back into the registry.
pub type InvalidationListener = Box<dyn Fn(&str, &str) -> u64 + Send + Sync>;

/// The ReCache cache: entries, indexes, policy, capacity. See the module
/// docs for the concurrency design.
pub struct CacheRegistry {
    shards: Box<[RwLock<Shard>]>,
    /// Eviction policy. The mutex also serializes capacity enforcement.
    policy: Mutex<Box<dyn EvictionPolicy>>,
    oracle: RwLock<Option<Box<dyn FutureOracle>>>,
    /// Precise result-cache invalidation hook (see
    /// [`InvalidationListener`]); fired on every eviction/removal.
    invalidation: RwLock<Option<InvalidationListener>>,
    /// `None` = unlimited (the paper's "infinite cache" baseline).
    capacity: Option<usize>,
    total_bytes: AtomicUsize,
    next_seq: AtomicU64,
    clock: AtomicU64,
    counters: AtomicRegistryCounters,
}

impl CacheRegistry {
    pub fn new(policy: Box<dyn EvictionPolicy>, capacity: Option<usize>) -> Self {
        Self::with_shards(policy, capacity, DEFAULT_SHARDS)
    }

    /// A registry with an explicit shard count (tests; `1` reproduces a
    /// single-lock registry).
    pub fn with_shards(
        policy: Box<dyn EvictionPolicy>,
        capacity: Option<usize>,
        shards: usize,
    ) -> Self {
        let shards = shards.max(1);
        CacheRegistry {
            shards: (0..shards)
                .map(|_| RwLock::new(Shard::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            policy: Mutex::new(policy),
            oracle: RwLock::new(None),
            invalidation: RwLock::new(None),
            capacity,
            total_bytes: AtomicUsize::new(0),
            next_seq: AtomicU64::new(1),
            clock: AtomicU64::new(0),
            counters: AtomicRegistryCounters::default(),
        }
    }

    /// Installs an offline future oracle (required by the offline
    /// eviction baselines).
    pub fn set_oracle(&self, oracle: Box<dyn FutureOracle>) {
        *self.oracle.write().unwrap_or_else(|e| e.into_inner()) = Some(oracle);
    }

    /// Advances the logical query clock; call once per query. Atomic, so
    /// admission/reuse decisions stay monotonic across sessions.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn total_bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Acquire)
    }

    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Snapshot of the aggregate counters.
    pub fn counters(&self) -> RegistryCounters {
        self.counters.snapshot()
    }

    /// Counts one coalesced admission (a session reused an entry it
    /// waited for instead of redoing the scan; bumped by the session
    /// layer's single-flight logic).
    pub fn note_coalesced(&self) {
        self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one subsumption-coalesced admission: a session whose
    /// predicate was covered by a concurrent leader's in-flight ranges
    /// waited for that leader's admitted entry and filtered from cache
    /// instead of re-scanning raw.
    pub fn note_coalesced_subsumed(&self) {
        self.counters
            .coalesced_subsumed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shared multi-predicate raw pass (a batched scan that
    /// served two or more concurrently-admitted queries at once).
    pub fn note_shared_scan(&self) {
        self.counters.shared_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` queries served by a shared scan (the pass's participant
    /// count, leader included).
    pub fn note_shared_scan_participants(&self, n: u64) {
        if n > 0 {
            self.counters
                .shared_scan_participants
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one query that surfaced a non-retryable scan failure.
    pub fn note_failed_scan(&self) {
        self.counters.failed_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` chunk retries absorbed by the bounded-retry loop.
    pub fn note_retried_chunks(&self, n: u64) {
        if n > 0 {
            self.counters.retried_chunks.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one query that hit its deadline or was cancelled.
    pub fn note_timeout(&self) {
        self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one batched raw scan that completed via the row-at-a-time
    /// degraded fallback.
    pub fn note_degraded_fallback(&self) {
        self.counters
            .degraded_fallbacks
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one single-flight follower promoted to leader after the
    /// previous leader failed or abandoned the flight.
    pub fn note_leader_failover(&self) {
        self.counters
            .leader_failovers
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query served whole from the semantic result cache.
    pub fn note_result_hit(&self) {
        self.counters.result_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one result-cache lookup that fell through to the executor.
    pub fn note_result_miss(&self) {
        self.counters.result_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` result entries evicted by the result cache's byte budget.
    pub fn note_result_evictions(&self, n: u64) {
        if n > 0 {
            self.counters
                .result_evictions
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds `n` result entries invalidated outside the per-entry listener
    /// path (whole-source invalidation on source registration/change).
    pub fn note_result_invalidations(&self, n: u64) {
        if n > 0 {
            self.counters
                .result_invalidations
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Installs the result-cache invalidation listener. At most one is
    /// active; the session layer installs it at build time.
    pub fn set_invalidation_listener(&self, listener: InvalidationListener) {
        *self.invalidation.write().unwrap_or_else(|e| e.into_inner()) = Some(listener);
    }

    /// Fires the invalidation listener (if any) for a departed entry and
    /// charges the dependent-result count to `result_invalidations`.
    fn fire_invalidation(&self, source: &str, signature: &str) {
        let guard = self.invalidation.read().unwrap_or_else(|e| e.into_inner());
        if let Some(listener) = guard.as_ref() {
            let n = listener(source, signature);
            if n > 0 {
                self.counters
                    .result_invalidations
                    .fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Home shard of a `(source, signature)` pair.
    fn shard_index(&self, source: &str, signature: &str) -> usize {
        let mut h = DefaultHasher::new();
        source.hash(&mut h);
        signature.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Entry ids encode their home shard (`id % shards`), so id-keyed
    /// operations find the right stripe without a global map.
    fn shard_of_id(&self, id: EntryId) -> &RwLock<Shard> {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Runs `f` against the entry under its shard's read lock.
    pub fn with_entry<R>(&self, id: EntryId, f: impl FnOnce(&CacheEntry) -> R) -> Option<R> {
        let shard = self
            .shard_of_id(id)
            .read()
            .unwrap_or_else(|e| e.into_inner());
        shard.entries.get(&id).map(f)
    }

    /// Runs `f` against the entry under its shard's write lock. Do not
    /// swap `data` here — byte accounting lives in [`Self::replace_data`].
    pub fn with_entry_mut<R>(
        &self,
        id: EntryId,
        f: impl FnOnce(&mut CacheEntry) -> R,
    ) -> Option<R> {
        let mut shard = self
            .shard_of_id(id)
            .write()
            .unwrap_or_else(|e| e.into_inner());
        shard.entries.get_mut(&id).map(f)
    }

    /// Whether the entry is still resident.
    pub fn contains(&self, id: EntryId) -> bool {
        self.with_entry(id, |_| ()).is_some()
    }

    /// Owned snapshots of every entry, ordered by id (diagnostics).
    pub fn snapshot(&self) -> Vec<EntrySnapshot> {
        let mut out = Vec::new();
        for lock in self.shards.iter() {
            let shard = lock.read().unwrap_or_else(|e| e.into_inner());
            for e in shard.entries.values() {
                out.push(EntrySnapshot {
                    id: e.id,
                    source: e.source.clone(),
                    format: e.format,
                    signature: e.signature.clone(),
                    ranges: e.ranges.clone(),
                    subsumable: e.subsumable,
                    data: e.data.clone(),
                    stats: e.stats.clone(),
                    layout_switches: e.history.switches,
                });
            }
        }
        out.sort_by_key(|e| e.id);
        out
    }

    /// True when a cached item from this source is resident *and has been
    /// reused* (the admission controller's working-set heuristic). Mere
    /// residency is not enough: treating every touched file as hot would
    /// make the overhead threshold bind only on each file's very first
    /// query.
    pub fn source_in_working_set(&self, source: &str) -> bool {
        self.shards.iter().any(|lock| {
            lock.read()
                .unwrap_or_else(|e| e.into_inner())
                .entries
                .values()
                .any(|e| e.source == source && e.stats.n > 0)
        })
    }

    /// Looks up a match for a query over `source`: exact by `signature`,
    /// then subsumption over the query's conjunctive `ranges`. Returns
    /// the match and the measured lookup time `l` in nanoseconds.
    pub fn lookup(
        &self,
        source: &str,
        signature: &str,
        ranges: &[LeafRange],
    ) -> (MatchResult, u64) {
        let result = self.lookup_uncounted(source, signature, ranges);
        self.count_lookup(&result.0);
        result
    }

    /// [`Self::lookup`] without bumping the hit/miss counters. The
    /// single-flight retry loop probes the cache repeatedly for one
    /// logical table access; it counts the *final* outcome exactly once
    /// via [`Self::count_lookup`], so coalescing never inflates the
    /// hit-rate statistics.
    pub fn lookup_uncounted(
        &self,
        source: &str,
        signature: &str,
        ranges: &[LeafRange],
    ) -> (MatchResult, u64) {
        let t0 = Instant::now();
        let result = self.lookup_inner(source, signature, ranges);
        let lookup_ns = t0.elapsed().as_nanos() as u64;
        (result, lookup_ns)
    }

    /// Counts one lookup outcome in the aggregate counters.
    pub fn count_lookup(&self, result: &MatchResult) {
        let counter = match result {
            MatchResult::Exact(_) => &self.counters.hits_exact,
            MatchResult::Subsuming(_) => &self.counters.hits_subsuming,
            MatchResult::Miss => &self.counters.misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn lookup_inner(&self, source: &str, signature: &str, ranges: &[LeafRange]) -> MatchResult {
        // 1. Exact signature match: only the home shard can hold it.
        let exact_key = (source.to_owned(), signature.to_owned());
        {
            let home = self.shards[self.shard_index(source, signature)]
                .read()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(&id) = home.by_signature.get(&exact_key) {
                return MatchResult::Exact(id);
            }
        }
        // 2. Subsumption: candidates live anywhere, so walk the shards
        //    (one read lock at a time, ascending order), gathering ids
        //    from the per-leaf interval indexes and whole-source lists,
        //    then verify each candidate's full predicate is weaker.
        //    Owned index keys are built once, outside the shard walk —
        //    this sits on the measured-lookup hot path.
        let range_keys: Vec<(String, usize)> = ranges
            .iter()
            .map(|qr| (source.to_owned(), qr.leaf))
            .collect();
        let mut best: Option<(usize, EntryId)> = None;
        for lock in self.shards.iter() {
            let shard = lock.read().unwrap_or_else(|e| e.into_inner());
            let mut candidates: Vec<EntryId> = Vec::new();
            for (qr, key) in ranges.iter().zip(&range_keys) {
                if let Some(tree) = shard.rtrees.get(key) {
                    let query = Rect::new([qr.lo], [qr.hi]);
                    tree.covering(&query, &mut |_, id| candidates.push(*id));
                }
            }
            // 3. Whole-source caches subsume everything on the source.
            if let Some(ids) = shard.unconstrained.get(source) {
                candidates.extend_from_slice(ids);
            }
            for id in candidates {
                let Some(entry) = shard.entries.get(&id) else {
                    continue;
                };
                let covers = entry
                    .ranges
                    .iter()
                    .all(|er| ranges.iter().any(|qr| er.covers(qr)));
                if covers {
                    let cost_proxy = entry.data.flattened_rows();
                    if best.is_none_or(|(c, _)| cost_proxy < c) {
                        best = Some((cost_proxy, id));
                    }
                }
            }
        }
        match best {
            Some((_, id)) => MatchResult::Subsuming(id),
            None => MatchResult::Miss,
        }
    }

    /// Records a reuse of `id`: scan time `s`, lookup time `l`.
    pub fn record_reuse(&self, id: EntryId, scan_ns: u64, lookup_ns: u64) {
        let clock = self.clock();
        // Update under the shard lock, then notify the policy with copied
        // stats (the policy mutex is never taken while a shard is held).
        let stats = {
            let mut shard = self
                .shard_of_id(id)
                .write()
                .unwrap_or_else(|e| e.into_inner());
            let Some(entry) = shard.entries.get_mut(&id) else {
                return;
            };
            entry.stats.record_reuse(scan_ns, lookup_ns, clock);
            entry.stats.clone()
        };
        self.policy
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .on_access(id, &stats);
    }

    /// Admits a new entry (then enforces capacity, which may evict it
    /// right back if its benefit is lowest — the admission gate of §5.1).
    ///
    /// `subsumable` must be false when the predicate has clauses beyond
    /// the conjunctive ranges (the entry then only serves exact matches).
    ///
    /// If an entry with the same `(source, signature)` was admitted
    /// concurrently (a single-flight race that slipped through), the
    /// existing entry wins and its id is returned — `by_signature` stays
    /// a bijection and no orphan entry leaks into the range indexes.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &self,
        source: &str,
        format: FileFormat,
        signature: String,
        ranges: Vec<LeafRange>,
        subsumable: bool,
        data: CacheData,
        t_ns: u64,
        c_ns: u64,
        lookup_ns: u64,
    ) -> EntryId {
        let shard_idx = self.shard_index(source, &signature);
        let id = self.next_seq.fetch_add(1, Ordering::Relaxed) * self.shards.len() as u64
            + shard_idx as u64;
        let bytes = data.byte_size();
        let clock = self.clock();
        let stats = EntryStats {
            n: 0,
            t_ns,
            c_ns,
            s_ns: 0,
            l_ns: lookup_ns,
            bytes,
            last_access: clock,
            access_count: 1,
            created_at: clock,
        };
        // Tag the policy before the entry becomes visible: a concurrent
        // eviction round must find the admission tag in place.
        self.policy
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .on_admit(id, &stats);
        let entry = CacheEntry {
            id,
            source: source.to_owned(),
            format,
            signature: signature.clone(),
            ranges,
            subsumable,
            data,
            stats,
            history: LayoutHistory::new(),
        };
        let lost_race = {
            let mut shard = self.shards[shard_idx]
                .write()
                .unwrap_or_else(|e| e.into_inner());
            let key = (source.to_owned(), signature);
            if let Some(&existing) = shard.by_signature.get(&key) {
                Some(existing)
            } else {
                shard.by_signature.insert(key, id);
                if entry.subsumable {
                    if entry.ranges.is_empty() {
                        shard
                            .unconstrained
                            .entry(source.to_owned())
                            .or_default()
                            .push(id);
                    } else {
                        for r in &entry.ranges {
                            shard
                                .rtrees
                                .entry((source.to_owned(), r.leaf))
                                .or_default()
                                .insert(Rect::new([r.lo], [r.hi]), id);
                        }
                    }
                }
                shard.entries.insert(id, entry);
                // Account the bytes while the entry's shard is still
                // locked: an entry is visible to eviction if and only if
                // its bytes are in the total (a remover needs this same
                // lock, so it can never subtract unaccounted bytes and
                // wrap the counter).
                self.total_bytes.fetch_add(bytes, Ordering::AcqRel);
                None
            }
        };
        if let Some(existing) = lost_race {
            // Retract the policy tag; the duplicate data is dropped.
            self.policy
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .on_remove(id);
            return existing;
        }
        self.counters.admissions.fetch_add(1, Ordering::Relaxed);
        self.enforce_capacity();
        id
    }

    /// Replaces an entry's data (layout switch or lazy→eager upgrade),
    /// optionally adding the transformation cost into `c`.
    pub fn replace_data(&self, id: EntryId, data: CacheData, extra_c_ns: u64) {
        self.replace_data_if(id, None, data, extra_c_ns);
    }

    /// [`Self::replace_data`] guarded on the entry's current layout: the
    /// swap only happens when the layout still matches `expected` (a
    /// concurrent switch/upgrade otherwise wins and the new data is
    /// dropped). Returns whether the swap was installed.
    pub fn replace_data_if(
        &self,
        id: EntryId,
        expected: Option<LayoutKind>,
        data: CacheData,
        extra_c_ns: u64,
    ) -> bool {
        {
            let mut shard = self
                .shard_of_id(id)
                .write()
                .unwrap_or_else(|e| e.into_inner());
            let Some(entry) = shard.entries.get_mut(&id) else {
                return false;
            };
            if expected.is_some_and(|kind| entry.data.layout() != kind) {
                return false;
            }
            let old_bytes = entry.stats.bytes;
            let new_bytes = data.byte_size();
            entry.data = data;
            entry.stats.bytes = new_bytes;
            entry.stats.c_ns += extra_c_ns;
            // Adjust the total before releasing the shard (same
            // visible-iff-accounted invariant as `admit`).
            if new_bytes >= old_bytes {
                self.total_bytes
                    .fetch_add(new_bytes - old_bytes, Ordering::AcqRel);
            } else {
                self.total_bytes
                    .fetch_sub(old_bytes - new_bytes, Ordering::AcqRel);
            }
        }
        self.enforce_capacity();
        true
    }

    /// Removes an entry outright. Returns whether it was resident.
    /// Dependent result-cache entries are invalidated through the
    /// listener before this returns.
    pub fn remove(&self, id: EntryId) -> bool {
        if let Some(removed) = self.remove_inner(id) {
            self.policy
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .on_remove(id);
            self.counters.removals.fetch_add(1, Ordering::Relaxed);
            self.fire_invalidation(&removed.source, &removed.signature);
            true
        } else {
            false
        }
    }

    /// De-indexes and drops the entry under its shard lock, adjusting the
    /// byte total. No policy callback — callers holding (or not holding)
    /// the policy mutex handle that themselves. Returns the freed bytes
    /// and the entry's identity so callers can fire result invalidation.
    fn remove_inner(&self, id: EntryId) -> Option<RemovedEntry> {
        let removed = {
            let mut shard = self
                .shard_of_id(id)
                .write()
                .unwrap_or_else(|e| e.into_inner());
            let entry = shard.entries.remove(&id)?;
            shard
                .by_signature
                .remove(&(entry.source.clone(), entry.signature.clone()));
            if entry.subsumable {
                if entry.ranges.is_empty() {
                    if let Some(ids) = shard.unconstrained.get_mut(&entry.source) {
                        ids.retain(|&x| x != id);
                    }
                } else {
                    for r in &entry.ranges {
                        if let Some(tree) = shard.rtrees.get_mut(&(entry.source.clone(), r.leaf)) {
                            tree.remove(&Rect::new([r.lo], [r.hi]), &id);
                        }
                    }
                }
            }
            // Subtract before releasing the shard (visible iff
            // accounted, as in `admit`).
            let bytes = entry.stats.bytes;
            self.total_bytes.fetch_sub(bytes, Ordering::AcqRel);
            RemovedEntry {
                bytes,
                source: entry.source,
                signature: entry.signature,
            }
        };
        Some(removed)
    }

    /// Evicts until `total_bytes <= capacity`. One evictor runs at a time
    /// (the policy mutex); admissions racing past the limit re-enter here
    /// and queue on the same mutex, so the budget holds at quiescence and
    /// every admission returns with the cache at or under capacity as of
    /// its own enforcement pass.
    fn enforce_capacity(&self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        if self.total_bytes() <= capacity {
            return;
        }
        let mut policy = self.policy.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let total = self.total_bytes();
            if total <= capacity {
                return;
            }
            let need = total - capacity;
            let clock = self.clock();
            let oracle = self.oracle.read().unwrap_or_else(|e| e.into_inner());
            // Per-shard candidate snapshot: owned copies, gathered one
            // shard at a time (the policy needs a global view, the shards
            // must not be held while it deliberates).
            struct Snap {
                id: EntryId,
                stats: EntryStats,
                format: FileFormat,
                source: String,
                next_use: Option<u64>,
            }
            let mut snaps: Vec<Snap> = Vec::new();
            for lock in self.shards.iter() {
                let shard = lock.read().unwrap_or_else(|e| e.into_inner());
                for e in shard.entries.values() {
                    snaps.push(Snap {
                        id: e.id,
                        stats: e.stats.clone(),
                        format: e.format,
                        source: e.source.clone(),
                        next_use: oracle.as_ref().and_then(|o| o.next_use(e, clock)),
                    });
                }
            }
            if snaps.is_empty() {
                return;
            }
            let views: Vec<EvictView<'_>> = snaps
                .iter()
                .map(|s| EvictView {
                    id: s.id,
                    stats: &s.stats,
                    format: s.format,
                    source: &s.source,
                    next_use: s.next_use,
                })
                .collect();
            let ctx = EvictionContext {
                entries: views,
                need_bytes: need,
                clock,
                has_oracle: oracle.is_some(),
            };
            let mut victims = policy.select_victims(&ctx);
            if victims.is_empty() {
                // A policy must always make progress; fall back to
                // evicting the largest entry to avoid livelock.
                victims = snaps
                    .iter()
                    .max_by_key(|s| s.stats.bytes)
                    .map(|s| vec![s.id])
                    .unwrap_or_default();
            }
            let mut progressed = false;
            for id in victims {
                // `remove_inner` is atomic per entry: a concurrent
                // `remove` and this eviction cannot both count it.
                if let Some(removed) = self.remove_inner(id) {
                    progressed = true;
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .bytes_evicted
                        .fetch_add(removed.bytes as u64, Ordering::Relaxed);
                    policy.on_remove(id);
                    // Listener is a leaf lock (never re-enters the
                    // registry), so firing it under the policy mutex is
                    // deadlock-free.
                    self.fire_invalidation(&removed.source, &removed.signature);
                }
            }
            if !progressed {
                // Every victim raced away (concurrent removes); the next
                // iteration re-snapshots. If the cache is somehow still
                // over budget with no removable entry, bail rather than
                // spin.
                if self.is_empty() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eviction::{EvictionKind, Lru};
    use recache_layout::OffsetStore;

    fn data(bytes: usize) -> CacheData {
        // Offset stores have a predictable size: 4 bytes per id + 8.
        let ids = (0..(bytes.saturating_sub(8) / 4) as u32).collect();
        CacheData::Offsets(std::sync::Arc::new(OffsetStore::build(ids, 10)))
    }

    fn registry(capacity: Option<usize>) -> CacheRegistry {
        CacheRegistry::new(Box::new(Lru), capacity)
    }

    fn ranges(leaf: usize, lo: f64, hi: f64) -> Vec<LeafRange> {
        vec![LeafRange { leaf, lo, hi }]
    }

    /// Test shims over the full admit/lookup signatures.
    trait RegistryTestExt {
        #[allow(clippy::too_many_arguments)]
        fn admit_t(
            &self,
            source: &str,
            format: FileFormat,
            rs: Vec<LeafRange>,
            data: CacheData,
            t: u64,
            c: u64,
            l: u64,
        ) -> EntryId;
        fn lookup_t(&self, source: &str, rs: &[LeafRange]) -> (MatchResult, u64);
    }

    impl RegistryTestExt for CacheRegistry {
        fn admit_t(
            &self,
            source: &str,
            format: FileFormat,
            rs: Vec<LeafRange>,
            data: CacheData,
            t: u64,
            c: u64,
            l: u64,
        ) -> EntryId {
            let sig = range_signature(&rs);
            self.admit(source, format, sig, rs, true, data, t, c, l)
        }

        fn lookup_t(&self, source: &str, rs: &[LeafRange]) -> (MatchResult, u64) {
            let sig = range_signature(rs);
            self.lookup(source, &sig, rs)
        }
    }

    #[test]
    fn exact_match_round_trip() {
        let reg = registry(None);
        let id = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 1.0, 9.0),
            data(100),
            10,
            5,
            1,
        );
        let (m, l_ns) = reg.lookup_t("t", &ranges(0, 1.0, 9.0));
        assert_eq!(m, MatchResult::Exact(id));
        let _ = l_ns;
        // Different source or predicate: miss.
        assert_eq!(reg.lookup_t("u", &ranges(0, 1.0, 9.0)).0, MatchResult::Miss);
        assert_eq!(reg.lookup_t("t", &ranges(0, 1.0, 8.0)).0.entry(), Some(id)); // subsuming
        assert_eq!(reg.lookup_t("t", &ranges(1, 1.0, 9.0)).0, MatchResult::Miss);
    }

    #[test]
    fn subsumption_requires_full_coverage() {
        let reg = registry(None);
        // Cached: leaf0 in [0, 100] AND leaf1 in [5, 10].
        let mut rs = ranges(0, 0.0, 100.0);
        rs.push(LeafRange {
            leaf: 1,
            lo: 5.0,
            hi: 10.0,
        });
        let id = reg.admit_t("t", FileFormat::Json, rs, data(100), 10, 5, 1);
        // Query narrower on both leaves: subsumed.
        let mut q = ranges(0, 10.0, 20.0);
        q.push(LeafRange {
            leaf: 1,
            lo: 6.0,
            hi: 9.0,
        });
        assert_eq!(reg.lookup_t("t", &q).0, MatchResult::Subsuming(id));
        // Query missing the leaf-1 constraint: the cached predicate is
        // NOT weaker (it restricts leaf1), so no subsumption.
        let q = ranges(0, 10.0, 20.0);
        assert_eq!(reg.lookup_t("t", &q).0, MatchResult::Miss);
        // Query wider on leaf1: not covered.
        let mut q = ranges(0, 10.0, 20.0);
        q.push(LeafRange {
            leaf: 1,
            lo: 0.0,
            hi: 9.0,
        });
        assert_eq!(reg.lookup_t("t", &q).0, MatchResult::Miss);
    }

    #[test]
    fn unconstrained_entry_subsumes_everything_on_source() {
        let reg = registry(None);
        let id = reg.admit_t("t", FileFormat::Csv, vec![], data(100), 10, 5, 1);
        assert_eq!(
            reg.lookup_t("t", &ranges(3, 1.0, 2.0)).0,
            MatchResult::Subsuming(id)
        );
        // Exact match for the predicate-less query itself.
        assert_eq!(reg.lookup_t("t", &[]).0, MatchResult::Exact(id));
        assert_eq!(
            reg.lookup_t("other", &ranges(3, 1.0, 2.0)).0,
            MatchResult::Miss
        );
    }

    #[test]
    fn best_subsuming_match_is_smallest() {
        let reg = registry(None);
        let _big = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 0.0, 1000.0),
            data(100),
            10,
            5,
            1,
        );
        let small = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 10.0, 50.0),
            data(100),
            10,
            5,
            1,
        );
        // Both cover [20, 30]; the one with fewer flattened rows wins.
        // (Both offset stores report the same rows here, so the tie keeps
        // the first found; force different sizes.)
        reg.replace_data(
            small,
            CacheData::Offsets(std::sync::Arc::new(OffsetStore::build(vec![1], 1))),
            0,
        );
        let (m, _) = reg.lookup_t("t", &ranges(0, 20.0, 30.0));
        assert_eq!(m, MatchResult::Subsuming(small));
    }

    #[test]
    fn capacity_enforcement_evicts_lru() {
        let reg = registry(Some(1000));
        let a = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 0.0, 1.0),
            data(400),
            10,
            5,
            1,
        );
        reg.tick();
        let b = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 2.0, 3.0),
            data(400),
            10,
            5,
            1,
        );
        reg.tick();
        // Touch a so b becomes the LRU victim.
        reg.record_reuse(a, 5, 1);
        let _c = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 4.0, 5.0),
            data(400),
            10,
            5,
            1,
        );
        assert!(reg.total_bytes() <= 1000);
        assert!(reg.contains(a));
        assert!(!reg.contains(b), "LRU victim should be evicted");
        assert_eq!(reg.counters().evictions, 1);
        // Evicted entries leave the indexes too.
        assert_eq!(reg.lookup_t("t", &ranges(0, 2.0, 3.0)).0, MatchResult::Miss);
    }

    #[test]
    fn replace_data_adjusts_totals() {
        let reg = registry(None);
        let id = reg.admit_t("t", FileFormat::Csv, vec![], data(400), 10, 5, 1);
        let before = reg.total_bytes();
        reg.replace_data(id, data(800), 42);
        assert!(reg.total_bytes() > before);
        reg.with_entry(id, |entry| {
            assert_eq!(entry.stats.c_ns, 5 + 42);
            assert_eq!(entry.stats.bytes, entry.data.byte_size());
        })
        .unwrap();
    }

    #[test]
    fn replace_data_if_guards_on_layout() {
        let reg = registry(None);
        let id = reg.admit_t("t", FileFormat::Csv, vec![], data(100), 10, 5, 1);
        // Entry is an offsets store; a guard expecting columnar loses.
        assert!(!reg.replace_data_if(id, Some(LayoutKind::Columnar), data(800), 1));
        assert!(reg.replace_data_if(id, Some(LayoutKind::Offsets), data(800), 1));
    }

    #[test]
    fn reuse_updates_stats_and_counters() {
        let reg = registry(None);
        let id = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 0.0, 9.0),
            data(100),
            10,
            5,
            1,
        );
        reg.tick();
        let (m, l) = reg.lookup_t("t", &ranges(0, 1.0, 2.0));
        assert_eq!(m, MatchResult::Subsuming(id));
        reg.record_reuse(id, 123, l);
        reg.with_entry(id, |entry| {
            assert_eq!(entry.stats.n, 1);
            assert_eq!(entry.stats.s_ns, 123);
            assert_eq!(entry.stats.last_access, 1);
        })
        .unwrap();
        assert_eq!(reg.counters().hits_subsuming, 1);
    }

    #[test]
    fn working_set_tracking() {
        let reg = registry(None);
        assert!(!reg.source_in_working_set("t"));
        let id = reg.admit_t("t", FileFormat::Csv, vec![], data(100), 10, 5, 1);
        // Residency alone is not enough: the entry must have been reused.
        assert!(!reg.source_in_working_set("t"));
        reg.record_reuse(id, 5, 1);
        assert!(reg.source_in_working_set("t"));
        assert!(reg.remove(id));
        assert!(!reg.remove(id), "second remove is a no-op");
        assert!(!reg.source_in_working_set("t"));
        assert!(reg.is_empty());
        assert_eq!(reg.total_bytes(), 0);
    }

    #[test]
    fn duplicate_signature_admission_returns_existing_entry() {
        let reg = registry(None);
        let first = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 1.0, 2.0),
            data(100),
            10,
            5,
            1,
        );
        let second = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 1.0, 2.0),
            data(400),
            10,
            5,
            1,
        );
        assert_eq!(first, second);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.counters().admissions, 1);
        // The byte total reflects only the surviving entry.
        assert_eq!(
            reg.total_bytes(),
            reg.snapshot().iter().map(|e| e.stats.bytes).sum::<usize>()
        );
    }

    struct FixedOracle;
    impl FutureOracle for FixedOracle {
        fn next_use(&self, entry: &CacheEntry, _clock: u64) -> Option<u64> {
            // Entries on leaf 0 reused at query 100; others never.
            entry
                .ranges
                .first()
                .and_then(|r| (r.leaf == 0).then_some(100))
        }
    }

    #[test]
    fn offline_policy_consults_oracle() {
        let reg = CacheRegistry::new(EvictionKind::FarthestFirst.build(), Some(900));
        reg.set_oracle(Box::new(FixedOracle));
        let keep = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 0.0, 1.0),
            data(400),
            10,
            5,
            1,
        );
        let drop = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(1, 0.0, 1.0),
            data(400),
            10,
            5,
            1,
        );
        let _third = reg.admit_t(
            "t",
            FileFormat::Csv,
            ranges(0, 2.0, 3.0),
            data(400),
            10,
            5,
            1,
        );
        assert!(reg.contains(keep));
        assert!(!reg.contains(drop), "never-reused entry evicted first");
    }

    #[test]
    fn signature_is_order_insensitive() {
        let a = vec![
            LeafRange {
                leaf: 2,
                lo: 1.0,
                hi: 2.0,
            },
            LeafRange {
                leaf: 0,
                lo: 5.0,
                hi: 6.0,
            },
        ];
        let b = vec![
            LeafRange {
                leaf: 0,
                lo: 5.0,
                hi: 6.0,
            },
            LeafRange {
                leaf: 2,
                lo: 1.0,
                hi: 2.0,
            },
        ];
        assert_eq!(range_signature(&a), range_signature(&b));
        assert_eq!(range_signature(&[]), "true");
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CacheRegistry>();
    }

    #[test]
    fn concurrent_admissions_respect_budget_and_reconcile() {
        use std::sync::Arc;
        let reg = Arc::new(CacheRegistry::with_shards(Box::new(Lru), Some(4_000), 8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        reg.tick();
                        let leaf = (t * 50 + i) as usize;
                        let id = reg.admit_t(
                            "t",
                            FileFormat::Csv,
                            ranges(leaf, 0.0, 1.0),
                            data(400),
                            10,
                            5,
                            1,
                        );
                        reg.lookup_t("t", &ranges(leaf, 0.2, 0.8));
                        reg.record_reuse(id, 7, 1);
                    }
                });
            }
        });
        assert!(reg.total_bytes() <= 4_000, "budget held at quiescence");
        let c = reg.counters();
        let snapshot = reg.snapshot();
        assert_eq!(
            c.admissions,
            snapshot.len() as u64 + c.evictions,
            "admissions must reconcile with residents + evictions"
        );
        assert_eq!(
            reg.total_bytes(),
            snapshot.iter().map(|e| e.stats.bytes).sum::<usize>(),
            "atomic byte total must match the entries"
        );
    }
}
