//! Cache eviction policies: ReCache's Greedy-Dual instance (Algorithm 1)
//! and the baselines §6.3 compares against.

use crate::stats::EntryStats;
use recache_data::FileFormat;
use std::collections::HashMap;

/// Opaque cache-entry identifier.
pub type EntryId = u64;

/// A read-only view of one cached entry at eviction time.
#[derive(Debug, Clone)]
pub struct EvictView<'a> {
    pub id: EntryId,
    pub stats: &'a EntryStats,
    pub format: FileFormat,
    pub source: &'a str,
    /// Next query index that will reuse this entry, when an offline
    /// oracle is installed (`None` = never reused again, or no oracle).
    pub next_use: Option<u64>,
}

/// Everything a policy sees when asked to free space.
pub struct EvictionContext<'a> {
    pub entries: Vec<EvictView<'a>>,
    /// Bytes that must be freed (`TotalCacheSize - CacheSizeLimit`).
    pub need_bytes: usize,
    /// Logical query clock.
    pub clock: u64,
    /// True when an offline oracle populated `next_use` fields.
    pub has_oracle: bool,
}

/// Which policy to instantiate (bench/config surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionKind {
    /// ReCache's cost-based Greedy-Dual (Algorithm 1).
    GreedyDual,
    Lru,
    Lfu,
    /// Proteus: LRU, but JSON-derived items are always assumed costlier
    /// than CSV-derived ones (evict CSV first).
    LruJsonPriority,
    /// MonetDB recycler (Ivanova et al., TODS 2010) — approximation.
    MonetDb,
    /// Vectorwise recycling (Nagel et al., ICDE 2013) — approximation.
    Vectorwise,
    /// Offline: evict the entry reused farthest in the future (Belady).
    FarthestFirst,
    /// Offline: cost/size-weighted farthest-first, approximating Irani's
    /// log-optimal multi-size algorithm.
    LogOptimal,
}

impl EvictionKind {
    pub fn name(&self) -> &'static str {
        match self {
            EvictionKind::GreedyDual => "recache-greedy-dual",
            EvictionKind::Lru => "lru",
            EvictionKind::Lfu => "lfu",
            EvictionKind::LruJsonPriority => "lru-json-priority",
            EvictionKind::MonetDb => "monetdb-recycler",
            EvictionKind::Vectorwise => "vectorwise-recycler",
            EvictionKind::FarthestFirst => "offline-farthest-first",
            EvictionKind::LogOptimal => "offline-log-optimal",
        }
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn EvictionPolicy> {
        match self {
            EvictionKind::GreedyDual => Box::new(GreedyDualRecache::new()),
            EvictionKind::Lru => Box::new(Lru),
            EvictionKind::Lfu => Box::new(Lfu),
            EvictionKind::LruJsonPriority => Box::new(LruJsonPriority),
            EvictionKind::MonetDb => Box::new(MonetDbRecycler),
            EvictionKind::Vectorwise => Box::new(VectorwiseRecycler),
            EvictionKind::FarthestFirst => Box::new(FarthestFirst),
            EvictionKind::LogOptimal => Box::new(LogOptimal),
        }
    }

    /// True for the offline algorithms that require a future oracle.
    pub fn is_offline(&self) -> bool {
        matches!(self, EvictionKind::FarthestFirst | EvictionKind::LogOptimal)
    }
}

/// An eviction policy: told about admissions/accesses/removals, asked to
/// pick victims when the cache exceeds its capacity.
pub trait EvictionPolicy: Send {
    fn name(&self) -> &'static str;
    fn on_admit(&mut self, _id: EntryId, _stats: &EntryStats) {}
    fn on_access(&mut self, _id: EntryId, _stats: &EntryStats) {}
    fn on_remove(&mut self, _id: EntryId) {}
    /// Returns the entries to evict; their combined size must reach
    /// `ctx.need_bytes` if the cache holds that much.
    fn select_victims(&mut self, ctx: &EvictionContext<'_>) -> Vec<EntryId>;
}

/// Greedy selection helper shared by the score-ordered baselines: evict
/// in ascending score order until enough bytes are freed.
fn evict_ascending_by<F: FnMut(&EvictView<'_>) -> f64>(
    ctx: &EvictionContext<'_>,
    mut score: F,
) -> Vec<EntryId> {
    let mut scored: Vec<(f64, usize, EntryId)> = ctx
        .entries
        .iter()
        .map(|e| (score(e), e.stats.bytes, e.id))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut freed = 0usize;
    let mut victims = Vec::new();
    for (_, bytes, id) in scored {
        if freed >= ctx.need_bytes {
            break;
        }
        victims.push(id);
        freed += bytes;
    }
    victims
}

// ---------------------------------------------------------------------
// ReCache: Algorithm 1
// ---------------------------------------------------------------------

/// ReCache's cost-based eviction (Algorithm 1).
///
/// A Greedy-Dual instance (Young 1994): each entry carries an inflation
/// tag `L(p)` set to the global baseline `L` at admission/access time;
/// `H(p) = L(p) + b(p)` is *recomputed from the live measurements at
/// every eviction decision* ("ReCache does not update H(p) only when an
/// item p is accessed ... it recomputes the value of H(p) from its
/// individual components whenever an eviction decision needs to be
/// made"). Candidates are gathered in ascending `H` order; the second
/// pass walks them in *descending size* order so far fewer items are
/// evicted than the textbook algorithm would (the knapsack heuristic),
/// finishing with the smallest candidate that covers the remaining need.
#[derive(Debug, Default)]
pub struct GreedyDualRecache {
    /// Global baseline `L`.
    l: f64,
    /// `L(p)`: the baseline value captured at admission/access.
    tags: HashMap<EntryId, f64>,
}

impl GreedyDualRecache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current baseline (exposed for tests).
    pub fn baseline(&self) -> f64 {
        self.l
    }
}

impl EvictionPolicy for GreedyDualRecache {
    fn name(&self) -> &'static str {
        "recache-greedy-dual"
    }

    fn on_admit(&mut self, id: EntryId, _stats: &EntryStats) {
        self.tags.insert(id, self.l);
    }

    fn on_access(&mut self, id: EntryId, _stats: &EntryStats) {
        self.tags.insert(id, self.l);
    }

    fn on_remove(&mut self, id: EntryId) {
        self.tags.remove(&id);
    }

    fn select_victims(&mut self, ctx: &EvictionContext<'_>) -> Vec<EntryId> {
        if ctx.need_bytes == 0 || ctx.entries.is_empty() {
            return Vec::new();
        }
        // H(p) = L(p) + b(p), recomputed now.
        let mut items: Vec<(f64, usize, EntryId)> = ctx
            .entries
            .iter()
            .map(|e| {
                let tag = self.tags.get(&e.id).copied().unwrap_or(self.l);
                (tag + e.stats.benefit(), e.stats.bytes, e.id)
            })
            .collect();
        items.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // First pass: gather candidates in ascending H until they cover
        // the need, raising L to the largest H considered.
        let mut candidates: Vec<(usize, EntryId)> = Vec::new();
        let mut covered = 0usize;
        for (h, bytes, id) in items {
            if covered >= ctx.need_bytes {
                break;
            }
            covered += bytes;
            if self.l <= h {
                self.l = h;
            }
            candidates.push((bytes, id));
        }

        // Second pass: walk candidates in descending size; after each
        // eviction, if a single remaining candidate covers what is left,
        // evict just that one and stop.
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
        let mut victims = Vec::new();
        let mut remaining = ctx.need_bytes as i64;
        let mut i = 0usize;
        while remaining > 0 && i < candidates.len() {
            let (bytes, id) = candidates[i];
            victims.push(id);
            remaining -= bytes as i64;
            i += 1;
            if remaining > 0 {
                // Smallest remaining candidate that alone covers the rest.
                if let Some(&(_, id)) = candidates[i..]
                    .iter()
                    .rev()
                    .find(|(bytes, _)| *bytes as i64 >= remaining)
                {
                    victims.push(id);
                    break;
                }
            }
        }
        victims
    }
}

// ---------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------

/// Least-recently-used.
#[derive(Debug, Default)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn select_victims(&mut self, ctx: &EvictionContext<'_>) -> Vec<EntryId> {
        evict_ascending_by(ctx, |e| e.stats.last_access as f64)
    }
}

/// Least-frequently-used.
#[derive(Debug, Default)]
pub struct Lfu;

impl EvictionPolicy for Lfu {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn select_victims(&mut self, ctx: &EvictionContext<'_>) -> Vec<EntryId> {
        // Ties broken by recency.
        let clock = ctx.clock.max(1) as f64;
        evict_ascending_by(ctx, |e| {
            e.stats.access_count as f64 + e.stats.last_access as f64 / (clock * 2.0)
        })
    }
}

/// Proteus (Karpathiotakis et al., PVLDB 2016): LRU "with the caveat that
/// JSON caching is assumed to be always costlier than CSV" — CSV-derived
/// entries are evicted before any JSON-derived entry.
#[derive(Debug, Default)]
pub struct LruJsonPriority;

impl EvictionPolicy for LruJsonPriority {
    fn name(&self) -> &'static str {
        "lru-json-priority"
    }

    fn select_victims(&mut self, ctx: &EvictionContext<'_>) -> Vec<EntryId> {
        let clock = (ctx.clock + 1) as f64;
        evict_ascending_by(ctx, |e| {
            let class = match e.format {
                FileFormat::Csv => 0.0,
                FileFormat::Json => 1.0,
            };
            class * clock * 2.0 + e.stats.last_access as f64
        })
    }
}

/// MonetDB recycler (Ivanova et al., "An architecture for recycling
/// intermediates in a column-store", TODS 2010), as characterized in
/// §6.3: "MonetDB's benefit metric is based only on the frequency and
/// weight of a cached object, with a heuristic to put an upper bound
/// on the worst-case". Approximation: score = frequency × rebuild-cost
/// per byte; the upper-bound heuristic prefers a single entry that
/// covers the whole need among the cheapest half, bounding the number of
/// evictions.
#[derive(Debug, Default)]
pub struct MonetDbRecycler;

impl EvictionPolicy for MonetDbRecycler {
    fn name(&self) -> &'static str {
        "monetdb-recycler"
    }

    fn select_victims(&mut self, ctx: &EvictionContext<'_>) -> Vec<EntryId> {
        let score = |e: &EvictView<'_>| {
            e.stats.access_count as f64 * e.stats.rebuild_cost_ns() as f64
                / e.stats.bytes.max(1) as f64
        };
        let mut scored: Vec<(f64, usize, EntryId)> = ctx
            .entries
            .iter()
            .map(|e| (score(e), e.stats.bytes, e.id))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        // Upper-bound heuristic: among the cheapest half, a single item
        // covering the entire need wins outright.
        let half = scored.len().div_ceil(2);
        if let Some(&(_, _, id)) = scored[..half]
            .iter()
            .filter(|(_, bytes, _)| *bytes >= ctx.need_bytes)
            .min_by_key(|(_, bytes, _)| *bytes)
        {
            return vec![id];
        }
        let mut freed = 0usize;
        let mut victims = Vec::new();
        for (_, bytes, id) in scored {
            if freed >= ctx.need_bytes {
                break;
            }
            victims.push(id);
            freed += bytes;
        }
        victims
    }
}

/// Vectorwise recycling (Nagel, Boncz, Viglas, "Recycling in pipelined
/// query evaluation", ICDE 2013). Approximation: cost-based eviction of
/// the entry with the smallest saved-cost per byte, aged by recency —
/// cost-aware like ReCache but without reuse counts, reconstruction
/// accounting, or the batch-eviction heuristic.
#[derive(Debug, Default)]
pub struct VectorwiseRecycler;

impl EvictionPolicy for VectorwiseRecycler {
    fn name(&self) -> &'static str {
        "vectorwise-recycler"
    }

    fn select_victims(&mut self, ctx: &EvictionContext<'_>) -> Vec<EntryId> {
        evict_ascending_by(ctx, |e| {
            let age = (ctx.clock.saturating_sub(e.stats.last_access) + 1) as f64;
            let per_byte = e.stats.rebuild_cost_ns() as f64 / e.stats.bytes.max(1) as f64;
            per_byte / age // recency discounts the saved cost
        })
    }
}

/// Offline farthest-first (Belady's MIN): evicts the entry whose next
/// reuse lies farthest in the future. Provably optimal for *unweighted*
/// caches; §6.3 shows ReCache can beat it because object costs and sizes
/// vary.
#[derive(Debug, Default)]
pub struct FarthestFirst;

impl EvictionPolicy for FarthestFirst {
    fn name(&self) -> &'static str {
        "offline-farthest-first"
    }

    fn select_victims(&mut self, ctx: &EvictionContext<'_>) -> Vec<EntryId> {
        debug_assert!(ctx.has_oracle, "farthest-first needs a future oracle");
        // Descending next_use == ascending -(next_use); None = infinity.
        evict_ascending_by(ctx, |e| match e.next_use {
            None => f64::NEG_INFINITY,
            Some(q) => -(q as f64),
        })
    }
}

/// Offline log-optimal approximation (Irani, STOC 1997, multi-size
/// pages): evicts the entry with the worst (distance-to-next-use × size /
/// rebuild-cost) product. Irani's algorithm guarantees O(log k) of
/// optimal; this greedy stand-in reproduces its comparative role in
/// Fig. 14.
#[derive(Debug, Default)]
pub struct LogOptimal;

impl EvictionPolicy for LogOptimal {
    fn name(&self) -> &'static str {
        "offline-log-optimal"
    }

    fn select_victims(&mut self, ctx: &EvictionContext<'_>) -> Vec<EntryId> {
        debug_assert!(ctx.has_oracle, "log-optimal needs a future oracle");
        evict_ascending_by(ctx, |e| {
            let distance = match e.next_use {
                None => return f64::NEG_INFINITY,
                Some(q) => (q.saturating_sub(ctx.clock) + 1) as f64,
            };
            let weight = e.stats.rebuild_cost_ns().max(1) as f64;
            -(distance * e.stats.bytes.max(1) as f64 / weight)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(n: u64, t: u64, bytes: usize, last_access: u64, access_count: u64) -> EntryStats {
        EntryStats {
            n,
            t_ns: t,
            c_ns: t / 10,
            s_ns: 10,
            l_ns: 1,
            bytes,
            last_access,
            access_count,
            created_at: 0,
        }
    }

    fn ctx<'a>(
        entries: &'a [(EntryId, EntryStats, FileFormat, Option<u64>)],
        need: usize,
        clock: u64,
    ) -> EvictionContext<'a> {
        EvictionContext {
            entries: entries
                .iter()
                .map(|(id, st, fmt, next)| EvictView {
                    id: *id,
                    stats: st,
                    format: *fmt,
                    source: "t",
                    next_use: *next,
                })
                .collect(),
            need_bytes: need,
            clock,
            has_oracle: entries.iter().any(|(_, _, _, n)| n.is_some()),
        }
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let entries = vec![
            (1u64, stats(1, 100, 100, 5, 1), FileFormat::Csv, None),
            (2, stats(1, 100, 100, 1, 1), FileFormat::Csv, None),
            (3, stats(1, 100, 100, 9, 1), FileFormat::Csv, None),
        ];
        let victims = Lru.select_victims(&ctx(&entries, 150, 10));
        assert_eq!(victims, vec![2, 1]);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let entries = vec![
            (1u64, stats(1, 100, 100, 5, 7), FileFormat::Csv, None),
            (2, stats(1, 100, 100, 6, 2), FileFormat::Csv, None),
        ];
        let victims = Lfu.select_victims(&ctx(&entries, 50, 10));
        assert_eq!(victims, vec![2]);
    }

    #[test]
    fn proteus_evicts_csv_before_json() {
        let entries = vec![
            (1u64, stats(1, 100, 100, 1, 1), FileFormat::Json, None),
            (2, stats(1, 100, 100, 9, 1), FileFormat::Csv, None),
        ];
        // JSON is older but CSV goes first under Proteus' rule.
        let victims = LruJsonPriority.select_victims(&ctx(&entries, 50, 10));
        assert_eq!(victims, vec![2]);
    }

    #[test]
    fn greedy_dual_prefers_evicting_cheap_items() {
        let entries = vec![
            // Expensive to rebuild, reused often.
            (
                1u64,
                stats(8, 1_000_000, 1000, 5, 9),
                FileFormat::Json,
                None,
            ),
            // Cheap, rarely used.
            (2, stats(1, 1_000, 1000, 6, 1), FileFormat::Csv, None),
        ];
        let mut policy = GreedyDualRecache::new();
        policy.on_admit(1, &entries[0].1);
        policy.on_admit(2, &entries[1].1);
        let victims = policy.select_victims(&ctx(&entries, 500, 10));
        assert_eq!(victims, vec![2]);
    }

    #[test]
    fn greedy_dual_second_pass_evicts_fewer_larger_items() {
        // Paper example (§5.1): reclaiming 1 GB from candidates of 100,
        // 200, 300 and 800 MB should evict only two items: 800 MB first
        // (largest), then the smallest candidate covering the remaining
        // 224 MB — the 300 MB item.
        let mb = 1 << 20;
        let entries = vec![
            (1u64, stats(0, 10, 100 * mb, 1, 0), FileFormat::Csv, None),
            (2, stats(0, 20, 200 * mb, 2, 0), FileFormat::Csv, None),
            (3, stats(0, 30, 300 * mb, 3, 0), FileFormat::Csv, None),
            (4, stats(0, 40, 800 * mb, 4, 0), FileFormat::Csv, None),
        ];
        let mut policy = GreedyDualRecache::new();
        for (id, st, _, _) in &entries {
            policy.on_admit(*id, st);
        }
        let mut victims = policy.select_victims(&ctx(&entries, 1024 * mb, 10));
        victims.sort_unstable();
        assert_eq!(victims, vec![3, 4]);
    }

    #[test]
    fn greedy_dual_baseline_rises_with_evictions() {
        let entries = vec![
            (1u64, stats(5, 100_000, 1000, 1, 5), FileFormat::Csv, None),
            (2, stats(5, 200_000, 1000, 2, 5), FileFormat::Csv, None),
        ];
        let mut policy = GreedyDualRecache::new();
        policy.on_admit(1, &entries[0].1);
        policy.on_admit(2, &entries[1].1);
        assert_eq!(policy.baseline(), 0.0);
        let _ = policy.select_victims(&ctx(&entries, 500, 10));
        assert!(policy.baseline() > 0.0);
    }

    #[test]
    fn greedy_dual_aging_lets_old_expensive_items_leave() {
        // Recently accessed cheap item vs long-untouched expensive item:
        // after the baseline has risen past the old item's H, it becomes
        // evictable even though its raw benefit is higher.
        let old_expensive = stats(1, 500_000, 1000, 0, 1);
        let new_cheap = stats(1, 400_000, 1000, 50, 1);
        let mut policy = GreedyDualRecache::new();
        policy.on_admit(1, &old_expensive);
        // Baseline rises over time (simulate a big eviction round).
        let filler = stats(1, 900_000, 1000, 10, 1);
        policy.on_admit(3, &filler);
        let entries_round1 = vec![(3u64, filler.clone(), FileFormat::Csv, None)];
        let _ = policy.select_victims(&ctx(&entries_round1, 500, 60));
        // The new item is tagged with the raised baseline.
        policy.on_admit(2, &new_cheap);
        let entries = vec![
            (1u64, old_expensive, FileFormat::Csv, None),
            (2, new_cheap, FileFormat::Csv, None),
        ];
        let victims = policy.select_victims(&ctx(&entries, 500, 61));
        assert_eq!(victims, vec![1], "the stale item should age out");
    }

    #[test]
    fn farthest_first_uses_oracle() {
        let entries = vec![
            (1u64, stats(1, 100, 100, 1, 1), FileFormat::Csv, Some(12)),
            (2, stats(1, 100, 100, 1, 1), FileFormat::Csv, Some(50)),
            (3, stats(1, 100, 100, 1, 1), FileFormat::Csv, None),
        ];
        let victims = FarthestFirst.select_victims(&ctx(&entries, 150, 10));
        // Never-reused first, then farthest.
        assert_eq!(victims, vec![3, 2]);
    }

    #[test]
    fn log_optimal_weighs_cost_and_size() {
        let entries = vec![
            // Reused soon but cheap and huge: good victim.
            (1u64, stats(1, 10, 1 << 20, 1, 1), FileFormat::Csv, Some(11)),
            // Reused later but very expensive and small: keep.
            (2, stats(1, 10_000_000, 64, 1, 1), FileFormat::Csv, Some(20)),
        ];
        let victims = LogOptimal.select_victims(&ctx(&entries, 100, 10));
        assert_eq!(victims, vec![1]);
    }

    #[test]
    fn monetdb_upper_bound_prefers_single_covering_entry() {
        let entries = vec![
            (1u64, stats(1, 100, 100, 1, 1), FileFormat::Csv, None),
            (2, stats(1, 110, 100, 1, 1), FileFormat::Csv, None),
            (3, stats(1, 120, 5000, 1, 1), FileFormat::Csv, None),
            (4, stats(9, 999_999, 100, 1, 9), FileFormat::Csv, None),
        ];
        let victims = MonetDbRecycler.select_victims(&ctx(&entries, 400, 10));
        assert_eq!(victims, vec![3], "one covering entry beats many small ones");
    }

    #[test]
    fn vectorwise_evicts_low_value_per_byte() {
        let entries = vec![
            (1u64, stats(1, 1_000_000, 100, 9, 1), FileFormat::Csv, None),
            (2, stats(1, 10, 100, 9, 1), FileFormat::Csv, None),
        ];
        let victims = VectorwiseRecycler.select_victims(&ctx(&entries, 50, 10));
        assert_eq!(victims, vec![2]);
    }

    #[test]
    fn zero_need_evicts_nothing() {
        let entries = vec![(1u64, stats(1, 100, 100, 1, 1), FileFormat::Csv, None)];
        let mut policy = GreedyDualRecache::new();
        policy.on_admit(1, &entries[0].1);
        assert!(policy.select_victims(&ctx(&entries, 0, 1)).is_empty());
        assert!(Lru.select_victims(&ctx(&entries, 0, 1)).is_empty());
    }

    #[test]
    fn all_policies_free_enough_bytes() {
        let entries: Vec<(EntryId, EntryStats, FileFormat, Option<u64>)> = (0..20u64)
            .map(|i| {
                (
                    i,
                    stats(i % 5, 1000 * (i + 1), 100 + 37 * i as usize, i, i % 4),
                    if i % 2 == 0 {
                        FileFormat::Csv
                    } else {
                        FileFormat::Json
                    },
                    Some(100 + i),
                )
            })
            .collect();
        let need = 900usize;
        for kind in [
            EvictionKind::GreedyDual,
            EvictionKind::Lru,
            EvictionKind::Lfu,
            EvictionKind::LruJsonPriority,
            EvictionKind::MonetDb,
            EvictionKind::Vectorwise,
            EvictionKind::FarthestFirst,
            EvictionKind::LogOptimal,
        ] {
            let mut policy = kind.build();
            for (id, st, _, _) in &entries {
                policy.on_admit(*id, st);
            }
            let victims = policy.select_victims(&ctx(&entries, need, 50));
            let freed: usize = victims
                .iter()
                .map(|v| entries.iter().find(|(id, ..)| id == v).unwrap().1.bytes)
                .sum();
            assert!(
                freed >= need,
                "{} freed only {freed} of {need}",
                kind.name()
            );
            // No duplicates.
            let mut unique = victims.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(
                unique.len(),
                victims.len(),
                "{} duplicated victims",
                kind.name()
            );
        }
    }
}
