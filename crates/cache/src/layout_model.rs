//! Automatic cache-layout selection (§4.2–4.3).
//!
//! Per cached item, ReCache tracks a window of per-query observations —
//! data-access cost `Di`, computational cost `Ci`, rows needed `ri`,
//! columns accessed `ci` — plus the item's flattened row count `R`, and
//! applies the paper's cost model:
//!
//! * currently Dremel/Parquet (Eqs. 1–3): switch to relational columnar
//!   when `Σ(Di + Ci) > Σ(Di · R/ri) + T`, `T = max((Di + Ci) · R/ri)`;
//! * currently relational columnar (Eqs. 4–5): switch to Parquet when
//!   `Σ Di > Σ(Di + ComputeCost(ri, ci)) · ri/R + T`, where
//!   `ComputeCost` is the `Ci` of the historical Parquet-layout query
//!   nearest in (rows, columns) accessed;
//! * the tracking window restarts after every switch, so a rapidly
//!   alternating workload cannot thrash the layout.
//!
//! For purely flat data the H2O-style chooser (§4.3) estimates data-cache
//! misses of row vs columnar layouts from the same window.
//!
//! Two engineering refinements over the paper's description (recorded in
//! `DESIGN.md`):
//! * `ComputeCost` is *level-aware*: record-level queries on the Dremel
//!   layout read short non-repeated columns without record assembly, so
//!   their compute cost is estimated from record-level history only
//!   (zero when none exists) — element-level history would wildly
//!   overestimate them;
//! * the window is bounded (`WINDOW_CAP` most recent observations since
//!   the last switch). With a literally unbounded window, a long phase
//!   accumulates so much evidence that no later phase can ever win,
//!   which contradicts the switching behaviour Fig. 9a reports.

use recache_layout::LayoutKind;
use std::collections::VecDeque;

/// Maximum observations kept since the last switch.
const WINDOW_CAP: usize = 96;

/// One query's interaction with a cached item.
#[derive(Debug, Clone, Copy)]
pub struct QueryObservation {
    /// Data-access cost `Di` (ns).
    pub d_ns: u64,
    /// Computational cost `Ci` (ns).
    pub c_ns: u64,
    /// Rows the query semantically needed (`ri`): record count for
    /// record-level queries, flattened row count for element-level.
    pub rows: usize,
    /// Columns (leaves) accessed (`ci`).
    pub cols: usize,
    /// Layout the item had when this query ran.
    pub layout: LayoutKind,
}

/// The layout decision for a nested cached item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutDecision {
    Stay,
    SwitchToColumnar,
    SwitchToDremel,
}

/// Row vs columnar choice for flat cached items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatLayoutChoice {
    Row,
    Columnar,
}

/// Per-entry observation window plus long-term Parquet compute history.
#[derive(Debug, Clone, Default)]
pub struct LayoutHistory {
    /// Most recent observations since the last layout switch (bounded).
    window: VecDeque<QueryObservation>,
    /// Dremel-layout observations (the `ComputeCost(r, c)`
    /// nearest-neighbour estimator needs them even after switches).
    dremel_history: Vec<QueryObservation>,
    /// Number of layout switches performed (stats/diagnostics).
    pub switches: u32,
}

impl LayoutHistory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query's measurements.
    pub fn observe(&mut self, obs: QueryObservation) {
        if obs.layout == LayoutKind::Dremel {
            self.dremel_history.push(obs);
            // Bound the long-term history; old workload phases stop being
            // representative anyway.
            if self.dremel_history.len() > 256 {
                self.dremel_history.remove(0);
            }
        }
        if self.window.len() >= WINDOW_CAP {
            self.window.pop_front();
        }
        self.window.push_back(obs);
    }

    /// Observations since the last switch (most recent `WINDOW_CAP`).
    pub fn window(&self) -> &VecDeque<QueryObservation> {
        &self.window
    }

    /// Moves the window forward after a switch ("it moves forward the
    /// window for further query tracking to look at new incoming
    /// queries").
    pub fn reset_window(&mut self) {
        self.window.clear();
        self.switches += 1;
    }

    /// `ComputeCost(rows, cols)`: the compute cost of the historical
    /// Dremel-layout query closest to `(rows, cols)`, considering only
    /// history at the same access level (`rows < r_total` = record-level,
    /// otherwise element-level).
    ///
    /// Record-level Dremel scans read short non-repeated columns with no
    /// record assembly, so with no record-level history the estimate is
    /// zero; element-level queries with no history fall back to a
    /// per-value decode estimate.
    pub fn compute_cost_estimate(&self, rows: usize, cols: usize, r_total: usize) -> u64 {
        let record_level = rows < r_total;
        let candidate = self
            .dremel_history
            .iter()
            .filter(|o| (o.rows < r_total) == record_level)
            .min_by(|a, b| {
                let da = observation_distance(a, rows, cols);
                let db = observation_distance(b, rows, cols);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            });
        match (candidate, record_level) {
            (Some(o), _) => o.c_ns,
            (None, true) => 0,
            // No element-level history: assume ~4ns of level-decoding
            // per value.
            (None, false) => (rows * cols * 4) as u64,
        }
    }

    /// Applies the §4.2 cost model given the item's current layout and
    /// flattened row count `R`.
    pub fn decide_nested(&self, current: LayoutKind, r_total: usize) -> LayoutDecision {
        if self.window.is_empty() || r_total == 0 {
            return LayoutDecision::Stay;
        }
        match current {
            LayoutKind::Dremel => {
                // Eq. 1-3.
                let mut cost_parquet = 0.0f64;
                let mut cost_relational = 0.0f64;
                let mut t_switch = 0.0f64;
                for o in &self.window {
                    if o.layout != LayoutKind::Dremel {
                        continue;
                    }
                    let scale = r_total as f64 / o.rows.max(1) as f64;
                    cost_parquet += (o.d_ns + o.c_ns) as f64;
                    cost_relational += o.d_ns as f64 * scale;
                    t_switch = t_switch.max((o.d_ns + o.c_ns) as f64 * scale);
                }
                if cost_parquet > cost_relational + t_switch {
                    LayoutDecision::SwitchToColumnar
                } else {
                    LayoutDecision::Stay
                }
            }
            LayoutKind::Columnar => {
                // Eq. 4-5.
                let mut cost_relational = 0.0f64;
                let mut cost_parquet = 0.0f64;
                let mut t_switch = 0.0f64;
                for o in &self.window {
                    if o.layout != LayoutKind::Columnar {
                        continue;
                    }
                    let ratio = o.rows.max(1) as f64 / r_total as f64;
                    cost_relational += o.d_ns as f64;
                    let compute = self.compute_cost_estimate(o.rows, o.cols, r_total) as f64;
                    cost_parquet += (o.d_ns as f64 + compute) * ratio;
                    let scale = r_total as f64 / o.rows.max(1) as f64;
                    t_switch = t_switch.max((o.d_ns + o.c_ns) as f64 * scale);
                }
                if cost_relational > cost_parquet + t_switch {
                    LayoutDecision::SwitchToDremel
                } else {
                    LayoutDecision::Stay
                }
            }
            _ => LayoutDecision::Stay,
        }
    }

    /// H2O-style row/column chooser for flat items (§4.3): estimates
    /// data-cache misses for both layouts over the window and returns the
    /// cheaper one. `total_cols` is the tuple width; values are modelled
    /// as 8 bytes against 64-byte cache lines.
    pub fn decide_flat(&self, total_cols: usize) -> FlatLayoutChoice {
        const VALUE_BYTES: f64 = 8.0;
        const LINE_BYTES: f64 = 64.0;
        let mut col_misses = 0.0f64;
        let mut row_misses = 0.0f64;
        for o in &self.window {
            let rows = o.rows as f64;
            // Columnar: touch ci columns, each contiguous.
            col_misses += (o.cols as f64 * rows * VALUE_BYTES / LINE_BYTES).ceil();
            // Row: every tuple's full width streams through the cache.
            row_misses += (rows * total_cols as f64 * VALUE_BYTES / LINE_BYTES).ceil();
        }
        if row_misses < col_misses {
            FlatLayoutChoice::Row
        } else {
            FlatLayoutChoice::Columnar
        }
    }
}

fn observation_distance(o: &QueryObservation, rows: usize, cols: usize) -> f64 {
    let row_ratio = (o.rows.max(1) as f64 / rows.max(1) as f64).ln().abs();
    let col_diff = (o.cols as f64 - cols as f64).abs();
    row_ratio + col_diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(d: u64, c: u64, rows: usize, cols: usize, layout: LayoutKind) -> QueryObservation {
        QueryObservation {
            d_ns: d,
            c_ns: c,
            rows,
            cols,
            layout,
        }
    }

    /// The paper's worked example (§4.2): 5 queries, ΣDi = 1000,
    /// ΣCi = 2000, 4 lineitems per order.
    #[test]
    fn paper_example_non_nested_access_keeps_parquet() {
        let mut history = LayoutHistory::new();
        // Non-nested access: ri = R/4 = 100, R = 400.
        for _ in 0..5 {
            history.observe(obs(200, 400, 100, 2, LayoutKind::Dremel));
        }
        // Costparquet = 3000, Costrelational = 4000, T = 2400 -> stay.
        assert_eq!(
            history.decide_nested(LayoutKind::Dremel, 400),
            LayoutDecision::Stay
        );
    }

    #[test]
    fn paper_example_nested_access_switches_to_columnar() {
        let mut history = LayoutHistory::new();
        // Nested access: ri = R = 400.
        for _ in 0..5 {
            history.observe(obs(200, 400, 400, 2, LayoutKind::Dremel));
        }
        // Costparquet = 3000, Costrelational = 1000, T = 600 -> switch.
        assert_eq!(
            history.decide_nested(LayoutKind::Dremel, 400),
            LayoutDecision::SwitchToColumnar
        );
    }

    #[test]
    fn columnar_switches_back_when_queries_go_record_level() {
        let mut history = LayoutHistory::new();
        // An element-level Dremel observation exists, but record-level
        // ComputeCost ignores it (short-column fast path -> 0).
        history.observe(obs(200, 400, 400, 2, LayoutKind::Dremel));
        history.reset_window();
        // Columnar phase: record-level queries needing 100 of 400 rows,
        // but Di measured on the columnar layout is the full-R scan.
        for _ in 0..6 {
            history.observe(obs(800, 0, 100, 2, LayoutKind::Columnar));
        }
        // Costrelational = 4800.
        // Costparquet = 6 * (800 + 0) * 0.25 = 1200; T = 800*4 = 3200.
        // 4800 > 4400 -> switch.
        assert_eq!(
            history.decide_nested(LayoutKind::Columnar, 400),
            LayoutDecision::SwitchToDremel
        );
    }

    #[test]
    fn element_level_phase_blocks_switch_to_dremel() {
        let mut history = LayoutHistory::new();
        // Seed an element-level Dremel observation with heavy compute.
        history.observe(obs(200, 2000, 400, 2, LayoutKind::Dremel));
        history.reset_window();
        // Element-level columnar queries (rows == R): Parquet would pay
        // the assembly compute, so the layout stays columnar.
        for _ in 0..20 {
            history.observe(obs(800, 0, 400, 2, LayoutKind::Columnar));
        }
        assert_eq!(
            history.decide_nested(LayoutKind::Columnar, 400),
            LayoutDecision::Stay
        );
    }

    #[test]
    fn window_reset_prevents_thrashing() {
        let mut history = LayoutHistory::new();
        for _ in 0..5 {
            history.observe(obs(200, 400, 400, 2, LayoutKind::Dremel));
        }
        assert_eq!(
            history.decide_nested(LayoutKind::Dremel, 400),
            LayoutDecision::SwitchToColumnar
        );
        history.reset_window();
        assert_eq!(history.window().len(), 0);
        assert_eq!(history.switches, 1);
        // Fresh window: no evidence yet, stay put.
        assert_eq!(
            history.decide_nested(LayoutKind::Columnar, 400),
            LayoutDecision::Stay
        );
    }

    #[test]
    fn compute_cost_uses_nearest_neighbour() {
        let mut history = LayoutHistory::new();
        history.observe(obs(100, 111, 100, 2, LayoutKind::Dremel));
        history.observe(obs(100, 999, 10_000, 8, LayoutKind::Dremel));
        // Both observations are record-level w.r.t. R = 20_000.
        assert_eq!(history.compute_cost_estimate(120, 2, 20_000), 111);
        assert_eq!(history.compute_cost_estimate(9_000, 8, 20_000), 999);
    }

    #[test]
    fn compute_cost_is_level_aware() {
        let mut history = LayoutHistory::new();
        // Only an element-level observation (rows == R) exists.
        history.observe(obs(100, 5_000, 400, 2, LayoutKind::Dremel));
        // Record-level estimate ignores it: short columns, no assembly.
        assert_eq!(history.compute_cost_estimate(100, 2, 400), 0);
        // Element-level estimate uses it.
        assert_eq!(history.compute_cost_estimate(400, 2, 400), 5_000);
    }

    #[test]
    fn compute_cost_fallback_without_history() {
        let history = LayoutHistory::new();
        // Element-level (rows == R): per-value decode estimate.
        assert_eq!(history.compute_cost_estimate(100, 3, 100), 1200);
        // Record-level: zero (short-column fast path).
        assert_eq!(history.compute_cost_estimate(50, 3, 100), 0);
    }

    #[test]
    fn empty_window_stays() {
        let history = LayoutHistory::new();
        assert_eq!(
            history.decide_nested(LayoutKind::Dremel, 100),
            LayoutDecision::Stay
        );
        assert_eq!(
            history.decide_nested(LayoutKind::Columnar, 100),
            LayoutDecision::Stay
        );
    }

    #[test]
    fn flat_chooser_prefers_columns_for_narrow_projections() {
        let mut history = LayoutHistory::new();
        // 2 of 16 columns accessed.
        for _ in 0..10 {
            history.observe(obs(0, 0, 1000, 2, LayoutKind::Columnar));
        }
        assert_eq!(history.decide_flat(16), FlatLayoutChoice::Columnar);
    }

    #[test]
    fn flat_chooser_prefers_rows_for_full_tuples() {
        let mut history = LayoutHistory::new();
        // All 16 columns accessed: row layout reads the same bytes with
        // better locality; the miss estimate ties, columnar wins ties,
        // so model row advantage via wider-than-width access (selects
        // every column plus padding effects are equal) — H2O picks row
        // only when it strictly wins.
        for _ in 0..10 {
            history.observe(obs(0, 0, 1000, 16, LayoutKind::Row));
        }
        // Equal misses -> columnar (ties favour the default layout).
        assert_eq!(history.decide_flat(16), FlatLayoutChoice::Columnar);
        // Narrower tuple than accessed columns cannot happen; test the
        // strict-win path with a 4-wide tuple and 8 accessed (degenerate
        // input documents the comparison direction).
        let mut history = LayoutHistory::new();
        for _ in 0..10 {
            history.observe(obs(0, 0, 1000, 8, LayoutKind::Row));
        }
        assert_eq!(history.decide_flat(4), FlatLayoutChoice::Row);
    }

    #[test]
    fn histories_are_bounded() {
        let mut history = LayoutHistory::new();
        for i in 0..300 {
            history.observe(obs(1, i, 10, 1, LayoutKind::Dremel));
        }
        // The decision window keeps the most recent WINDOW_CAP entries.
        assert_eq!(history.window().len(), 96);
        assert_eq!(history.window().front().unwrap().c_ns, 300 - 96);
        // Long-term history capped at 256: entries 0..44 were dropped, so
        // the nearest-neighbour (all tied at distance 0) is the oldest
        // survivor, c=44. All obs are record-level w.r.t. R=20.
        assert_eq!(history.compute_cost_estimate(10, 1, 20), 44);
        assert!(history.dremel_history.len() <= 256);
    }
}
