//! ReCache's cache policies: the paper's primary contribution.
//!
//! * [`stats`] — per-entry cost measurements (`n`, `t`, `c`, `s`, `l`,
//!   `B`) and the benefit metric `b(p) = n·(t + c − s − l)/log₂(B)`
//!   (Fig. 8),
//! * [`eviction`] — Algorithm 1 (a Greedy-Dual instance with a
//!   size-descending batch heuristic) plus the baselines the paper
//!   compares against: LRU, LFU, Proteus' LRU-with-JSON-priority, the
//!   MonetDB and Vectorwise recyclers, and two offline algorithms
//!   (farthest-first and a log-optimal approximation),
//! * [`admission`] — the reactive eager/lazy admission controller of
//!   §5.2 (sampled caching-overhead extrapolation against a threshold),
//! * [`layout_model`] — the automatic layout selector of §4.2 (Eqs. 1–5)
//!   and the H2O-style row/column chooser of §4.3,
//! * [`registry`] — the cache itself: exact-match signatures, R-tree
//!   range-predicate subsumption (§3.3), stat upkeep and eviction
//!   driving.

pub mod admission;
pub mod eviction;
pub mod layout_model;
pub mod registry;
pub mod stats;

pub use admission::{AdmissionConfig, AdmissionDecision};
pub use eviction::{
    EvictView, EvictionContext, EvictionKind, EvictionPolicy, FarthestFirst, GreedyDualRecache,
    Lfu, LogOptimal, Lru, LruJsonPriority, MonetDbRecycler, VectorwiseRecycler,
};
pub use layout_model::{FlatLayoutChoice, LayoutDecision, LayoutHistory, QueryObservation};
pub use registry::{
    CacheEntry, CacheRegistry, EntryId, EntrySnapshot, FutureOracle, InvalidationListener,
    LeafRange, MatchResult,
};
pub use stats::{EntryStats, RegistryCounters};
