//! Reactive cache admission (§5.2): eager vs lazy, decided by sampling.
//!
//! Eager caching parses and stores complete tuples; lazy caching keeps
//! only the offsets of satisfying tuples. ReCache starts caching a small
//! sample eagerly, tracks the time spent caching (`tc`) against the total
//! query time (`to`), extrapolates both to the end of the file —
//! `to = to1 + N·(to2 − to1)`, `tc = tc1 + N·(tc2 − tc1)` — and switches
//! to lazy when `tc/to` exceeds a user threshold. A lazy item that gets
//! reused is upgraded to eager; and as long as any cached item from the
//! same file survives, the file is considered part of the working set and
//! further admissions skip sampling and go straight to eager.

/// Admission configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum tolerated caching overhead `tc/to` (default 0.10, the
    /// paper's chosen threshold from Fig. 12b).
    pub threshold: f64,
    /// Records sampled eagerly before deciding.
    pub sample_records: usize,
    /// Always cache eagerly / lazily regardless of measurements (the
    /// paper's static *eager* and *lazy* baselines).
    pub force: Option<AdmissionDecision>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            threshold: 0.10,
            sample_records: 256,
            force: None,
        }
    }
}

impl AdmissionConfig {
    pub fn eager_only() -> Self {
        AdmissionConfig {
            force: Some(AdmissionDecision::Eager),
            ..Default::default()
        }
    }

    pub fn lazy_only() -> Self {
        AdmissionConfig {
            force: Some(AdmissionDecision::Lazy),
            ..Default::default()
        }
    }

    pub fn with_threshold(threshold: f64) -> Self {
        AdmissionConfig {
            threshold,
            ..Default::default()
        }
    }
}

/// The admission mode chosen for a new cached item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Fully parse and store every satisfying tuple.
    Eager,
    /// Store only the offsets of satisfying tuples.
    Lazy,
}

/// Extrapolated caching overhead.
///
/// * `to1_ns` — total query time before caching work began (`to1`; the
///   join-aware correction of §5.2: time already sunk into other
///   operators counts toward `to`),
/// * `tc_sample_ns` — caching time spent on the sample (`tc2 − tc1`),
/// * `other_sample_ns` — non-caching work interleaved with the sample
///   (`(to2 − to1) − (tc2 − tc1)`; zero in a dedicated caching pass),
/// * `sampled` / `total` — records in the sample vs records to cache.
///
/// Returns `tc / to` after scaling the sample by `N = total / sampled`.
pub fn estimate_overhead(
    to1_ns: u64,
    tc_sample_ns: u64,
    other_sample_ns: u64,
    sampled: usize,
    total: usize,
) -> f64 {
    if sampled == 0 || total == 0 {
        return 0.0;
    }
    let n = (total as f64 / sampled as f64).max(1.0);
    let tc = tc_sample_ns as f64 * n;
    let to = to1_ns as f64 + (tc_sample_ns + other_sample_ns) as f64 * n;
    if to <= 0.0 {
        return 0.0;
    }
    tc / to
}

/// Decides eager vs lazy for a previously unseen item.
///
/// `file_in_working_set`: true when other cached items from the same file
/// are still resident — admission then skips sampling and goes eager.
pub fn decide(
    config: &AdmissionConfig,
    overhead: f64,
    file_in_working_set: bool,
) -> AdmissionDecision {
    if let Some(forced) = config.force {
        return forced;
    }
    if file_in_working_set {
        return AdmissionDecision::Eager;
    }
    if overhead > config.threshold {
        AdmissionDecision::Lazy
    } else {
        AdmissionDecision::Eager
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_extrapolates_by_sample_ratio() {
        // 1ms query so far; caching 100 sampled records took 1ms; 1000
        // records total -> tc = 10ms, to = 1 + 10 = 11ms.
        let overhead = estimate_overhead(1_000_000, 1_000_000, 0, 100, 1000);
        assert!((overhead - 10.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn join_work_counts_toward_total_time() {
        // §5.2's example: an expensive join before the cached select makes
        // the *sample* overhead look tiny; extrapolation must not.
        // Join took 10s (to1); caching 1000 of 1M records took 100ms.
        let overhead_naive = 0.1 / 10.1; // what the sample alone suggests
        let overhead = estimate_overhead(10_000_000_000, 100_000_000, 0, 1000, 1_000_000);
        // tc = 100s, to = 10s + 100s -> ~0.909, far above the naive 1%.
        assert!(overhead > 0.9, "overhead {overhead}");
        assert!(overhead_naive < 0.01);
    }

    #[test]
    fn zero_sample_is_zero_overhead() {
        assert_eq!(estimate_overhead(1000, 0, 0, 0, 100), 0.0);
        assert_eq!(estimate_overhead(1000, 10, 0, 10, 0), 0.0);
    }

    #[test]
    fn decision_respects_threshold() {
        let config = AdmissionConfig::with_threshold(0.10);
        assert_eq!(decide(&config, 0.05, false), AdmissionDecision::Eager);
        assert_eq!(decide(&config, 0.25, false), AdmissionDecision::Lazy);
        // Exactly at threshold stays eager ("exceeded" switches).
        assert_eq!(decide(&config, 0.10, false), AdmissionDecision::Eager);
    }

    #[test]
    fn working_set_short_circuits_to_eager() {
        let config = AdmissionConfig::with_threshold(0.10);
        assert_eq!(decide(&config, 0.99, true), AdmissionDecision::Eager);
    }

    #[test]
    fn forced_modes_ignore_measurements() {
        assert_eq!(
            decide(&AdmissionConfig::eager_only(), 0.99, false),
            AdmissionDecision::Eager
        );
        assert_eq!(
            decide(&AdmissionConfig::lazy_only(), 0.0, true),
            AdmissionDecision::Lazy
        );
    }

    #[test]
    fn interleaved_non_caching_work_lowers_overhead() {
        // Same caching time, but the sample also did real query work.
        let pure = estimate_overhead(0, 1_000, 0, 10, 100);
        let mixed = estimate_overhead(0, 1_000, 3_000, 10, 100);
        assert!(mixed < pure);
        assert!((mixed - 0.25).abs() < 1e-9);
    }
}
