//! Layout ↔ layout transformations.
//!
//! When ReCache's cost model decides a cached item should switch layout
//! (§4.2), the item is re-materialized: records are reassembled from the
//! current store and shredded/flattened into the new one. The measured
//! wall-clock duration is reported so the cache can compare it against
//! the estimated transformation cost `T = max((Di + Ci) · R / ri)`.

use crate::{ColumnStore, DremelStore, RowStore};
use std::time::{Duration, Instant};

/// Dremel → relational columnar. Returns the new store and the measured
/// transformation time. Source record ids survive every conversion so
/// scans over the switched layout keep reporting file record ids.
pub fn dremel_to_columnar(store: &DremelStore) -> (ColumnStore, Duration) {
    let t0 = Instant::now();
    let records = store.to_records();
    let mut out = ColumnStore::build(store.schema(), records.iter());
    if let Some(ids) = store.source_record_ids() {
        out.set_source_record_ids(ids.to_vec());
    }
    (out, t0.elapsed())
}

/// Relational columnar → Dremel.
pub fn columnar_to_dremel(store: &ColumnStore) -> (DremelStore, Duration) {
    let t0 = Instant::now();
    let records = store.to_records();
    let mut out = DremelStore::build(store.schema(), records.iter());
    if let Some(ids) = store.source_record_ids() {
        out.set_source_record_ids(ids.to_vec());
    }
    (out, t0.elapsed())
}

/// Relational columnar → row-oriented (H2O-style switch).
pub fn columnar_to_row(store: &ColumnStore) -> (RowStore, Duration) {
    let t0 = Instant::now();
    let records = store.to_records();
    let mut out = RowStore::build(store.schema(), records.iter());
    if let Some(ids) = store.source_record_ids() {
        out.set_source_record_ids(ids.to_vec());
    }
    (out, t0.elapsed())
}

/// Row-oriented → relational columnar.
pub fn row_to_columnar(store: &RowStore) -> (ColumnStore, Duration) {
    let t0 = Instant::now();
    let records = store.to_records();
    let mut out = ColumnStore::build(store.schema(), records.iter());
    if let Some(ids) = store.source_record_ids() {
        out.set_source_record_ids(ids.to_vec());
    }
    (out, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::{flatten_record, DataType, Field, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("o", DataType::Int),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![Field::required(
                    "q",
                    DataType::Int,
                )]))),
            ),
        ])
    }

    fn records() -> Vec<Value> {
        (0..40)
            .map(|i| {
                Value::Struct(vec![
                    Value::Int(i),
                    Value::List(
                        (0..(i % 5))
                            .map(|j| Value::Struct(vec![Value::Int(j)]))
                            .collect(),
                    ),
                ])
            })
            .collect()
    }

    fn scans_agree(a: &[Vec<Value>], b: &[Vec<Value>]) {
        assert_eq!(a, b);
    }

    #[test]
    fn dremel_columnar_round_trip_preserves_scans() {
        let rs = records();
        let schema = schema();
        let dremel = DremelStore::build(&schema, rs.iter());
        let (columnar, t) = dremel_to_columnar(&dremel);
        assert!(t.as_nanos() > 0);
        let mut a = Vec::new();
        dremel.scan(&[0, 1], false, &mut |_, r| a.push(r.to_vec()));
        let mut b = Vec::new();
        columnar.scan(&[0, 1], false, &mut |_, r| b.push(r.to_vec()));
        scans_agree(&a, &b);

        let (dremel2, _) = columnar_to_dremel(&columnar);
        let mut c = Vec::new();
        dremel2.scan(&[0, 1], false, &mut |_, r| c.push(r.to_vec()));
        scans_agree(&a, &c);
        assert_eq!(dremel2.record_count(), dremel.record_count());
        assert_eq!(dremel2.flattened_rows(), dremel.flattened_rows());
    }

    #[test]
    fn conversions_propagate_source_record_ids() {
        let rs = records();
        let schema = schema();
        let ids: Vec<u32> = (0..rs.len() as u32).map(|i| i * 3 + 5).collect();
        let mut dremel = DremelStore::build(&schema, rs.iter());
        dremel.set_source_record_ids(ids.clone());
        let (columnar, _) = dremel_to_columnar(&dremel);
        assert_eq!(columnar.source_record_ids(), Some(ids.as_slice()));
        let (rows, _) = columnar_to_row(&columnar);
        assert_eq!(rows.source_record_ids(), Some(ids.as_slice()));
        let (back, _) = row_to_columnar(&rows);
        let (dremel2, _) = columnar_to_dremel(&back);
        assert_eq!(dremel2.source_record_ids(), Some(ids.as_slice()));
    }

    #[test]
    fn row_conversions_preserve_flattened_view() {
        let rs = records();
        let schema = schema();
        let columnar = ColumnStore::build(&schema, rs.iter());
        let (rows, _) = columnar_to_row(&columnar);
        let (back, _) = row_to_columnar(&rows);
        for (a, b) in columnar.to_records().iter().zip(back.to_records().iter()) {
            assert_eq!(flatten_record(&schema, a), flatten_record(&schema, b));
        }
    }
}
