//! Lazy (offsets-only) cache layout.
//!
//! §5.2 of the paper: "a lazy caching policy, which only caches the file
//! offsets of satisfying tuples, has a lower overhead but also a lower
//! benefit if the cache is reused". This store keeps the *record ids* of
//! satisfying tuples; reuse goes back to the raw file through its
//! positional map (`RawFile::scan_records_projected`), paying parse cost
//! again but only for the selected records.

/// Record ids of satisfying tuples (sorted, deduplicated).
#[derive(Debug, Clone, Default)]
pub struct OffsetStore {
    record_ids: Vec<u32>,
    /// Flattened rows the eager cache would have held (for stats / `R`).
    flattened_rows: usize,
}

impl OffsetStore {
    /// Builds the store from record ids (in scan order, possibly with
    /// duplicates when several rows of a record satisfied the predicate).
    pub fn build(mut record_ids: Vec<u32>, flattened_rows: usize) -> Self {
        record_ids.sort_unstable();
        record_ids.dedup();
        OffsetStore {
            record_ids,
            flattened_rows,
        }
    }

    pub fn record_ids(&self) -> &[u32] {
        &self.record_ids
    }

    pub fn record_count(&self) -> usize {
        self.record_ids.len()
    }

    /// `R` the eager columnar cache would have held.
    pub fn flattened_rows_estimate(&self) -> usize {
        self.flattened_rows
    }

    pub fn byte_size(&self) -> usize {
        self.record_ids.len() * 4 + std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_and_dedups() {
        let store = OffsetStore::build(vec![5, 1, 5, 3, 1], 12);
        assert_eq!(store.record_ids(), &[1, 3, 5]);
        assert_eq!(store.record_count(), 3);
        assert_eq!(store.flattened_rows_estimate(), 12);
    }

    #[test]
    fn byte_size_is_small() {
        let store = OffsetStore::build((0..1000).collect(), 4000);
        assert!(store.byte_size() < 1000 * 8);
    }

    #[test]
    fn empty() {
        let store = OffsetStore::build(vec![], 0);
        assert_eq!(store.record_count(), 0);
    }
}
