//! Compact bit vector used for null masks and record-start markers.

/// A growable bitmap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new() -> Self {
        Bitmap::default()
    }

    pub fn with_capacity(bits: usize) -> Self {
        Bitmap {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all bits, keeping the allocation (reusable buffers).
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Reads a bit. Panics if out of bounds (debug) / returns false
    /// (release, via masked indexing) — callers stay in bounds.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        debug_assert!(index < self.len);
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Backing words (bit `i` of the map is bit `i % 64` of word `i / 64`).
    /// Bits at positions `>= len()` are unspecified.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// True when every bit in `[0, len)` is set (e.g. a column with no
    /// nulls) — lets scans skip validity checks entirely.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bm = Bitmap::new();
        for bit in iter {
            bm.push(bit);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut bm = Bitmap::new();
        for i in 0..200 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 200);
        for i in 0..200 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn count_ones() {
        let bm: Bitmap = (0..130).map(|i| i % 2 == 0).collect();
        assert_eq!(bm.count_ones(), 65);
    }

    #[test]
    fn byte_size_grows_by_words() {
        let mut bm = Bitmap::new();
        assert_eq!(bm.byte_size(), 0);
        bm.push(true);
        assert_eq!(bm.byte_size(), 8);
        for _ in 0..64 {
            bm.push(false);
        }
        assert_eq!(bm.byte_size(), 16);
    }
}
