//! Relational columnar cache layout: flattened rows in typed columns.
//!
//! Nested records are flattened (lists exploded, parent fields duplicated
//! per element — §4 of the paper) and stored column-wise. A record-start
//! bitmap lets record-level queries skip duplicate rows, and per-record
//! [`crate::shape`] metadata keeps the flattening reversible so the layout
//! selector can switch a cached item back to the Dremel layout.
//!
//! Scan cost shape: near-zero compute (`C ≈ 0` — the property the paper's
//! Eq. 4 relies on), data-access cost proportional to the flattened row
//! count `R` regardless of how many rows the query semantically needs.

use crate::batch::{ColumnBatch, SelectionVector, BATCH_ROWS};
use crate::column::Column;
use crate::shape::{self, ShapeCursor};
use crate::ScanCost;
use recache_types::{flatten_record_masks, Schema, Value};
use std::time::Instant;

/// Flattened, column-oriented store of cached records.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    schema: Schema,
    columns: Vec<Column>,
    /// Per row: bit `d` set ⇔ list dimension `d` is at a non-zero element
    /// index. Mask 0 marks the first (record-level representative) row of
    /// a record; filtering by "unaccessed dims == 0" recovers
    /// projected-flattening semantics on scans.
    masks: Vec<u64>,
    /// First flattened row of each record, plus a final total-rows entry.
    record_rows: Vec<u32>,
    /// Concatenated per-record shapes with offsets (`record_count + 1`).
    shape_lens: Vec<u32>,
    shape_offsets: Vec<u32>,
    /// Source-file record id of each cached record (`None` ⇒ identity,
    /// e.g. stores built directly from full files or in tests). Scans
    /// emit these ids so downstream offset caches never see store-local
    /// indices.
    source_ids: Option<Vec<u32>>,
}

impl ColumnStore {
    /// Builds the store by flattening `records`. Low-cardinality string
    /// leaves are dictionary-encoded at the default threshold
    /// ([`crate::DICT_MAX_RATIO`]); use [`ColumnStore::build_with_dict`]
    /// to tune or disable that.
    pub fn build<'a>(schema: &Schema, records: impl IntoIterator<Item = &'a Value>) -> Self {
        Self::build_with_dict(schema, records, Some(crate::column::DICT_MAX_RATIO))
    }

    /// [`ColumnStore::build`] with an explicit dictionary-encoding knob:
    /// `dict_max_ratio` is the largest `distinct / rows` ratio a string
    /// leaf may have and still be encoded (`None` disables encoding).
    pub fn build_with_dict<'a>(
        schema: &Schema,
        records: impl IntoIterator<Item = &'a Value>,
        dict_max_ratio: Option<f64>,
    ) -> Self {
        let leaves = schema.leaves();
        let mut columns: Vec<Column> = leaves.iter().map(|l| Column::new(l.scalar_type)).collect();
        let mut masks = Vec::new();
        let mut record_rows = vec![0u32];
        let mut shape_lens = Vec::new();
        let mut shape_offsets = vec![0u32];
        let mut total_rows = 0u32;
        for record in records {
            shape::capture(schema.fields(), record, &mut shape_lens);
            shape_offsets.push(shape_lens.len() as u32);
            let rows = flatten_record_masks(schema, record);
            for (row, mask) in &rows {
                masks.push(*mask);
                for (col, value) in columns.iter_mut().zip(row) {
                    col.push(value);
                }
            }
            total_rows += rows.len() as u32;
            record_rows.push(total_rows);
        }
        if let Some(ratio) = dict_max_ratio {
            for col in &mut columns {
                col.maybe_dict_encode(ratio, crate::column::DICT_MIN_ROWS);
            }
        }
        ColumnStore {
            schema: schema.clone(),
            columns,
            masks,
            record_rows,
            shape_lens,
            shape_offsets,
            source_ids: None,
        }
    }

    /// True when leaf `leaf` ended up dictionary-encoded.
    pub fn leaf_is_dict(&self, leaf: usize) -> bool {
        self.columns[leaf].is_dict()
    }

    /// Records the source-file record id of each cached record (same
    /// order as `build` consumed them). Scans then report these ids
    /// instead of store-local indices.
    pub fn set_source_record_ids(&mut self, ids: Vec<u32>) {
        debug_assert_eq!(ids.len(), self.record_count());
        self.source_ids = Some(ids);
    }

    /// Source-file record ids, when known.
    pub fn source_record_ids(&self) -> Option<&[u32]> {
        self.source_ids.as_deref()
    }

    #[inline]
    fn source_id(&self, rec: usize) -> u32 {
        match &self.source_ids {
            Some(ids) => ids[rec],
            None => rec as u32,
        }
    }

    /// Bitmask of list dimensions with no projected leaf (shared skip
    /// rule — see [`crate::batch::unaccessed_list_dims`]).
    fn unaccessed_dims(&self, projection: &[usize]) -> u64 {
        crate::batch::unaccessed_list_dims(&self.schema, projection)
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Flattened row count `R`.
    pub fn row_count(&self) -> usize {
        self.masks.len()
    }

    pub fn record_count(&self) -> usize {
        self.record_rows.len() - 1
    }

    /// Heap footprint: columns + masks + shape/row metadata.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum::<usize>()
            + self.masks.len() * 8
            + self.record_rows.len() * 4
            + self.shape_lens.len() * 4
            + self.shape_offsets.len() * 4
    }

    /// Scans the store, emitting the source record id and projected row.
    ///
    /// `record_level` emits one row per record (mask 0); element-level
    /// scans emit one row per combination of the *projected* list
    /// dimensions, skipping duplicates introduced by unprojected lists.
    /// Either way the mask walk visits every row slot, which is why the
    /// paper models the columnar scan cost as `D · R / ri`.
    pub fn scan(
        &self,
        projection: &[usize],
        record_level: bool,
        emit: &mut dyn FnMut(usize, &[Value]),
    ) -> ScanCost {
        let mut cost = ScanCost::default();
        let total = self.row_count();
        let skip_dims = if record_level {
            u64::MAX
        } else {
            self.unaccessed_dims(projection)
        };
        let mut buf: Vec<Value> = vec![Value::Null; projection.len()];
        let mut indices: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
        let mut rec = 0usize;
        let mut start = 0usize;
        while start < total {
            let end = (start + BATCH_ROWS).min(total);
            // Phase C: select row slots (mask navigation).
            let t0 = Instant::now();
            indices.clear();
            for i in start..end {
                if self.masks[i] & skip_dims == 0 {
                    indices.push(i as u32);
                }
            }
            let compute = t0.elapsed();
            // Phase D: gather values.
            let t1 = Instant::now();
            for &i in &indices {
                while self.record_rows[rec + 1] <= i {
                    rec += 1;
                }
                for (slot, &leaf) in buf.iter_mut().zip(projection) {
                    *slot = self.columns[leaf].get(i as usize);
                }
                emit(self.source_id(rec) as usize, &buf);
            }
            let data = t1.elapsed();
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: compute.as_nanos() as u64,
                rows: indices.len(),
                rows_visited: end - start,
            });
            start = end;
        }
        cost
    }

    /// Number of fixed [`BATCH_ROWS`] windows a batched scan emits — the
    /// chunk grid the parallel executor partitions into ranges. The
    /// arguments are unused here (flattened stores chunk by row slot
    /// regardless of projection) but keep the signature uniform across
    /// the three store types.
    pub fn batch_chunks(&self, _projection: &[usize], _record_level: bool) -> usize {
        self.row_count().div_ceil(BATCH_ROWS)
    }

    /// Vectorized scan: yields [`ColumnBatch`]es of borrowed typed column
    /// views over up to [`BATCH_ROWS`] contiguous flattened rows, with the
    /// mask-navigation selection pre-seeded. Zero values are copied — the
    /// batch columns alias the store's own buffers.
    ///
    /// `want_record_ids` materializes per-row source record ids (needed
    /// only when the consumer collects satisfying ids); when `false`,
    /// `ColumnBatch::record_ids` is empty and the mask walk stays a pure
    /// bitmask loop, keeping the paper's `C ≈ 0` columnar property on the
    /// aggregate hot path.
    ///
    /// Cost attribution matches [`ColumnStore::scan`]: the mask walk and
    /// any record-id resolution are compute `C`; view construction is
    /// data access `D` (near zero here — the split becomes almost pure
    /// `D` once the engine adds its gather time).
    pub fn scan_batches(
        &self,
        projection: &[usize],
        record_level: bool,
        want_record_ids: bool,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> ScanCost {
        let chunks = self.batch_chunks(projection, record_level);
        self.scan_batches_range(
            projection,
            record_level,
            want_record_ids,
            0,
            chunks,
            on_batch,
        )
    }

    /// [`ColumnStore::scan_batches`] restricted to batch chunks
    /// `[chunk_lo, chunk_hi)` of the [`ColumnStore::batch_chunks`] grid.
    /// Chunks are share-nothing (each covers its own row window), so
    /// disjoint ranges may be scanned concurrently from different
    /// threads; a full-range call is bit-identical to `scan_batches`.
    pub fn scan_batches_range(
        &self,
        projection: &[usize],
        record_level: bool,
        want_record_ids: bool,
        chunk_lo: usize,
        chunk_hi: usize,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> ScanCost {
        let mut cost = ScanCost::default();
        let total = self.row_count().min(chunk_hi.saturating_mul(BATCH_ROWS));
        let skip_dims = if record_level {
            u64::MAX
        } else {
            self.unaccessed_dims(projection)
        };
        let all_valid: Vec<bool> = projection
            .iter()
            .map(|&leaf| self.columns[leaf].valid.all_set())
            .collect();
        let mut selection = SelectionVector::new();
        let mut record_ids: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
        let mut start = chunk_lo.saturating_mul(BATCH_ROWS);
        // Record containing the first row of the range.
        let mut rec = self
            .record_rows
            .partition_point(|&r| (r as usize) <= start)
            .saturating_sub(1);
        while start < total {
            let end = (start + BATCH_ROWS).min(total);
            // Phase C: mask navigation seeds the selection; record-id
            // resolution (when requested) rides the same walk.
            let t0 = Instant::now();
            selection.clear();
            if want_record_ids {
                record_ids.clear();
                for i in start..end {
                    while self.record_rows[rec + 1] as usize <= i {
                        rec += 1;
                    }
                    record_ids.push(self.source_id(rec));
                    if self.masks[i] & skip_dims == 0 {
                        selection.push((i - start) as u32);
                    }
                }
            } else {
                for i in start..end {
                    if self.masks[i] & skip_dims == 0 {
                        selection.push((i - start) as u32);
                    }
                }
            }
            let compute = t0.elapsed();
            // Phase D: construct the borrowed column views.
            let t1 = Instant::now();
            let batch = ColumnBatch {
                len: end - start,
                columns: projection
                    .iter()
                    .zip(&all_valid)
                    .map(|(&leaf, &av)| self.columns[leaf].batch_view(start, end, av))
                    .collect(),
                record_ids: &record_ids,
            };
            let data = t1.elapsed();
            let selected_before = selection.len();
            on_batch(&batch, &mut selection);
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: compute.as_nanos() as u64,
                rows: selected_before,
                rows_visited: end - start,
            });
            start = end;
        }
        cost
    }

    /// Reads one value (for tests and conversions).
    pub fn value(&self, row: usize, leaf: usize) -> Value {
        self.columns[leaf].get(row)
    }

    /// Rebuilds the original nested records (exact up to empty-list/null
    /// equivalences) using the stored shapes.
    pub fn to_records(&self) -> Vec<Value> {
        let n_leaves = self.columns.len();
        let mut out = Vec::with_capacity(self.record_count());
        for rec in 0..self.record_count() {
            let row_lo = self.record_rows[rec] as usize;
            let row_hi = self.record_rows[rec + 1] as usize;
            let rows: Vec<Vec<Value>> = (row_lo..row_hi)
                .map(|row| {
                    (0..n_leaves)
                        .map(|leaf| self.columns[leaf].get(row))
                        .collect()
                })
                .collect();
            let shape_lo = self.shape_offsets[rec] as usize;
            let shape_hi = self.shape_offsets[rec + 1] as usize;
            let mut cursor = ShapeCursor::new(&self.shape_lens[shape_lo..shape_hi]);
            out.push(shape::rebuild(self.schema.fields(), &rows, &mut cursor));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("o", DataType::Int),
            Field::required("price", DataType::Float),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![Field::required(
                    "q",
                    DataType::Int,
                )]))),
            ),
        ])
    }

    fn records() -> Vec<Value> {
        vec![
            Value::Struct(vec![
                Value::Int(1),
                Value::Float(10.0),
                Value::List(vec![
                    Value::Struct(vec![Value::Int(100)]),
                    Value::Struct(vec![Value::Int(101)]),
                ]),
            ]),
            Value::Struct(vec![
                Value::Int(2),
                Value::Float(20.0),
                Value::List(vec![Value::Struct(vec![Value::Int(200)])]),
            ]),
        ]
    }

    #[test]
    fn build_flattens_with_duplication() {
        let rs = records();
        let store = ColumnStore::build(&schema(), rs.iter());
        assert_eq!(store.row_count(), 3); // 2 + 1 elements
        assert_eq!(store.record_count(), 2);
        assert_eq!(store.value(0, 0), Value::Int(1));
        assert_eq!(store.value(1, 0), Value::Int(1)); // duplicated parent
        assert_eq!(store.value(1, 2), Value::Int(101));
        assert_eq!(store.value(2, 0), Value::Int(2));
    }

    #[test]
    fn element_level_scan_emits_all_rows() {
        let rs = records();
        let store = ColumnStore::build(&schema(), rs.iter());
        let mut rows = Vec::new();
        let cost = store.scan(&[0, 2], false, &mut |_, row| rows.push(row.to_vec()));
        assert_eq!(rows.len(), 3);
        assert_eq!(cost.rows, 3);
        assert_eq!(cost.rows_visited, 3);
        assert_eq!(rows[1], vec![Value::Int(1), Value::Int(101)]);
    }

    #[test]
    fn record_level_scan_skips_duplicates_but_visits_all_slots() {
        let rs = records();
        let store = ColumnStore::build(&schema(), rs.iter());
        let mut rows = Vec::new();
        let cost = store.scan(&[0, 1], true, &mut |_, row| rows.push(row.to_vec()));
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Float(10.0)],
                vec![Value::Int(2), Value::Float(20.0)],
            ]
        );
        assert_eq!(cost.rows, 2);
        assert_eq!(cost.rows_visited, 3);
    }

    #[test]
    fn scan_reports_source_record_ids() {
        let rs = records();
        let mut store = ColumnStore::build(&schema(), rs.iter());
        // Without source ids: store-local record indices.
        let mut ids = Vec::new();
        store.scan(&[0, 2], false, &mut |id, _| ids.push(id));
        assert_eq!(ids, vec![0, 0, 1]);
        // With source ids (the record ids materialization cached).
        store.set_source_record_ids(vec![70, 92]);
        let mut ids = Vec::new();
        store.scan(&[0, 2], false, &mut |id, _| ids.push(id));
        assert_eq!(ids, vec![70, 70, 92]);
        let mut ids = Vec::new();
        store.scan(&[0], true, &mut |id, _| ids.push(id));
        assert_eq!(ids, vec![70, 92]);
    }

    #[test]
    fn scan_batches_matches_row_scan() {
        let rs = records();
        let mut store = ColumnStore::build(&schema(), rs.iter());
        store.set_source_record_ids(vec![70, 92]);
        for (projection, record_level) in [
            (vec![0usize, 2], false),
            (vec![0, 1], true),
            (vec![2, 0], false),
        ] {
            let mut expected = Vec::new();
            store.scan(&projection, record_level, &mut |id, row| {
                expected.push((id as u32, row.to_vec()));
            });
            let mut got = Vec::new();
            let cost = store.scan_batches(&projection, record_level, true, &mut |batch, sel| {
                for &i in sel.as_slice() {
                    let i = i as usize;
                    let row: Vec<Value> = batch.columns.iter().map(|c| c.value(i)).collect();
                    got.push((batch.record_ids[i], row));
                }
            });
            assert_eq!(
                got, expected,
                "projection {projection:?} record_level {record_level}"
            );
            assert_eq!(cost.rows, expected.len());
            assert_eq!(cost.rows_visited, store.row_count());
        }
    }

    #[test]
    fn scan_batches_exposes_validity() {
        let schema = schema();
        let record = Value::Struct(vec![Value::Int(5), Value::Null, Value::Null]);
        let store = ColumnStore::build(&schema, std::iter::once(&record));
        store.scan_batches(&[0, 1], true, false, &mut |batch, sel| {
            assert_eq!(batch.len, 1);
            assert_eq!(sel.len(), 1);
            assert!(batch.columns[0].is_valid(0));
            assert!(
                batch.columns[0].validity.is_none(),
                "no-null column skips validity"
            );
            assert!(!batch.columns[1].is_valid(0));
            assert_eq!(batch.columns[1].value(0), Value::Null);
        });
    }

    #[test]
    fn scan_batches_skips_record_ids_unless_requested() {
        let rs = records();
        let store = ColumnStore::build(&schema(), rs.iter());
        store.scan_batches(&[0, 1], true, false, &mut |batch, _| {
            assert!(
                batch.record_ids.is_empty(),
                "record ids must not be materialized when not requested"
            );
        });
        store.scan_batches(&[0, 1], true, true, &mut |batch, _| {
            assert_eq!(batch.record_ids.len(), batch.len);
        });
    }

    #[test]
    fn range_scan_concatenation_matches_full_scan() {
        // Enough records to span several batches (3 rows per record).
        let schema = schema();
        let records: Vec<Value> = (0..5000)
            .map(|i| {
                Value::Struct(vec![
                    Value::Int(i),
                    Value::Float(i as f64),
                    Value::List(
                        (0..2)
                            .map(|j| Value::Struct(vec![Value::Int(i * 10 + j)]))
                            .collect(),
                    ),
                ])
            })
            .collect();
        let mut store = ColumnStore::build(&schema, records.iter());
        store.set_source_record_ids((0..5000u32).map(|i| i * 2).collect());
        let chunks = store.batch_chunks(&[0, 2], false);
        assert!(chunks > 2, "need a multi-chunk store, got {chunks}");
        for record_level in [false, true] {
            let projection = if record_level { vec![0, 1] } else { vec![0, 2] };
            let mut expected = Vec::new();
            store.scan_batches(&projection, record_level, true, &mut |batch, sel| {
                for &i in sel.as_slice() {
                    let i = i as usize;
                    let row: Vec<Value> = batch.columns.iter().map(|c| c.value(i)).collect();
                    expected.push((batch.record_ids[i], row));
                }
            });
            // Split the chunk grid at several boundaries; concatenation
            // of disjoint ranges must reproduce the full scan exactly.
            let mut got = Vec::new();
            let mut total = ScanCost::default();
            for (lo, hi) in [(0, 1), (1, chunks / 2), (chunks / 2, chunks)] {
                let cost = store.scan_batches_range(
                    &projection,
                    record_level,
                    true,
                    lo,
                    hi,
                    &mut |batch, sel| {
                        for &i in sel.as_slice() {
                            let i = i as usize;
                            let row: Vec<Value> =
                                batch.columns.iter().map(|c| c.value(i)).collect();
                            got.push((batch.record_ids[i], row));
                        }
                    },
                );
                total.add(&cost);
            }
            assert_eq!(got, expected, "record_level {record_level}");
            assert_eq!(total.rows, expected.len());
            assert_eq!(total.rows_visited, store.row_count());
        }
    }

    #[test]
    fn to_records_round_trips_flattened_view() {
        let rs = records();
        let store = ColumnStore::build(&schema(), rs.iter());
        let rebuilt = store.to_records();
        assert_eq!(rebuilt, rs);
    }

    #[test]
    fn empty_store() {
        let store = ColumnStore::build(&schema(), std::iter::empty());
        assert_eq!(store.row_count(), 0);
        assert_eq!(store.record_count(), 0);
        let mut rows = 0;
        store.scan(&[0], false, &mut |_, _| rows += 1);
        assert_eq!(rows, 0);
        let mut batches = 0;
        store.scan_batches(&[0], false, false, &mut |_, _| batches += 1);
        assert_eq!(batches, 0);
        assert!(store.to_records().is_empty());
    }

    #[test]
    fn byte_size_reflects_duplication() {
        let many_items = Value::Struct(vec![
            Value::Int(1),
            Value::Float(1.0),
            Value::List(
                (0..50)
                    .map(|i| Value::Struct(vec![Value::Int(i)]))
                    .collect(),
            ),
        ]);
        let few_items = Value::Struct(vec![
            Value::Int(1),
            Value::Float(1.0),
            Value::List(vec![Value::Struct(vec![Value::Int(0)])]),
        ]);
        let schema = schema();
        let big = ColumnStore::build(&schema, std::iter::once(&many_items));
        let small = ColumnStore::build(&schema, std::iter::once(&few_items));
        assert!(big.byte_size() > 10 * small.byte_size());
    }

    #[test]
    fn nulls_survive_round_trip() {
        let record = Value::Struct(vec![Value::Int(5), Value::Null, Value::Null]);
        let schema = schema();
        let store = ColumnStore::build(&schema, std::iter::once(&record));
        assert_eq!(store.row_count(), 1);
        assert_eq!(store.value(0, 1), Value::Null);
        let rebuilt = store.to_records();
        assert_eq!(
            recache_types::flatten_record(&schema, &rebuilt[0]),
            recache_types::flatten_record(&schema, &record)
        );
    }
}
