//! Relational columnar cache layout: flattened rows in typed columns.
//!
//! Nested records are flattened (lists exploded, parent fields duplicated
//! per element — §4 of the paper) and stored column-wise. A record-start
//! bitmap lets record-level queries skip duplicate rows, and per-record
//! [`crate::shape`] metadata keeps the flattening reversible so the layout
//! selector can switch a cached item back to the Dremel layout.
//!
//! Scan cost shape: near-zero compute (`C ≈ 0` — the property the paper's
//! Eq. 4 relies on), data-access cost proportional to the flattened row
//! count `R` regardless of how many rows the query semantically needs.

use crate::column::Column;
use crate::shape::{self, ShapeCursor};
use crate::ScanCost;
use recache_types::{flatten_record_masks, list_dim_ranges, Schema, Value};
use std::time::Instant;

/// Rows per timed scan batch.
const BATCH_ROWS: usize = 4096;

/// Flattened, column-oriented store of cached records.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    schema: Schema,
    columns: Vec<Column>,
    /// Per row: bit `d` set ⇔ list dimension `d` is at a non-zero element
    /// index. Mask 0 marks the first (record-level representative) row of
    /// a record; filtering by "unaccessed dims == 0" recovers
    /// projected-flattening semantics on scans.
    masks: Vec<u64>,
    /// First flattened row of each record, plus a final total-rows entry.
    record_rows: Vec<u32>,
    /// Concatenated per-record shapes with offsets (`record_count + 1`).
    shape_lens: Vec<u32>,
    shape_offsets: Vec<u32>,
}

impl ColumnStore {
    /// Builds the store by flattening `records`.
    pub fn build<'a>(schema: &Schema, records: impl IntoIterator<Item = &'a Value>) -> Self {
        let leaves = schema.leaves();
        let mut columns: Vec<Column> =
            leaves.iter().map(|l| Column::new(l.scalar_type)).collect();
        let mut masks = Vec::new();
        let mut record_rows = vec![0u32];
        let mut shape_lens = Vec::new();
        let mut shape_offsets = vec![0u32];
        let mut total_rows = 0u32;
        for record in records {
            shape::capture(schema.fields(), record, &mut shape_lens);
            shape_offsets.push(shape_lens.len() as u32);
            let rows = flatten_record_masks(schema, record);
            for (row, mask) in &rows {
                masks.push(*mask);
                for (col, value) in columns.iter_mut().zip(row) {
                    col.push(value);
                }
            }
            total_rows += rows.len() as u32;
            record_rows.push(total_rows);
        }
        ColumnStore { schema: schema.clone(), columns, masks, record_rows, shape_lens, shape_offsets }
    }

    /// Bitmask of list dimensions with no projected leaf: rows sitting at
    /// a non-zero index of such a dimension are duplicates from the
    /// query's point of view and are skipped.
    fn unaccessed_dims(&self, projection: &[usize]) -> u64 {
        let mut mask = 0u64;
        for (d, (lo, hi)) in list_dim_ranges(&self.schema).into_iter().enumerate() {
            if !projection.iter().any(|&leaf| leaf >= lo && leaf < hi) {
                mask |= 1 << d;
            }
        }
        mask
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Flattened row count `R`.
    pub fn row_count(&self) -> usize {
        self.masks.len()
    }

    pub fn record_count(&self) -> usize {
        self.record_rows.len() - 1
    }

    /// Heap footprint: columns + masks + shape/row metadata.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum::<usize>()
            + self.masks.len() * 8
            + self.record_rows.len() * 4
            + self.shape_lens.len() * 4
            + self.shape_offsets.len() * 4
    }

    /// Scans the store, emitting projected rows.
    ///
    /// `record_level` emits one row per record (mask 0); element-level
    /// scans emit one row per combination of the *projected* list
    /// dimensions, skipping duplicates introduced by unprojected lists.
    /// Either way the mask walk visits every row slot, which is why the
    /// paper models the columnar scan cost as `D · R / ri`.
    pub fn scan(
        &self,
        projection: &[usize],
        record_level: bool,
        emit: &mut dyn FnMut(&[Value]),
    ) -> ScanCost {
        let mut cost = ScanCost::default();
        let total = self.row_count();
        let skip_dims =
            if record_level { u64::MAX } else { self.unaccessed_dims(projection) };
        let mut buf: Vec<Value> = vec![Value::Null; projection.len()];
        let mut indices: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
        let mut start = 0usize;
        while start < total {
            let end = (start + BATCH_ROWS).min(total);
            // Phase C: select row slots (mask navigation).
            let t0 = Instant::now();
            indices.clear();
            for i in start..end {
                if self.masks[i] & skip_dims == 0 {
                    indices.push(i as u32);
                }
            }
            let compute = t0.elapsed();
            // Phase D: gather values.
            let t1 = Instant::now();
            for &i in &indices {
                for (slot, &leaf) in buf.iter_mut().zip(projection) {
                    *slot = self.columns[leaf].get(i as usize);
                }
                emit(&buf);
            }
            let data = t1.elapsed();
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: compute.as_nanos() as u64,
                rows: indices.len(),
                rows_visited: end - start,
            });
            start = end;
        }
        cost
    }

    /// Reads one value (for tests and conversions).
    pub fn value(&self, row: usize, leaf: usize) -> Value {
        self.columns[leaf].get(row)
    }

    /// Rebuilds the original nested records (exact up to empty-list/null
    /// equivalences) using the stored shapes.
    pub fn to_records(&self) -> Vec<Value> {
        let n_leaves = self.columns.len();
        let mut out = Vec::with_capacity(self.record_count());
        for rec in 0..self.record_count() {
            let row_lo = self.record_rows[rec] as usize;
            let row_hi = self.record_rows[rec + 1] as usize;
            let rows: Vec<Vec<Value>> = (row_lo..row_hi)
                .map(|row| (0..n_leaves).map(|leaf| self.columns[leaf].get(row)).collect())
                .collect();
            let shape_lo = self.shape_offsets[rec] as usize;
            let shape_hi = self.shape_offsets[rec + 1] as usize;
            let mut cursor = ShapeCursor::new(&self.shape_lens[shape_lo..shape_hi]);
            out.push(shape::rebuild(self.schema.fields(), &rows, &mut cursor));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("o", DataType::Int),
            Field::required("price", DataType::Float),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![Field::required(
                    "q",
                    DataType::Int,
                )]))),
            ),
        ])
    }

    fn records() -> Vec<Value> {
        vec![
            Value::Struct(vec![
                Value::Int(1),
                Value::Float(10.0),
                Value::List(vec![
                    Value::Struct(vec![Value::Int(100)]),
                    Value::Struct(vec![Value::Int(101)]),
                ]),
            ]),
            Value::Struct(vec![
                Value::Int(2),
                Value::Float(20.0),
                Value::List(vec![Value::Struct(vec![Value::Int(200)])]),
            ]),
        ]
    }

    #[test]
    fn build_flattens_with_duplication() {
        let rs = records();
        let store = ColumnStore::build(&schema(), rs.iter());
        assert_eq!(store.row_count(), 3); // 2 + 1 elements
        assert_eq!(store.record_count(), 2);
        assert_eq!(store.value(0, 0), Value::Int(1));
        assert_eq!(store.value(1, 0), Value::Int(1)); // duplicated parent
        assert_eq!(store.value(1, 2), Value::Int(101));
        assert_eq!(store.value(2, 0), Value::Int(2));
    }

    #[test]
    fn element_level_scan_emits_all_rows() {
        let rs = records();
        let store = ColumnStore::build(&schema(), rs.iter());
        let mut rows = Vec::new();
        let cost = store.scan(&[0, 2], false, &mut |row| rows.push(row.to_vec()));
        assert_eq!(rows.len(), 3);
        assert_eq!(cost.rows, 3);
        assert_eq!(cost.rows_visited, 3);
        assert_eq!(rows[1], vec![Value::Int(1), Value::Int(101)]);
    }

    #[test]
    fn record_level_scan_skips_duplicates_but_visits_all_slots() {
        let rs = records();
        let store = ColumnStore::build(&schema(), rs.iter());
        let mut rows = Vec::new();
        let cost = store.scan(&[0, 1], true, &mut |row| rows.push(row.to_vec()));
        assert_eq!(rows, vec![
            vec![Value::Int(1), Value::Float(10.0)],
            vec![Value::Int(2), Value::Float(20.0)],
        ]);
        assert_eq!(cost.rows, 2);
        assert_eq!(cost.rows_visited, 3);
    }

    #[test]
    fn to_records_round_trips_flattened_view() {
        let rs = records();
        let store = ColumnStore::build(&schema(), rs.iter());
        let rebuilt = store.to_records();
        assert_eq!(rebuilt, rs);
    }

    #[test]
    fn empty_store() {
        let store = ColumnStore::build(&schema(), std::iter::empty());
        assert_eq!(store.row_count(), 0);
        assert_eq!(store.record_count(), 0);
        let mut rows = 0;
        store.scan(&[0], false, &mut |_| rows += 1);
        assert_eq!(rows, 0);
        assert!(store.to_records().is_empty());
    }

    #[test]
    fn byte_size_reflects_duplication() {
        let many_items = Value::Struct(vec![
            Value::Int(1),
            Value::Float(1.0),
            Value::List((0..50).map(|i| Value::Struct(vec![Value::Int(i)])).collect()),
        ]);
        let few_items = Value::Struct(vec![
            Value::Int(1),
            Value::Float(1.0),
            Value::List(vec![Value::Struct(vec![Value::Int(0)])]),
        ]);
        let schema = schema();
        let big = ColumnStore::build(&schema, std::iter::once(&many_items));
        let small = ColumnStore::build(&schema, std::iter::once(&few_items));
        assert!(big.byte_size() > 10 * small.byte_size());
    }

    #[test]
    fn nulls_survive_round_trip() {
        let record = Value::Struct(vec![Value::Int(5), Value::Null, Value::Null]);
        let schema = schema();
        let store = ColumnStore::build(&schema, std::iter::once(&record));
        assert_eq!(store.row_count(), 1);
        assert_eq!(store.value(0, 1), Value::Null);
        let rebuilt = store.to_records();
        assert_eq!(
            recache_types::flatten_record(&schema, &rebuilt[0]),
            recache_types::flatten_record(&schema, &record)
        );
    }
}
