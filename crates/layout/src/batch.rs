//! Typed column batches: the unit of vectorized execution.
//!
//! Row-at-a-time scans hand the engine one `&[Value]` per row, paying an
//! enum-dispatch and (for strings) an allocation per value. A
//! [`ColumnBatch`] instead exposes up to [`BATCH_ROWS`] rows as *typed
//! column views* — `&[i64]`, `&[f64]`, `&[bool]`, or string-arena
//! (offsets + bytes) slices — plus a validity bitmap per column and the
//! source record id of every row. Predicate kernels and aggregate kernels
//! then run over primitive slices guided by a [`SelectionVector`], and
//! `Value`s are only materialized at the very edge (query output, join
//! rows).
//!
//! Cost-model attribution (the D/C split of [`crate::ScanCost`]):
//! building the selection (mask navigation, Dremel record assembly) and
//! evaluating predicates is compute `C`; gathering values — whether into
//! scratch columns inside a store or into aggregates in the engine — is
//! data access `D`. See `recache_engine::exec` for how this relates to
//! the row path's attribution.

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnData};
use recache_types::{list_dim_ranges, ScalarType, Schema, Value};

/// Rows per batch. A multiple of 64 so batch-aligned validity views start
/// on a bitmap word boundary; 4096 matches the pre-existing timed-scan
/// granularity, so per-batch `ScanCost` sampling is unchanged.
pub const BATCH_ROWS: usize = 4096;

/// A typed view over one column's values for the rows of a batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchValues<'a> {
    Bool(&'a [bool]),
    Int(&'a [i64]),
    Float(&'a [f64]),
    /// Strings in arena form: `offsets` has `len + 1` entries indexing
    /// into `bytes`; row `i` is `bytes[offsets[i]..offsets[i + 1]]`.
    /// (`bytes` may be the store's whole heap — offsets are absolute.)
    Str {
        offsets: &'a [u32],
        bytes: &'a [u8],
    },
    /// Dictionary-encoded strings: per-row codes into a sorted pool (see
    /// [`crate::ColumnData::Dict`]). `codes` covers this batch's rows;
    /// the pool views span the whole dictionary, since codes index it
    /// absolutely. Predicate kernels resolve a literal to a code range
    /// once per clause and compare `u32`s per row.
    Dict {
        codes: &'a [u32],
        pool_offsets: &'a [u32],
        pool_bytes: &'a [u8],
    },
}

impl BatchValues<'_> {
    pub fn len(&self) -> usize {
        match self {
            BatchValues::Bool(v) => v.len(),
            BatchValues::Int(v) => v.len(),
            BatchValues::Float(v) => v.len(),
            BatchValues::Str { offsets, .. } => offsets.len().saturating_sub(1),
            BatchValues::Dict { codes, .. } => codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn scalar_type(&self) -> ScalarType {
        match self {
            BatchValues::Bool(_) => ScalarType::Bool,
            BatchValues::Int(_) => ScalarType::Int,
            BatchValues::Float(_) => ScalarType::Float,
            BatchValues::Str { .. } | BatchValues::Dict { .. } => ScalarType::Str,
        }
    }

    /// String at row `i` (only meaningful for the `Str`/`Dict` variants).
    #[inline]
    pub fn str_at(&self, i: usize) -> &str {
        match self {
            BatchValues::Str { offsets, bytes } => {
                let lo = offsets[i] as usize;
                let hi = offsets[i + 1] as usize;
                // Stores only append valid UTF-8; fall back to "" rather
                // than panic if a corrupt heap slips through.
                std::str::from_utf8(&bytes[lo..hi]).unwrap_or("")
            }
            BatchValues::Dict {
                codes,
                pool_offsets,
                pool_bytes,
            } => {
                let code = codes[i] as usize;
                let lo = pool_offsets[code] as usize;
                let hi = pool_offsets[code + 1] as usize;
                std::str::from_utf8(&pool_bytes[lo..hi]).unwrap_or("")
            }
            _ => "",
        }
    }

    /// Materializes row `i` as a `Value` (validity handled by the caller).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            BatchValues::Bool(v) => Value::Bool(v[i]),
            BatchValues::Int(v) => Value::Int(v[i]),
            BatchValues::Float(v) => Value::Float(v[i]),
            BatchValues::Str { .. } | BatchValues::Dict { .. } => {
                Value::Str(self.str_at(i).to_owned())
            }
        }
    }
}

/// One projected column of a batch: typed values plus validity.
#[derive(Debug, Clone, Copy)]
pub struct BatchColumn<'a> {
    pub values: BatchValues<'a>,
    /// Validity words: bit `i % 64` of word `i / 64` set ⇔ row `i` is
    /// non-null. `None` means every row is valid (the common no-null
    /// fast path). Bits past the batch length are unspecified.
    pub validity: Option<&'a [u64]>,
}

impl<'a> BatchColumn<'a> {
    /// A fully valid column.
    pub fn valid(values: BatchValues<'a>) -> Self {
        BatchColumn {
            values,
            validity: None,
        }
    }

    #[inline]
    pub fn is_valid(&self, row: usize) -> bool {
        match self.validity {
            None => true,
            Some(words) => (words[row / 64] >> (row % 64)) & 1 == 1,
        }
    }

    /// Materializes row `i`, `Null` for invalid slots — the typed batch
    /// equivalent of [`crate::Column::get`].
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        if self.is_valid(i) {
            self.values.value(i)
        } else {
            Value::Null
        }
    }
}

/// A batch of rows in typed columnar form.
///
/// `columns` holds one [`BatchColumn`] per projection slot, in projection
/// order; every column view has at least `len` addressable rows.
/// `record_ids[i]` is the *source-file* record id of row `i` (see
/// [`crate::ColumnStore::set_source_record_ids`]), which is what the
/// lazy/offsets cache admission path stores.
#[derive(Debug)]
pub struct ColumnBatch<'a> {
    pub len: usize,
    pub columns: Vec<BatchColumn<'a>>,
    pub record_ids: &'a [u32],
}

/// Indices of the batch rows that survive selection, in ascending order.
///
/// Stores seed it (mask navigation drops flattening duplicates), predicate
/// kernels compact it clause by clause — each clause only re-examines the
/// survivors of the previous one, which is the vectorized equivalent of
/// conjunction short-circuiting.
#[derive(Debug, Clone, Default)]
pub struct SelectionVector {
    idx: Vec<u32>,
}

impl SelectionVector {
    pub fn new() -> Self {
        SelectionVector {
            idx: Vec::with_capacity(BATCH_ROWS),
        }
    }

    pub fn len(&self) -> usize {
        self.idx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    pub fn clear(&mut self) {
        self.idx.clear();
    }

    #[inline]
    pub fn push(&mut self, row: u32) {
        self.idx.push(row);
    }

    /// Selects rows `0..n`.
    pub fn fill_identity(&mut self, n: usize) {
        self.idx.clear();
        self.idx.extend(0..n as u32);
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.idx
    }

    /// Keeps only the selected rows for which `keep` holds (stable,
    /// in-place) — the primitive predicate kernels are built on.
    #[inline]
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.idx.retain(|&row| keep(row));
    }
}

impl<'a> IntoIterator for &'a SelectionVector {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;
    fn into_iter(self) -> Self::IntoIter {
        self.idx.iter()
    }
}

/// Bitmask of list dimensions with no projected leaf: flattened rows at a
/// non-zero index of such a dimension are duplicates from the query's
/// point of view and are skipped. Shared by every flattened-row store
/// (columnar, row) so the skip rule cannot drift between layouts.
pub(crate) fn unaccessed_list_dims(schema: &Schema, projection: &[usize]) -> u64 {
    let mut mask = 0u64;
    for (d, (lo, hi)) in list_dim_ranges(schema).into_iter().enumerate() {
        if !projection.iter().any(|&leaf| leaf >= lo && leaf < hi) {
            mask |= 1 << d;
        }
    }
    mask
}

/// Borrowed batch view over entries `[start, end)` of a typed column with
/// a validity bitmap. `start` must be a multiple of 64 so the validity
/// view begins on a word boundary (batch row `r` is then bit `r` of the
/// word slice); pass `all_valid = true` (precomputed once per scan) to
/// skip validity tracking for null-free columns.
pub(crate) fn borrowed_batch_column<'a>(
    data: &'a ColumnData,
    valid: &'a Bitmap,
    start: usize,
    end: usize,
    all_valid: bool,
) -> BatchColumn<'a> {
    debug_assert_eq!(start % 64, 0, "batch start must be word-aligned");
    let validity = if all_valid {
        None
    } else {
        Some(&valid.words()[start / 64..end.div_ceil(64)])
    };
    BatchColumn {
        values: data.slice(start, end),
        validity,
    }
}

/// Reusable per-scan buffers for producers that must *gather* batch
/// columns (row-store tuple decoding, Dremel assembled gathers, raw CSV
/// tokenizing in `recache-data`) instead of borrowing them. One scratch
/// column per projection slot plus the record-id buffer.
#[derive(Debug, Default)]
pub struct BatchScratch {
    pub cols: Vec<ScratchColumn>,
    pub record_ids: Vec<u32>,
}

impl BatchScratch {
    pub fn for_projection(types: impl Iterator<Item = ScalarType>) -> Self {
        BatchScratch {
            cols: types.map(ScratchColumn::new).collect(),
            record_ids: Vec::with_capacity(BATCH_ROWS),
        }
    }

    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.record_ids.clear();
    }

    /// Views the scratch as batch columns.
    pub fn columns(&self) -> Vec<BatchColumn<'_>> {
        self.cols
            .iter()
            .map(ScratchColumn::as_batch_column)
            .collect()
    }
}

/// An owned, reusable typed column buffer: a plain [`Column`] (the same
/// typed-data/validity-bitmap machinery the stores use, so value coercion
/// and bit layout live in one place) plus an any-null flag so fully
/// valid batches skip validity views entirely.
#[derive(Debug)]
pub struct ScratchColumn {
    col: Column,
    any_null: bool,
}

impl ScratchColumn {
    pub fn new(ty: ScalarType) -> Self {
        ScratchColumn {
            col: Column::new(ty),
            any_null: false,
        }
    }

    pub fn clear(&mut self) {
        self.col.clear();
        self.any_null = false;
    }

    /// Appends a value; `Null` (or a type mismatch) appends the zero value
    /// and clears the validity bit.
    #[inline]
    pub fn push(&mut self, value: &Value) {
        self.any_null |= value.is_null();
        self.col.push(value);
    }

    /// Appends a null: zero value slot, validity bit cleared. Typed twin
    /// of `push(&Value::Null)` without the enum dispatch.
    #[inline]
    pub fn push_null(&mut self) {
        self.any_null = true;
        self.col.valid.push(false);
        self.col.data.push(&Value::Null);
    }

    /// Appends a valid integer (the batched CSV tokenizer's hot path —
    /// no `Value` boxing).
    #[inline]
    pub fn push_int(&mut self, v: i64) {
        self.col.valid.push(true);
        match &mut self.col.data {
            ColumnData::Int(out) => out.push(v),
            _ => unreachable!("push_int on a non-int column"),
        }
    }

    /// Appends a valid float.
    #[inline]
    pub fn push_float(&mut self, v: f64) {
        self.col.valid.push(true);
        match &mut self.col.data {
            ColumnData::Float(out) => out.push(v),
            _ => unreachable!("push_float on a non-float column"),
        }
    }

    /// Appends a valid bool.
    #[inline]
    pub fn push_bool(&mut self, v: bool) {
        self.col.valid.push(true);
        match &mut self.col.data {
            ColumnData::Bool(out) => out.push(v),
            _ => unreachable!("push_bool on a non-bool column"),
        }
    }

    /// Copies entry `index` of a store column (typed, no `Value` boxing).
    #[inline]
    pub fn push_from(&mut self, data: &ColumnData, valid: &Bitmap, index: usize) {
        self.any_null |= !valid.get(index);
        self.col.push_entry_from(data, valid, index);
    }

    /// Appends a valid string straight from its encoded bytes into the
    /// scratch arena — no intermediate `String` (see
    /// [`ColumnData::push_str_bytes`]).
    #[inline]
    pub fn push_str_bytes(&mut self, s: &[u8]) {
        self.col.valid.push(true);
        self.col.data.push_str_bytes(s);
    }

    pub fn as_batch_column(&self) -> BatchColumn<'_> {
        let values = self.col.data.slice(0, self.col.len());
        BatchColumn {
            values,
            validity: if self.any_null {
                Some(self.col.valid.words())
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_vector_retain_is_stable() {
        let mut sel = SelectionVector::new();
        sel.fill_identity(10);
        sel.retain(|row| row % 3 != 0);
        assert_eq!(sel.as_slice(), &[1, 2, 4, 5, 7, 8]);
        sel.retain(|row| row > 4);
        assert_eq!(sel.as_slice(), &[5, 7, 8]);
        assert_eq!(sel.len(), 3);
        sel.clear();
        assert!(sel.is_empty());
    }

    #[test]
    fn scratch_column_round_trips_values() {
        let mut col = ScratchColumn::new(ScalarType::Str);
        col.push(&Value::from("alpha"));
        col.push(&Value::Null);
        col.push(&Value::from(""));
        col.push(&Value::from("beta"));
        let view = col.as_batch_column();
        assert_eq!(view.values.len(), 4);
        assert_eq!(view.value(0), Value::from("alpha"));
        assert_eq!(view.value(1), Value::Null);
        assert_eq!(view.value(2), Value::from(""));
        assert_eq!(view.values.str_at(3), "beta");
        assert!(!view.is_valid(1));
        assert!(view.is_valid(3));
    }

    #[test]
    fn scratch_without_nulls_reports_all_valid() {
        let mut col = ScratchColumn::new(ScalarType::Int);
        for i in 0..100 {
            col.push(&Value::Int(i));
        }
        let view = col.as_batch_column();
        assert!(view.validity.is_none());
        assert_eq!(view.value(99), Value::Int(99));
    }

    #[test]
    fn scratch_push_from_copies_typed_entries() {
        use crate::column::Column;
        let mut store_col = Column::new(ScalarType::Float);
        store_col.push(&Value::Float(1.5));
        store_col.push(&Value::Null);
        store_col.push(&Value::Float(-2.5));
        let mut scratch = ScratchColumn::new(ScalarType::Float);
        for i in 0..3 {
            scratch.push_from(&store_col.data, &store_col.valid, i);
        }
        let view = scratch.as_batch_column();
        assert_eq!(view.value(0), Value::Float(1.5));
        assert_eq!(view.value(1), Value::Null);
        assert_eq!(view.value(2), Value::Float(-2.5));
    }

    #[test]
    fn batch_values_views() {
        let ints = [1i64, 2, 3];
        let v = BatchValues::Int(&ints);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.scalar_type(), ScalarType::Int);
        assert_eq!(v.value(2), Value::Int(3));
        let offsets = [0u32, 2, 2, 5];
        let bytes = b"hiabc";
        let s = BatchValues::Str {
            offsets: &offsets,
            bytes,
        };
        assert_eq!(s.len(), 3);
        assert_eq!(s.str_at(0), "hi");
        assert_eq!(s.str_at(1), "");
        assert_eq!(s.value(2), Value::from("abc"));
    }

    #[test]
    fn batch_rows_sized_for_word_alignment() {
        assert_eq!(BATCH_ROWS % 64, 0);
    }

    #[test]
    fn typed_pushes_match_value_pushes() {
        let mut a = ScratchColumn::new(ScalarType::Int);
        a.push_int(7);
        a.push_null();
        a.push_int(-3);
        let view = a.as_batch_column();
        assert_eq!(view.value(0), Value::Int(7));
        assert_eq!(view.value(1), Value::Null);
        assert_eq!(view.value(2), Value::Int(-3));

        let mut f = ScratchColumn::new(ScalarType::Float);
        f.push_float(1.5);
        assert_eq!(f.as_batch_column().value(0), Value::Float(1.5));
        let mut b = ScratchColumn::new(ScalarType::Bool);
        b.push_bool(true);
        b.push_null();
        let view = b.as_batch_column();
        assert_eq!(view.value(0), Value::Bool(true));
        assert_eq!(view.value(1), Value::Null);
    }

    #[test]
    fn dict_batch_views_decode_through_the_pool() {
        // Pool: ["aa", "b", "cc"]; codes pick rows out of it.
        let pool_offsets = [0u32, 2, 3, 5];
        let pool_bytes = b"aabcc";
        let codes = [2u32, 0, 1, 0];
        let v = BatchValues::Dict {
            codes: &codes,
            pool_offsets: &pool_offsets,
            pool_bytes,
        };
        assert_eq!(v.len(), 4);
        assert_eq!(v.scalar_type(), ScalarType::Str);
        assert_eq!(v.str_at(0), "cc");
        assert_eq!(v.str_at(1), "aa");
        assert_eq!(v.value(2), Value::from("b"));
        assert_eq!(v.value(3), Value::from("aa"));
    }
}
