//! Nested columnar cache layout: Dremel/Parquet column striping.
//!
//! Each scalar leaf is stored as its own column with *definition* and
//! *repetition* levels (Melnik et al., Dremel, PVLDB 2010). No value is
//! ever duplicated, so the store is compact and writes are cheap (Fig. 6
//! of the ReCache paper). The price is paid at read time:
//!
//! * queries touching only non-repeated leaves read columns with one
//!   entry per record — the short-column fast path ("4x fewer rows"),
//! * queries touching repeated leaves must *assemble* records from the
//!   level streams — a branchy, stateful walk (the paper's FSM) whose
//!   cost ReCache measures as the computational component `C`.
//!
//! Scans are two-phase: assembly produces *placeholder* rows holding
//! column entry indexes (compute phase), then values are gathered
//! (data-access phase), so the two costs are measured separately as the
//! cost model requires.

use crate::batch::{BatchScratch, ColumnBatch, SelectionVector, BATCH_ROWS};
use crate::bitmap::Bitmap;
use crate::column::ColumnData;
use crate::shape::{self, leaf_count, ShapeCursor};
use crate::ScanCost;
use recache_types::{flatten_record_projected, DataType, Field, Schema, Value};
use std::time::Instant;

/// Records per assembly chunk (amortizes the phase timers).
const CHUNK_RECORDS: usize = 256;

/// One striped leaf column.
#[derive(Debug, Clone)]
pub struct DremelColumn {
    data: ColumnData,
    /// Value present (definition level reached the leaf and the value was
    /// not null).
    valid: Bitmap,
    def: Vec<u16>,
    rep: Vec<u16>,
}

impl DremelColumn {
    fn push(&mut self, value: &Value, def: u16, rep: u16) {
        self.valid.push(!value.is_null());
        self.data.push(value);
        self.def.push(def);
        self.rep.push(rep);
    }

    /// Number of entries (≠ record count for repeated leaves).
    pub fn len(&self) -> usize {
        self.def.len()
    }

    pub fn is_empty(&self) -> bool {
        self.def.is_empty()
    }

    /// Value at an entry (`Null` if invalid).
    #[inline]
    pub fn value(&self, index: usize) -> Value {
        if self.valid.get(index) {
            self.data.get(index)
        } else {
            Value::Null
        }
    }

    fn byte_size(&self) -> usize {
        self.data.byte_size() + self.valid.byte_size() + self.def.len() * 2 + self.rep.len() * 2
    }
}

/// Dremel-style nested columnar store.
#[derive(Debug, Clone)]
pub struct DremelStore {
    schema: Schema,
    columns: Vec<DremelColumn>,
    max_rep: Vec<u16>,
    record_count: usize,
    flattened_rows: usize,
    /// Per leaf: the column entry index at every [`CHUNK_RECORDS`]
    /// record boundary (`chunk_starts[leaf][k]` = cursor of record
    /// `k · CHUNK_RECORDS`), captured during shredding so a range scan
    /// seeks to its start chunk in O(leaves) instead of replaying the
    /// level streams.
    chunk_starts: Vec<Vec<u32>>,
    /// Source-file record ids (`None` ⇒ identity); see
    /// [`crate::ColumnStore::set_source_record_ids`].
    source_ids: Option<Vec<u32>>,
}

impl DremelStore {
    /// Shreds `records` into striped columns. Low-cardinality string
    /// leaves are dictionary-encoded at the default threshold (see
    /// [`crate::ColumnStore::build`]).
    pub fn build<'a>(schema: &Schema, records: impl IntoIterator<Item = &'a Value>) -> Self {
        Self::build_with_dict(schema, records, Some(crate::column::DICT_MAX_RATIO))
    }

    /// [`DremelStore::build`] with an explicit dictionary-encoding knob
    /// (`None` disables encoding).
    pub fn build_with_dict<'a>(
        schema: &Schema,
        records: impl IntoIterator<Item = &'a Value>,
        dict_max_ratio: Option<f64>,
    ) -> Self {
        let leaves = schema.leaves();
        let mut columns: Vec<DremelColumn> = leaves
            .iter()
            .map(|l| DremelColumn {
                data: ColumnData::new(l.scalar_type),
                valid: Bitmap::new(),
                def: Vec::new(),
                rep: Vec::new(),
            })
            .collect();
        let max_rep: Vec<u16> = leaves.iter().map(|l| l.max_rep).collect();
        let mut chunk_starts: Vec<Vec<u32>> = vec![Vec::new(); columns.len()];
        let mut record_count = 0usize;
        let mut flattened_rows = 0usize;
        let mut shape_buf = Vec::new();
        for record in records {
            if record_count.is_multiple_of(CHUNK_RECORDS) {
                for (leaf, col) in columns.iter().enumerate() {
                    chunk_starts[leaf].push(col.len() as u32);
                }
            }
            shred_struct(schema.fields(), record, 0, 0, 0, 0, &mut columns);
            record_count += 1;
            shape_buf.clear();
            shape::capture(schema.fields(), record, &mut shape_buf);
            let mut cursor = ShapeCursor::new(&shape_buf);
            flattened_rows += shape::row_count(schema.fields(), &mut cursor);
        }
        if let Some(ratio) = dict_max_ratio {
            for col in &mut columns {
                col.data.dict_encode(ratio, crate::column::DICT_MIN_ROWS);
            }
        }
        DremelStore {
            schema: schema.clone(),
            columns,
            max_rep,
            record_count,
            flattened_rows,
            chunk_starts,
            source_ids: None,
        }
    }

    /// Records the source-file record id of each cached record.
    pub fn set_source_record_ids(&mut self, ids: Vec<u32>) {
        debug_assert_eq!(ids.len(), self.record_count);
        self.source_ids = Some(ids);
    }

    /// Source-file record ids, when known.
    pub fn source_record_ids(&self) -> Option<&[u32]> {
        self.source_ids.as_deref()
    }

    #[inline]
    fn source_id(&self, rec: usize) -> u32 {
        match &self.source_ids {
            Some(ids) => ids[rec],
            None => rec as u32,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// What the flattened (relational columnar) row count `R` would be.
    pub fn flattened_rows(&self) -> usize {
        self.flattened_rows
    }

    pub fn byte_size(&self) -> usize {
        self.columns
            .iter()
            .map(DremelColumn::byte_size)
            .sum::<usize>()
            + self.max_rep.len() * 2
            + self.chunk_starts.iter().map(|s| s.len() * 4).sum::<usize>()
    }

    /// Column access for tests.
    pub fn column(&self, leaf: usize) -> &DremelColumn {
        &self.columns[leaf]
    }

    /// True when leaf `leaf` ended up dictionary-encoded.
    pub fn leaf_is_dict(&self, leaf: usize) -> bool {
        self.columns[leaf].data.is_dict()
    }

    /// Scans the store, emitting the source record id and projected row
    /// (projection order).
    ///
    /// With `record_level` (no repeated leaf projected) the short columns
    /// are read directly; otherwise records are assembled through the
    /// level streams and flattened.
    pub fn scan(
        &self,
        projection: &[usize],
        record_level: bool,
        emit: &mut dyn FnMut(usize, &[Value]),
    ) -> ScanCost {
        if record_level && projection.iter().all(|&l| self.max_rep[l] == 0) {
            return self.scan_record_level(projection, emit);
        }
        self.scan_assembled(projection, emit)
    }

    /// Short-column fast path: every projected column has exactly one
    /// entry per record.
    fn scan_record_level(
        &self,
        projection: &[usize],
        emit: &mut dyn FnMut(usize, &[Value]),
    ) -> ScanCost {
        let mut cost = ScanCost::default();
        let total = self.record_count;
        let mut buf: Vec<Value> = vec![Value::Null; projection.len()];
        let mut start = 0usize;
        while start < total {
            let end = (start + BATCH_ROWS).min(total);
            let t0 = Instant::now();
            for i in start..end {
                for (slot, &leaf) in buf.iter_mut().zip(projection) {
                    *slot = self.columns[leaf].value(i);
                }
                emit(self.source_id(i) as usize, &buf);
            }
            let data = t0.elapsed();
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: 0,
                rows: end - start,
                rows_visited: end - start,
            });
            start = end;
        }
        cost
    }

    /// Assembles records `[rec, chunk_end)` through the level streams
    /// into flattened *placeholder* index rows (each cell the column
    /// entry index to gather, `Null` where nothing was projected), plus —
    /// when `want_ids` — the source record id of every row. One shared
    /// helper behind both the row-at-a-time and vectorized assembled
    /// scans, so the chunked assembly loop cannot drift between them.
    fn assemble_chunk(
        &self,
        accessed: &[bool],
        cursors: &mut [usize],
        rec: usize,
        chunk_end: usize,
        want_ids: bool,
    ) -> (Vec<Vec<Value>>, Vec<u32>) {
        let mut index_rows: Vec<Vec<Value>> = Vec::new();
        let mut row_recs: Vec<u32> = Vec::new();
        for r in rec..chunk_end {
            let placeholder =
                assemble_struct(self, self.schema.fields(), 0, 0, 0, accessed, cursors);
            index_rows.extend(flatten_record_projected(
                &self.schema,
                &placeholder,
                accessed,
            ));
            if want_ids {
                row_recs.resize(index_rows.len(), self.source_id(r));
            }
        }
        (index_rows, row_recs)
    }

    /// Per-leaf cursor positions at the start of record `start_rec`,
    /// which must sit on a [`CHUNK_RECORDS`] boundary — an O(leaves)
    /// lookup into the `chunk_starts` index captured at build time.
    /// This is what lets an assembled range scan begin mid-store without
    /// replaying the level streams, so parallel tasks do no duplicated
    /// decode work.
    fn cursors_at(&self, start_rec: usize) -> Vec<usize> {
        debug_assert_eq!(
            start_rec % CHUNK_RECORDS,
            0,
            "assembled ranges start on chunk boundaries"
        );
        let chunk = start_rec / CHUNK_RECORDS;
        self.chunk_starts
            .iter()
            .map(|starts| starts.get(chunk).map_or(0, |&c| c as usize))
            .collect()
    }

    /// Level-driven record assembly producing flattened rows.
    fn scan_assembled(
        &self,
        projection: &[usize],
        emit: &mut dyn FnMut(usize, &[Value]),
    ) -> ScanCost {
        let n_leaves = self.columns.len();
        let mut accessed = vec![false; n_leaves];
        for &leaf in projection {
            accessed[leaf] = true;
        }
        let order = projection_order(projection);
        let mut cost = ScanCost::default();
        let mut cursors = vec![0usize; n_leaves];
        let mut buf: Vec<Value> = vec![Value::Null; projection.len()];
        let mut rec = 0usize;
        while rec < self.record_count {
            let chunk_end = (rec + CHUNK_RECORDS).min(self.record_count);
            // Phase C: assemble placeholder records and flatten them into
            // index rows (level decoding, branching, replication).
            let t0 = Instant::now();
            let (index_rows, row_recs) =
                self.assemble_chunk(&accessed, &mut cursors, rec, chunk_end, true);
            let compute = t0.elapsed();
            // Phase D: gather actual values by entry index.
            let t1 = Instant::now();
            for (row, &rid) in index_rows.iter().zip(&row_recs) {
                for (j, &leaf) in projection.iter().enumerate() {
                    buf[j] = match &row[order[j]] {
                        Value::Int(idx) => self.columns[leaf].value(*idx as usize),
                        _ => Value::Null,
                    };
                }
                emit(rid as usize, &buf);
            }
            let data = t1.elapsed();
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: compute.as_nanos() as u64,
                rows: index_rows.len(),
                rows_visited: index_rows.len(),
            });
            rec = chunk_end;
        }
        cost
    }

    /// Whether a scan with this shape reads the short columns directly
    /// (one entry per record) instead of assembling records.
    fn short_column_path(&self, projection: &[usize], record_level: bool) -> bool {
        record_level && projection.iter().all(|&l| self.max_rep[l] == 0)
    }

    /// Number of chunks a batched scan emits: [`BATCH_ROWS`] records per
    /// chunk on the short-column path, `CHUNK_RECORDS` records per
    /// chunk when records must be assembled (the pre-existing timed-scan
    /// granularity in both cases).
    pub fn batch_chunks(&self, projection: &[usize], record_level: bool) -> usize {
        let per_chunk = if self.short_column_path(projection, record_level) {
            BATCH_ROWS
        } else {
            CHUNK_RECORDS
        };
        self.record_count.div_ceil(per_chunk)
    }

    /// Vectorized scan.
    ///
    /// Record-level scans over non-repeated leaves yield *borrowed* short
    /// columns (one entry per record — zero copies, `C = 0`). Otherwise
    /// each chunk of records is assembled through the level streams
    /// (compute `C`, the paper's FSM cost) and the referenced entries are
    /// gathered into reusable typed scratch columns (data `D`) — no
    /// per-value `Value` boxing on either phase.
    /// `want_record_ids` as on [`crate::ColumnStore::scan_batches`].
    pub fn scan_batches(
        &self,
        projection: &[usize],
        record_level: bool,
        want_record_ids: bool,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> ScanCost {
        let chunks = self.batch_chunks(projection, record_level);
        self.scan_batches_range(
            projection,
            record_level,
            want_record_ids,
            0,
            chunks,
            on_batch,
        )
    }

    /// [`DremelStore::scan_batches`] restricted to batch chunks
    /// `[chunk_lo, chunk_hi)` of the [`DremelStore::batch_chunks`] grid.
    /// Chunks cover disjoint record ranges; an assembled-path range
    /// first positions the level-stream cursors at its start record
    /// (the internal `cursors_at`), so disjoint ranges may be scanned
    /// concurrently and a full-range call is bit-identical to
    /// `scan_batches`.
    pub fn scan_batches_range(
        &self,
        projection: &[usize],
        record_level: bool,
        want_record_ids: bool,
        chunk_lo: usize,
        chunk_hi: usize,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> ScanCost {
        if self.short_column_path(projection, record_level) {
            return self.scan_batches_record_level(
                projection,
                want_record_ids,
                chunk_lo,
                chunk_hi,
                on_batch,
            );
        }
        self.scan_batches_assembled(projection, want_record_ids, chunk_lo, chunk_hi, on_batch)
    }

    /// Borrowed short-column batches (the "4x fewer rows" fast path).
    fn scan_batches_record_level(
        &self,
        projection: &[usize],
        want_record_ids: bool,
        chunk_lo: usize,
        chunk_hi: usize,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> ScanCost {
        let mut cost = ScanCost::default();
        let total = self.record_count.min(chunk_hi.saturating_mul(BATCH_ROWS));
        let all_valid: Vec<bool> = projection
            .iter()
            .map(|&leaf| self.columns[leaf].valid.all_set())
            .collect();
        let mut selection = SelectionVector::new();
        let mut record_ids: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
        let mut start = chunk_lo.saturating_mul(BATCH_ROWS);
        while start < total {
            let end = (start + BATCH_ROWS).min(total);
            let t0 = Instant::now();
            record_ids.clear();
            if want_record_ids {
                record_ids.extend((start..end).map(|i| self.source_id(i)));
            }
            let batch = ColumnBatch {
                len: end - start,
                columns: projection
                    .iter()
                    .zip(&all_valid)
                    .map(|(&leaf, &av)| {
                        let col = &self.columns[leaf];
                        crate::batch::borrowed_batch_column(&col.data, &col.valid, start, end, av)
                    })
                    .collect(),
                record_ids: &record_ids,
            };
            selection.fill_identity(end - start);
            let data = t0.elapsed();
            on_batch(&batch, &mut selection);
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: 0,
                rows: end - start,
                rows_visited: end - start,
            });
            start = end;
        }
        cost
    }

    /// Assembled batches: level decoding is compute, typed gathers are
    /// data access.
    fn scan_batches_assembled(
        &self,
        projection: &[usize],
        want_record_ids: bool,
        chunk_lo: usize,
        chunk_hi: usize,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> ScanCost {
        let n_leaves = self.columns.len();
        let mut accessed = vec![false; n_leaves];
        for &leaf in projection {
            accessed[leaf] = true;
        }
        let order = projection_order(projection);
        let leaves = self.schema.leaves();
        let mut scratch =
            BatchScratch::for_projection(projection.iter().map(|&l| leaves[l].scalar_type));
        let mut cost = ScanCost::default();
        let total = self
            .record_count
            .min(chunk_hi.saturating_mul(CHUNK_RECORDS));
        let mut rec = chunk_lo.saturating_mul(CHUNK_RECORDS);
        if rec >= total {
            return cost;
        }
        let mut cursors = self.cursors_at(rec);
        let mut selection = SelectionVector::new();
        while rec < total {
            let chunk_end = (rec + CHUNK_RECORDS).min(total);
            // Phase C: record assembly through the level streams.
            let t0 = Instant::now();
            let (index_rows, row_recs) =
                self.assemble_chunk(&accessed, &mut cursors, rec, chunk_end, want_record_ids);
            let compute = t0.elapsed();
            // Phase D: typed gather of the referenced column entries.
            let t1 = Instant::now();
            scratch.clear();
            scratch.record_ids.extend_from_slice(&row_recs);
            for row in &index_rows {
                for (j, &leaf) in projection.iter().enumerate() {
                    match &row[order[j]] {
                        Value::Int(idx) => {
                            let col = &self.columns[leaf];
                            scratch.cols[j].push_from(&col.data, &col.valid, *idx as usize);
                        }
                        _ => scratch.cols[j].push(&Value::Null),
                    }
                }
            }
            let data = t1.elapsed();
            selection.fill_identity(index_rows.len());
            let batch = ColumnBatch {
                len: index_rows.len(),
                columns: scratch.columns(),
                record_ids: &scratch.record_ids,
            };
            on_batch(&batch, &mut selection);
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: compute.as_nanos() as u64,
                rows: index_rows.len(),
                rows_visited: index_rows.len(),
            });
            rec = chunk_end;
        }
        cost
    }

    /// Reassembles the original nested records (exact up to empty-list /
    /// null equivalences). Used by layout transformation.
    pub fn to_records(&self) -> Vec<Value> {
        let n_leaves = self.columns.len();
        let accessed = vec![true; n_leaves];
        let mut cursors = vec![0usize; n_leaves];
        let mut out = Vec::with_capacity(self.record_count);
        for _ in 0..self.record_count {
            let placeholder =
                assemble_struct(self, self.schema.fields(), 0, 0, 0, &accessed, &mut cursors);
            let mut leaf = 0usize;
            out.push(materialize(
                self,
                &DataType::Struct(self.schema.fields().to_vec()),
                &placeholder,
                &mut leaf,
            ));
        }
        out
    }
}

/// `flatten_record_projected` emits accessed leaves in canonical order;
/// maps canonical positions back to projection order.
fn projection_order(projection: &[usize]) -> Vec<usize> {
    let mut sorted: Vec<usize> = projection.to_vec();
    sorted.sort_unstable();
    projection
        .iter()
        .map(|l| sorted.binary_search(l).expect("projection leaf"))
        .collect()
}

/// Shreds one struct level. `r` is the repetition level for the *first*
/// entry each leaf writes in this scope; `d` the definition level reached
/// so far; `list_depth` the number of list ancestors.
fn shred_struct(
    fields: &[Field],
    value: &Value,
    mut leaf: usize,
    r: u16,
    d: u16,
    list_depth: u16,
    columns: &mut [DremelColumn],
) {
    let children: &[Value] = match value {
        Value::Struct(c) => c,
        _ => &[],
    };
    for (i, field) in fields.iter().enumerate() {
        let child = children.get(i).unwrap_or(&Value::Null);
        shred_field(field, child, leaf, r, d, list_depth, columns);
        leaf += leaf_count(&field.data_type);
    }
}

fn shred_field(
    field: &Field,
    value: &Value,
    leaf: usize,
    r: u16,
    d: u16,
    list_depth: u16,
    columns: &mut [DremelColumn],
) {
    if field.nullable && value.is_null() {
        emit_nulls(&field.data_type, leaf, r, d, columns);
        return;
    }
    let d = d + u16::from(field.nullable);
    shred_type(&field.data_type, value, leaf, r, d, list_depth, columns);
}

fn shred_type(
    ty: &DataType,
    value: &Value,
    leaf: usize,
    r: u16,
    d: u16,
    list_depth: u16,
    columns: &mut [DremelColumn],
) {
    match ty {
        DataType::List(inner) => match value {
            Value::List(items) if !items.is_empty() => {
                let child_depth = list_depth + 1;
                for (i, item) in items.iter().enumerate() {
                    let r_elem = if i == 0 { r } else { child_depth };
                    shred_type(inner, item, leaf, r_elem, d + 1, child_depth, columns);
                }
            }
            // Absent or empty list: one null entry per leaf below, at the
            // pre-list definition level.
            _ => emit_nulls(inner, leaf, r, d, columns),
        },
        DataType::Struct(fields) => shred_struct(fields, value, leaf, r, d, list_depth, columns),
        _ => columns[leaf].push(value, d, r),
    }
}

fn emit_nulls(ty: &DataType, leaf: usize, r: u16, d: u16, columns: &mut [DremelColumn]) {
    match ty {
        DataType::Struct(fields) => {
            let mut leaf = leaf;
            for field in fields {
                emit_nulls(&field.data_type, leaf, r, d, columns);
                leaf += leaf_count(&field.data_type);
            }
        }
        DataType::List(inner) => emit_nulls(inner, leaf, r, d, columns),
        _ => columns[leaf].push(&Value::Null, d, r),
    }
}

/// First projected leaf in `[leaf, leaf + width)`, if any.
fn probe_leaf(accessed: &[bool], leaf: usize, width: usize) -> Option<usize> {
    (leaf..leaf + width).find(|&l| accessed[l])
}

/// Consumes exactly one entry from every projected leaf in the subtree
/// (mirrors `emit_nulls`).
fn consume_nulls(accessed: &[bool], leaf: usize, width: usize, cursors: &mut [usize]) {
    for l in leaf..leaf + width {
        if accessed[l] {
            cursors[l] += 1;
        }
    }
}

/// Assembles one struct level into a placeholder value: scalar leaves
/// become `Value::Int(entry_index)`; unprojected subtrees become `Null`.
fn assemble_struct(
    store: &DremelStore,
    fields: &[Field],
    mut leaf: usize,
    d: u16,
    list_depth: u16,
    accessed: &[bool],
    cursors: &mut [usize],
) -> Value {
    let mut children = Vec::with_capacity(fields.len());
    for field in fields {
        let width = leaf_count(&field.data_type);
        children.push(assemble_field(
            store, field, leaf, d, list_depth, accessed, cursors,
        ));
        leaf += width;
    }
    Value::Struct(children)
}

fn assemble_field(
    store: &DremelStore,
    field: &Field,
    leaf: usize,
    d: u16,
    list_depth: u16,
    accessed: &[bool],
    cursors: &mut [usize],
) -> Value {
    let width = leaf_count(&field.data_type);
    let Some(probe) = probe_leaf(accessed, leaf, width) else {
        return Value::Null;
    };
    let mut d = d;
    if field.nullable {
        let col = &store.columns[probe];
        if col.def[cursors[probe]] < d + 1 {
            consume_nulls(accessed, leaf, width, cursors);
            return Value::Null;
        }
        d += 1;
    }
    assemble_type(
        store,
        &field.data_type,
        leaf,
        d,
        list_depth,
        accessed,
        cursors,
    )
}

fn assemble_type(
    store: &DremelStore,
    ty: &DataType,
    leaf: usize,
    d: u16,
    list_depth: u16,
    accessed: &[bool],
    cursors: &mut [usize],
) -> Value {
    match ty {
        DataType::List(inner) => {
            let width = leaf_count(inner);
            let probe = probe_leaf(accessed, leaf, width).expect("caller checked projection");
            let col = &store.columns[probe];
            if col.def[cursors[probe]] < d + 1 {
                consume_nulls(accessed, leaf, width, cursors);
                return Value::Null;
            }
            let child_depth = list_depth + 1;
            let mut items = Vec::new();
            loop {
                items.push(assemble_type(
                    store,
                    inner,
                    leaf,
                    d + 1,
                    child_depth,
                    accessed,
                    cursors,
                ));
                let col = &store.columns[probe];
                let next = cursors[probe];
                if next >= col.len() || col.rep[next] != child_depth {
                    break;
                }
            }
            Value::List(items)
        }
        DataType::Struct(fields) => {
            assemble_struct(store, fields, leaf, d, list_depth, accessed, cursors)
        }
        _ => {
            let idx = cursors[leaf];
            cursors[leaf] += 1;
            Value::Int(idx as i64)
        }
    }
}

/// Replaces placeholder entry indexes with actual column values.
fn materialize(store: &DremelStore, ty: &DataType, placeholder: &Value, leaf: &mut usize) -> Value {
    match ty {
        DataType::Struct(fields) => {
            let children: &[Value] = match placeholder {
                Value::Struct(c) => c,
                _ => &[],
            };
            let mut out = Vec::with_capacity(fields.len());
            for (i, field) in fields.iter().enumerate() {
                out.push(materialize(
                    store,
                    &field.data_type,
                    children.get(i).unwrap_or(&Value::Null),
                    leaf,
                ));
            }
            Value::Struct(out)
        }
        DataType::List(inner) => {
            let start = *leaf;
            match placeholder {
                Value::List(items) => {
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        let mut l = start;
                        out.push(materialize(store, inner, item, &mut l));
                        *leaf = l;
                    }
                    Value::List(out)
                }
                _ => {
                    *leaf = start + leaf_count(inner);
                    Value::Null
                }
            }
        }
        _ => {
            let l = *leaf;
            *leaf += 1;
            match placeholder {
                Value::Int(idx) => store.columns[l].value(*idx as usize),
                _ => Value::Null,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::{flatten_record, flatten_record_projected};

    fn order_schema() -> Schema {
        Schema::new(vec![
            Field::required("o", DataType::Int),
            Field::required("price", DataType::Float),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![
                    Field::required("q", DataType::Int),
                    Field::new("tag", DataType::Str),
                ]))),
            ),
        ])
    }

    fn sample_records() -> Vec<Value> {
        vec![
            Value::Struct(vec![
                Value::Int(1),
                Value::Float(10.0),
                Value::List(vec![
                    Value::Struct(vec![Value::Int(100), Value::Str("a".into())]),
                    Value::Struct(vec![Value::Int(101), Value::Null]),
                ]),
            ]),
            Value::Struct(vec![Value::Int(2), Value::Float(20.0), Value::Null]),
            Value::Struct(vec![
                Value::Int(3),
                Value::Float(30.0),
                Value::List(vec![Value::Struct(vec![
                    Value::Int(300),
                    Value::Str("c".into()),
                ])]),
            ]),
        ]
    }

    #[test]
    fn shredding_levels_match_dremel_semantics() {
        let schema = order_schema();
        let records = sample_records();
        let store = DremelStore::build(&schema, records.iter());
        // Non-repeated leaf: one entry per record.
        assert_eq!(store.column(0).len(), 3);
        // Repeated leaf q (leaf 2): 2 + 1(null for absent list) + 1 = 4.
        let q = store.column(2);
        assert_eq!(q.len(), 4);
        assert_eq!(q.rep, vec![0, 1, 0, 0]);
        // items nullable(+1) then list(+1): present q has def 2.
        assert_eq!(q.def, vec![2, 2, 0, 2]);
        assert_eq!(q.value(0), Value::Int(100));
        assert_eq!(q.value(2), Value::Null);
    }

    #[test]
    fn record_counts_and_flattened_rows() {
        let schema = order_schema();
        let records = sample_records();
        let store = DremelStore::build(&schema, records.iter());
        assert_eq!(store.record_count(), 3);
        // 2 + 1 + 1 flattened rows.
        assert_eq!(store.flattened_rows(), 4);
    }

    #[test]
    fn to_records_round_trips_flattened_view() {
        let schema = order_schema();
        let records = sample_records();
        let store = DremelStore::build(&schema, records.iter());
        let rebuilt = store.to_records();
        assert_eq!(rebuilt.len(), records.len());
        for (a, b) in records.iter().zip(&rebuilt) {
            assert_eq!(flatten_record(&schema, a), flatten_record(&schema, b));
        }
    }

    #[test]
    fn record_level_scan_reads_short_columns() {
        let schema = order_schema();
        let records = sample_records();
        let store = DremelStore::build(&schema, records.iter());
        let mut rows = Vec::new();
        let cost = store.scan(&[0, 1], true, &mut |_, row| rows.push(row.to_vec()));
        assert_eq!(rows.len(), 3); // one per record, not per element
        assert_eq!(cost.rows, 3);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Float(20.0)]);
    }

    #[test]
    fn element_level_scan_matches_flatten() {
        let schema = order_schema();
        let records = sample_records();
        let store = DremelStore::build(&schema, records.iter());
        let mut rows = Vec::new();
        store.scan(&[0, 2], false, &mut |_, row| rows.push(row.to_vec()));
        let mut expected = Vec::new();
        let accessed = [true, false, true, false];
        for r in &records {
            expected.extend(flatten_record_projected(&schema, r, &accessed));
        }
        assert_eq!(rows, expected);
    }

    #[test]
    fn projection_order_is_respected() {
        let schema = order_schema();
        let records = sample_records();
        let store = DremelStore::build(&schema, records.iter());
        let mut rows = Vec::new();
        // Reversed projection: q before o.
        store.scan(&[2, 0], false, &mut |_, row| rows.push(row.to_vec()));
        assert_eq!(rows[0], vec![Value::Int(100), Value::Int(1)]);
    }

    #[test]
    fn dremel_is_smaller_than_flattened_columnar_on_nested_data() {
        use crate::columnar::ColumnStore;
        let schema = order_schema();
        // Records with large lists: duplication dominates the columnar
        // size; Dremel stores each parent value once.
        let records: Vec<Value> = (0..50)
            .map(|i| {
                Value::Struct(vec![
                    Value::Int(i),
                    Value::Float(i as f64),
                    Value::List(
                        (0..30)
                            .map(|j| Value::Struct(vec![Value::Int(j), Value::Str("tag".into())]))
                            .collect(),
                    ),
                ])
            })
            .collect();
        let dremel = DremelStore::build(&schema, records.iter());
        let columnar = ColumnStore::build(&schema, records.iter());
        assert!(
            dremel.byte_size() < columnar.byte_size(),
            "dremel {} vs columnar {}",
            dremel.byte_size(),
            columnar.byte_size()
        );
    }

    #[test]
    fn scan_cost_attributes_compute_to_assembly() {
        let schema = order_schema();
        let records: Vec<Value> = (0..2000)
            .map(|i| {
                Value::Struct(vec![
                    Value::Int(i),
                    Value::Float(i as f64),
                    Value::List(
                        (0..4)
                            .map(|j| Value::Struct(vec![Value::Int(j), Value::Null]))
                            .collect(),
                    ),
                ])
            })
            .collect();
        let store = DremelStore::build(&schema, records.iter());
        let mut n = 0usize;
        let cost = store.scan(&[0, 2], false, &mut |_, _| n += 1);
        assert_eq!(n, 8000);
        // Element-level scans must show nonzero compute (level decoding).
        assert!(cost.compute_ns > 0);
        assert!(cost.data_ns > 0);
        // Record-level scans over short columns report zero compute.
        let cost = store.scan(&[0, 1], true, &mut |_, _| {});
        assert_eq!(cost.compute_ns, 0);
    }

    #[test]
    fn range_scan_concatenation_matches_full_scan() {
        // Spans several assembly chunks (CHUNK_RECORDS = 256) and, on the
        // short-column path, several BATCH_ROWS windows.
        let schema = order_schema();
        let records: Vec<Value> = (0..10_000)
            .map(|i| {
                let items = if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::List(
                        (0..(i % 4))
                            .map(|j| {
                                Value::Struct(vec![
                                    Value::Int(i * 10 + j),
                                    if j % 2 == 0 {
                                        Value::Str(format!("t{j}"))
                                    } else {
                                        Value::Null
                                    },
                                ])
                            })
                            .collect(),
                    )
                };
                Value::Struct(vec![Value::Int(i), Value::Float(i as f64), items])
            })
            .collect();
        let mut store = DremelStore::build(&schema, records.iter());
        store.set_source_record_ids((0..10_000u32).map(|i| i + 100).collect());
        for (projection, record_level) in [(vec![0usize, 2, 3], false), (vec![0, 1], true)] {
            let chunks = store.batch_chunks(&projection, record_level);
            assert!(chunks > 2, "need a multi-chunk store, got {chunks}");
            let mut expected = Vec::new();
            store.scan_batches(&projection, record_level, true, &mut |batch, sel| {
                for &i in sel.as_slice() {
                    let i = i as usize;
                    let row: Vec<Value> = batch.columns.iter().map(|c| c.value(i)).collect();
                    expected.push((batch.record_ids[i], row));
                }
            });
            let mut got = Vec::new();
            for (lo, hi) in [(0, 1), (1, chunks / 2), (chunks / 2, chunks)] {
                store.scan_batches_range(
                    &projection,
                    record_level,
                    true,
                    lo,
                    hi,
                    &mut |batch, sel| {
                        for &i in sel.as_slice() {
                            let i = i as usize;
                            let row: Vec<Value> =
                                batch.columns.iter().map(|c| c.value(i)).collect();
                            got.push((batch.record_ids[i], row));
                        }
                    },
                );
            }
            assert_eq!(
                got.len(),
                expected.len(),
                "projection {projection:?} record_level {record_level}"
            );
            assert_eq!(got, expected, "projection {projection:?}");
        }
    }

    #[test]
    fn deep_nesting_list_of_list() {
        let schema = Schema::new(vec![Field::new(
            "m",
            DataType::List(Box::new(DataType::List(Box::new(DataType::Int)))),
        )]);
        let records = [
            Value::Struct(vec![Value::List(vec![
                Value::List(vec![Value::Int(1), Value::Int(2)]),
                Value::List(vec![Value::Int(3)]),
            ])]),
            Value::Struct(vec![Value::Null]),
        ];
        let store = DremelStore::build(&schema, records.iter());
        let col = store.column(0);
        assert_eq!(col.rep, vec![0, 2, 1, 0]);
        let rebuilt = store.to_records();
        for (a, b) in records.iter().zip(&rebuilt) {
            assert_eq!(flatten_record(&schema, a), flatten_record(&schema, b));
        }
    }

    #[test]
    fn sibling_lists_assemble_independently() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::List(Box::new(DataType::Int))),
            Field::new("y", DataType::List(Box::new(DataType::Int))),
        ]);
        let records = [Value::Struct(vec![
            Value::List(vec![Value::Int(1), Value::Int(2)]),
            Value::List(vec![Value::Int(10), Value::Int(20), Value::Int(30)]),
        ])];
        let store = DremelStore::build(&schema, records.iter());
        let rebuilt = store.to_records();
        assert_eq!(
            flatten_record(&schema, &rebuilt[0]),
            flatten_record(&schema, &records[0])
        );
        // Element-level scan of both lists = cartesian product (6 rows).
        let mut n = 0;
        store.scan(&[0, 1], false, &mut |_, _| n += 1);
        assert_eq!(n, 6);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use recache_types::flatten_record;

    fn random_records(rng: &mut StdRng, max_records: usize) -> Vec<Value> {
        (0..rng.random_range(1..max_records))
            .map(|_| {
                let items: Vec<Value> = (0..rng.random_range(0..5))
                    .map(|_| {
                        let w = if rng.random::<bool>() {
                            Value::Float(rng.random_range(0.0..10.0))
                        } else {
                            Value::Null
                        };
                        Value::Struct(vec![Value::Int(rng.random::<i64>()), w])
                    })
                    .collect();
                Value::Struct(vec![Value::Int(rng.random::<i64>()), Value::List(items)])
            })
            .collect()
    }

    fn test_schema() -> Schema {
        Schema::new(vec![
            Field::required("o", DataType::Int),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![
                    Field::required("q", DataType::Int),
                    Field::new("w", DataType::Float),
                ]))),
            ),
        ])
    }

    #[test]
    fn shred_assemble_preserves_flattened_view() {
        let schema = test_schema();
        let mut rng = StdRng::seed_from_u64(0xD7E1);
        for case in 0..100 {
            let records = random_records(&mut rng, 30);
            let store = DremelStore::build(&schema, records.iter());
            let rebuilt = store.to_records();
            assert_eq!(records.len(), rebuilt.len(), "case {case}");
            for (a, b) in records.iter().zip(&rebuilt) {
                assert_eq!(
                    flatten_record(&schema, a),
                    flatten_record(&schema, b),
                    "case {case}: flattened view diverged for {a:?}"
                );
            }
        }
    }

    #[test]
    fn scans_agree_with_columnar_store() {
        let schema = test_schema();
        let mut rng = StdRng::seed_from_u64(0xD7E2);
        for case in 0..100 {
            let records = random_records(&mut rng, 25);
            let dremel = DremelStore::build(&schema, records.iter());
            let columnar = crate::columnar::ColumnStore::build(&schema, records.iter());
            // Element-level scans over the same projection must agree.
            let mut a = Vec::new();
            dremel.scan(&[0, 2], false, &mut |_, row| a.push(row.to_vec()));
            let mut b = Vec::new();
            columnar.scan(&[0, 2], false, &mut |_, row| b.push(row.to_vec()));
            assert_eq!(a, b, "case {case}: element-level scans diverged");
            // Record-level scans too.
            let mut a = Vec::new();
            dremel.scan(&[0], true, &mut |_, row| a.push(row.to_vec()));
            let mut b = Vec::new();
            columnar.scan(&[0], true, &mut |_, row| b.push(row.to_vec()));
            assert_eq!(a, b, "case {case}: record-level scans diverged");
        }
    }
}
