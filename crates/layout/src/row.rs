//! Relational row-oriented cache layout: packed byte rows.
//!
//! The H2O-style alternative to the columnar layout (§4.3): scans walk
//! every byte of every tuple regardless of how few fields the query
//! touches, which is exactly the access pattern whose cache-miss count
//! the row/column layout chooser estimates.

use crate::shape;
use crate::ScanCost;
use bytes::{Buf, BufMut, BytesMut};
use recache_types::{flatten_record_masks, list_dim_ranges, Schema, Value};
use std::time::Instant;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;

/// Flattened rows packed back-to-back in a byte buffer.
#[derive(Debug, Clone)]
pub struct RowStore {
    schema: Schema,
    buf: BytesMut,
    /// Byte offset of each row, plus a final total-length entry.
    row_offsets: Vec<u32>,
    /// Per-row list-dimension masks (see [`ColumnStore`]'s field docs).
    masks: Vec<u64>,
    /// First flattened row of each record, plus a final total entry.
    record_rows: Vec<u32>,
    /// Per-record shapes (see [`crate::shape`]), for layout conversion.
    shape_lens: Vec<u32>,
    shape_offsets: Vec<u32>,
    n_leaves: usize,
}

impl RowStore {
    /// Builds the store by flattening and packing `records`.
    pub fn build<'a>(schema: &Schema, records: impl IntoIterator<Item = &'a Value>) -> Self {
        let n_leaves = schema.leaves().len();
        let mut buf = BytesMut::new();
        let mut row_offsets = vec![0u32];
        let mut masks = Vec::new();
        let mut record_rows = vec![0u32];
        let mut shape_lens = Vec::new();
        let mut shape_offsets = vec![0u32];
        let mut total_rows = 0u32;
        for record in records {
            shape::capture(schema.fields(), record, &mut shape_lens);
            shape_offsets.push(shape_lens.len() as u32);
            let rows = flatten_record_masks(schema, record);
            for (row, mask) in &rows {
                masks.push(*mask);
                for value in row {
                    encode_value(&mut buf, value);
                }
                row_offsets.push(buf.len() as u32);
            }
            total_rows += rows.len() as u32;
            record_rows.push(total_rows);
        }
        RowStore {
            schema: schema.clone(),
            buf,
            row_offsets,
            masks,
            record_rows,
            shape_lens,
            shape_offsets,
            n_leaves,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.row_offsets.len() - 1
    }

    pub fn record_count(&self) -> usize {
        self.record_rows.len() - 1
    }

    pub fn byte_size(&self) -> usize {
        self.buf.len()
            + self.row_offsets.len() * 4
            + self.masks.len() * 8
            + self.record_rows.len() * 4
            + self.shape_lens.len() * 4
            + self.shape_offsets.len() * 4
    }

    /// Scans the store, emitting projected rows. Row layouts must walk
    /// through every field of every visited tuple — the projection only
    /// saves the value *materialization*, not the navigation.
    pub fn scan(
        &self,
        projection: &[usize],
        record_level: bool,
        emit: &mut dyn FnMut(&[Value]),
    ) -> ScanCost {
        let mut cost = ScanCost::default();
        let total = self.row_count();
        let skip_dims = if record_level {
            u64::MAX
        } else {
            let mut mask = 0u64;
            for (d, (lo, hi)) in list_dim_ranges(&self.schema).into_iter().enumerate() {
                if !projection.iter().any(|&leaf| leaf >= lo && leaf < hi) {
                    mask |= 1 << d;
                }
            }
            mask
        };
        let mut out: Vec<Value> = vec![Value::Null; projection.len()];
        // slot_of[leaf] = position in the projection, or usize::MAX.
        let mut slot_of = vec![usize::MAX; self.n_leaves];
        for (j, &leaf) in projection.iter().enumerate() {
            slot_of[leaf] = j;
        }
        let mut start = 0usize;
        let mut offsets: Vec<(u32, u32)> = Vec::with_capacity(4096);
        while start < total {
            let end = (start + 4096).min(total);
            // Phase C: select rows (mask walk).
            let t0 = Instant::now();
            offsets.clear();
            for i in start..end {
                if self.masks[i] & skip_dims == 0 {
                    offsets.push((self.row_offsets[i], self.row_offsets[i + 1]));
                }
            }
            let compute = t0.elapsed();
            // Phase D: walk each tuple's bytes, decoding projected fields.
            let t1 = Instant::now();
            for &(lo, hi) in &offsets {
                let mut slice = &self.buf[lo as usize..hi as usize];
                for leaf in 0..self.n_leaves {
                    let slot = slot_of[leaf];
                    if slot != usize::MAX {
                        out[slot] = decode_value(&mut slice);
                    } else {
                        skip_value(&mut slice);
                    }
                }
                emit(&out);
            }
            let data = t1.elapsed();
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: compute.as_nanos() as u64,
                rows: offsets.len(),
                rows_visited: end - start,
            });
            start = end;
        }
        cost
    }

    /// Rebuilds the original nested records via the stored shapes.
    pub fn to_records(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.record_count());
        for rec in 0..self.record_count() {
            let lo = self.record_rows[rec] as usize;
            let hi = self.record_rows[rec + 1] as usize;
            let rows: Vec<Vec<Value>> = (lo..hi).map(|i| self.decode_row(i)).collect();
            let shape_lo = self.shape_offsets[rec] as usize;
            let shape_hi = self.shape_offsets[rec + 1] as usize;
            let mut cursor = shape::ShapeCursor::new(&self.shape_lens[shape_lo..shape_hi]);
            out.push(shape::rebuild(self.schema.fields(), &rows, &mut cursor));
        }
        out
    }

    /// Decodes one full-width row.
    pub fn decode_row(&self, row: usize) -> Vec<Value> {
        let lo = self.row_offsets[row] as usize;
        let hi = self.row_offsets[row + 1] as usize;
        let mut slice = &self.buf[lo..hi];
        (0..self.n_leaves).map(|_| decode_value(&mut slice)).collect()
    }
}

fn encode_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_TRUE),
        Value::Int(v) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*v);
        }
        Value::Float(v) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*v);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::List(_) | Value::Struct(_) => {
            unreachable!("flattened rows contain only scalars")
        }
    }
}

fn decode_value(slice: &mut &[u8]) -> Value {
    match slice.get_u8() {
        TAG_NULL => Value::Null,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(slice.get_i64_le()),
        TAG_FLOAT => Value::Float(slice.get_f64_le()),
        TAG_STR => {
            let len = slice.get_u32_le() as usize;
            let s = String::from_utf8_lossy(&slice[..len]).into_owned();
            slice.advance(len);
            Value::Str(s)
        }
        other => unreachable!("corrupt row tag {other}"),
    }
}

fn skip_value(slice: &mut &[u8]) {
    match slice.get_u8() {
        TAG_NULL | TAG_FALSE | TAG_TRUE => {}
        TAG_INT | TAG_FLOAT => slice.advance(8),
        TAG_STR => {
            let len = slice.get_u32_le() as usize;
            slice.advance(len);
        }
        other => unreachable!("corrupt row tag {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::required("s", DataType::Str),
            Field::new("tags", DataType::List(Box::new(DataType::Float))),
        ])
    }

    fn records() -> Vec<Value> {
        vec![
            Value::Struct(vec![
                Value::Int(1),
                Value::Str("one".into()),
                Value::List(vec![Value::Float(0.5), Value::Float(1.5)]),
            ]),
            Value::Struct(vec![Value::Int(2), Value::Str("two".into()), Value::Null]),
        ]
    }

    #[test]
    fn build_and_decode_rows() {
        let rs = records();
        let store = RowStore::build(&schema(), rs.iter());
        assert_eq!(store.row_count(), 3);
        assert_eq!(store.record_count(), 2);
        assert_eq!(
            store.decode_row(0),
            vec![Value::Int(1), Value::Str("one".into()), Value::Float(0.5)]
        );
        assert_eq!(store.decode_row(2), vec![Value::Int(2), Value::Str("two".into()), Value::Null]);
    }

    #[test]
    fn scan_projects_in_order() {
        let rs = records();
        let store = RowStore::build(&schema(), rs.iter());
        let mut rows = Vec::new();
        store.scan(&[2, 0], false, &mut |row| rows.push(row.to_vec()));
        assert_eq!(rows[0], vec![Value::Float(0.5), Value::Int(1)]);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn record_level_scan() {
        let rs = records();
        let store = RowStore::build(&schema(), rs.iter());
        let mut rows = Vec::new();
        let cost = store.scan(&[0], true, &mut |row| rows.push(row.to_vec()));
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(cost.rows_visited, 3);
    }

    #[test]
    fn scan_agrees_with_columnar() {
        use crate::columnar::ColumnStore;
        let rs = records();
        let row_store = RowStore::build(&schema(), rs.iter());
        let col_store = ColumnStore::build(&schema(), rs.iter());
        let mut a = Vec::new();
        row_store.scan(&[0, 1, 2], false, &mut |r| a.push(r.to_vec()));
        let mut b = Vec::new();
        col_store.scan(&[0, 1, 2], false, &mut |r| b.push(r.to_vec()));
        assert_eq!(a, b);
    }

    #[test]
    fn to_records_round_trips() {
        let rs = records();
        let store = RowStore::build(&schema(), rs.iter());
        let rebuilt = store.to_records();
        for (a, b) in rs.iter().zip(&rebuilt) {
            assert_eq!(
                recache_types::flatten_record(&schema(), a),
                recache_types::flatten_record(&schema(), b)
            );
        }
    }

    #[test]
    fn empty_store() {
        let store = RowStore::build(&schema(), std::iter::empty());
        assert_eq!(store.row_count(), 0);
        let mut n = 0;
        store.scan(&[0], false, &mut |_| n += 1);
        assert_eq!(n, 0);
    }
}
