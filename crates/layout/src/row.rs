//! Relational row-oriented cache layout: packed byte rows.
//!
//! The H2O-style alternative to the columnar layout (§4.3): scans walk
//! every byte of every tuple regardless of how few fields the query
//! touches, which is exactly the access pattern whose cache-miss count
//! the row/column layout chooser estimates.

use crate::batch::{BatchScratch, ColumnBatch, SelectionVector, BATCH_ROWS};
use crate::shape;
use crate::ScanCost;
use recache_types::{flatten_record_masks, Schema, Value};
use std::time::Instant;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;

/// Flattened rows packed back-to-back in a byte buffer.
#[derive(Debug, Clone)]
pub struct RowStore {
    schema: Schema,
    buf: Vec<u8>,
    /// Byte offset of each row, plus a final total-length entry.
    row_offsets: Vec<u32>,
    /// Per-row list-dimension masks (see [`ColumnStore`]'s field docs).
    masks: Vec<u64>,
    /// First flattened row of each record, plus a final total entry.
    record_rows: Vec<u32>,
    /// Per-record shapes (see [`crate::shape`]), for layout conversion.
    shape_lens: Vec<u32>,
    shape_offsets: Vec<u32>,
    n_leaves: usize,
    /// Source-file record ids (`None` ⇒ identity); see
    /// [`crate::ColumnStore::set_source_record_ids`].
    source_ids: Option<Vec<u32>>,
}

impl RowStore {
    /// Builds the store by flattening and packing `records`.
    pub fn build<'a>(schema: &Schema, records: impl IntoIterator<Item = &'a Value>) -> Self {
        let n_leaves = schema.leaves().len();
        let mut buf = Vec::new();
        let mut row_offsets = vec![0u32];
        let mut masks = Vec::new();
        let mut record_rows = vec![0u32];
        let mut shape_lens = Vec::new();
        let mut shape_offsets = vec![0u32];
        let mut total_rows = 0u32;
        for record in records {
            shape::capture(schema.fields(), record, &mut shape_lens);
            shape_offsets.push(shape_lens.len() as u32);
            let rows = flatten_record_masks(schema, record);
            for (row, mask) in &rows {
                masks.push(*mask);
                for value in row {
                    encode_value(&mut buf, value);
                }
                row_offsets.push(buf.len() as u32);
            }
            total_rows += rows.len() as u32;
            record_rows.push(total_rows);
        }
        RowStore {
            schema: schema.clone(),
            buf,
            row_offsets,
            masks,
            record_rows,
            shape_lens,
            shape_offsets,
            n_leaves,
            source_ids: None,
        }
    }

    /// Records the source-file record id of each cached record.
    pub fn set_source_record_ids(&mut self, ids: Vec<u32>) {
        debug_assert_eq!(ids.len(), self.record_count());
        self.source_ids = Some(ids);
    }

    /// Source-file record ids, when known.
    pub fn source_record_ids(&self) -> Option<&[u32]> {
        self.source_ids.as_deref()
    }

    #[inline]
    fn source_id(&self, rec: usize) -> u32 {
        match &self.source_ids {
            Some(ids) => ids[rec],
            None => rec as u32,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.row_offsets.len() - 1
    }

    pub fn record_count(&self) -> usize {
        self.record_rows.len() - 1
    }

    pub fn byte_size(&self) -> usize {
        self.buf.len()
            + self.row_offsets.len() * 4
            + self.masks.len() * 8
            + self.record_rows.len() * 4
            + self.shape_lens.len() * 4
            + self.shape_offsets.len() * 4
    }

    /// Bitmask of list dimensions with no projected leaf (shared skip
    /// rule — see [`crate::batch::unaccessed_list_dims`]).
    fn unaccessed_dims(&self, projection: &[usize]) -> u64 {
        crate::batch::unaccessed_list_dims(&self.schema, projection)
    }

    /// Scans the store, emitting the source record id and projected row.
    /// Row layouts must walk through every field of every visited tuple —
    /// the projection only saves the value *materialization*, not the
    /// navigation.
    pub fn scan(
        &self,
        projection: &[usize],
        record_level: bool,
        emit: &mut dyn FnMut(usize, &[Value]),
    ) -> ScanCost {
        let mut cost = ScanCost::default();
        let total = self.row_count();
        let skip_dims = if record_level {
            u64::MAX
        } else {
            self.unaccessed_dims(projection)
        };
        let mut out: Vec<Value> = vec![Value::Null; projection.len()];
        // slot_of[leaf] = position in the projection, or usize::MAX.
        let mut slot_of = vec![usize::MAX; self.n_leaves];
        for (j, &leaf) in projection.iter().enumerate() {
            slot_of[leaf] = j;
        }
        let mut rec = 0usize;
        let mut start = 0usize;
        let mut selected: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
        while start < total {
            let end = (start + BATCH_ROWS).min(total);
            // Phase C: select rows (mask walk).
            let t0 = Instant::now();
            selected.clear();
            for i in start..end {
                if self.masks[i] & skip_dims == 0 {
                    selected.push(i as u32);
                }
            }
            let compute = t0.elapsed();
            // Phase D: walk each tuple's bytes, decoding projected fields.
            let t1 = Instant::now();
            for &i in &selected {
                while self.record_rows[rec + 1] <= i {
                    rec += 1;
                }
                let lo = self.row_offsets[i as usize] as usize;
                let hi = self.row_offsets[i as usize + 1] as usize;
                let mut slice = &self.buf[lo..hi];
                for &slot in &slot_of {
                    if slot != usize::MAX {
                        out[slot] = decode_value(&mut slice);
                    } else {
                        skip_value(&mut slice);
                    }
                }
                emit(self.source_id(rec) as usize, &out);
            }
            let data = t1.elapsed();
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: compute.as_nanos() as u64,
                rows: selected.len(),
                rows_visited: end - start,
            });
            start = end;
        }
        cost
    }

    /// Number of fixed [`BATCH_ROWS`] windows a batched scan emits (see
    /// [`crate::ColumnStore::batch_chunks`]).
    pub fn batch_chunks(&self, _projection: &[usize], _record_level: bool) -> usize {
        self.row_count().div_ceil(BATCH_ROWS)
    }

    /// Vectorized scan. Row layouts cannot expose borrowed column views —
    /// tuples are packed — so each batch *gathers* the mask-surviving rows
    /// into reusable typed scratch columns (full-tuple byte walk, data
    /// cost `D`, exactly the access pattern the H2O row/column chooser
    /// models) and yields them with an identity selection.
    /// `want_record_ids` as on [`crate::ColumnStore::scan_batches`].
    pub fn scan_batches(
        &self,
        projection: &[usize],
        record_level: bool,
        want_record_ids: bool,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> ScanCost {
        let chunks = self.batch_chunks(projection, record_level);
        self.scan_batches_range(
            projection,
            record_level,
            want_record_ids,
            0,
            chunks,
            on_batch,
        )
    }

    /// [`RowStore::scan_batches`] restricted to batch chunks
    /// `[chunk_lo, chunk_hi)`; chunks are share-nothing, so disjoint
    /// ranges may run concurrently (see
    /// [`crate::ColumnStore::scan_batches_range`]).
    pub fn scan_batches_range(
        &self,
        projection: &[usize],
        record_level: bool,
        want_record_ids: bool,
        chunk_lo: usize,
        chunk_hi: usize,
        on_batch: &mut dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector),
    ) -> ScanCost {
        let mut cost = ScanCost::default();
        let total = self.row_count().min(chunk_hi.saturating_mul(BATCH_ROWS));
        let skip_dims = if record_level {
            u64::MAX
        } else {
            self.unaccessed_dims(projection)
        };
        let leaves = self.schema.leaves();
        let mut scratch =
            BatchScratch::for_projection(projection.iter().map(|&l| leaves[l].scalar_type));
        let mut slot_of = vec![usize::MAX; self.n_leaves];
        for (j, &leaf) in projection.iter().enumerate() {
            slot_of[leaf] = j;
        }
        let mut selection = SelectionVector::new();
        let mut selected: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
        let mut start = chunk_lo.saturating_mul(BATCH_ROWS);
        let mut rec = self
            .record_rows
            .partition_point(|&r| (r as usize) <= start)
            .saturating_sub(1);
        while start < total {
            let end = (start + BATCH_ROWS).min(total);
            // Phase C: mask walk.
            let t0 = Instant::now();
            selected.clear();
            for i in start..end {
                if self.masks[i] & skip_dims == 0 {
                    selected.push(i as u32);
                }
            }
            let compute = t0.elapsed();
            // Phase D: decode surviving tuples into the scratch columns.
            let t1 = Instant::now();
            scratch.clear();
            for &i in &selected {
                if want_record_ids {
                    while self.record_rows[rec + 1] <= i {
                        rec += 1;
                    }
                    scratch.record_ids.push(self.source_id(rec));
                }
                let lo = self.row_offsets[i as usize] as usize;
                let hi = self.row_offsets[i as usize + 1] as usize;
                let mut slice = &self.buf[lo..hi];
                for &slot in &slot_of {
                    if slot != usize::MAX {
                        decode_value_into(&mut slice, &mut scratch.cols[slot]);
                    } else {
                        skip_value(&mut slice);
                    }
                }
            }
            let data = t1.elapsed();
            selection.fill_identity(selected.len());
            let batch = ColumnBatch {
                len: selected.len(),
                columns: scratch.columns(),
                record_ids: &scratch.record_ids,
            };
            on_batch(&batch, &mut selection);
            cost.add(&ScanCost {
                data_ns: data.as_nanos() as u64,
                compute_ns: compute.as_nanos() as u64,
                rows: selected.len(),
                rows_visited: end - start,
            });
            start = end;
        }
        cost
    }

    /// Rebuilds the original nested records via the stored shapes.
    pub fn to_records(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.record_count());
        for rec in 0..self.record_count() {
            let lo = self.record_rows[rec] as usize;
            let hi = self.record_rows[rec + 1] as usize;
            let rows: Vec<Vec<Value>> = (lo..hi).map(|i| self.decode_row(i)).collect();
            let shape_lo = self.shape_offsets[rec] as usize;
            let shape_hi = self.shape_offsets[rec + 1] as usize;
            let mut cursor = shape::ShapeCursor::new(&self.shape_lens[shape_lo..shape_hi]);
            out.push(shape::rebuild(self.schema.fields(), &rows, &mut cursor));
        }
        out
    }

    /// Decodes one full-width row.
    pub fn decode_row(&self, row: usize) -> Vec<Value> {
        let lo = self.row_offsets[row] as usize;
        let hi = self.row_offsets[row + 1] as usize;
        let mut slice = &self.buf[lo..hi];
        (0..self.n_leaves)
            .map(|_| decode_value(&mut slice))
            .collect()
    }
}

fn encode_value(buf: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(false) => buf.push(TAG_FALSE),
        Value::Bool(true) => buf.push(TAG_TRUE),
        Value::Int(v) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::List(_) | Value::Struct(_) => {
            unreachable!("flattened rows contain only scalars")
        }
    }
}

#[inline]
fn take_u8(slice: &mut &[u8]) -> u8 {
    let b = slice[0];
    *slice = &slice[1..];
    b
}

#[inline]
fn take_array<const N: usize>(slice: &mut &[u8]) -> [u8; N] {
    let out: [u8; N] = slice[..N].try_into().expect("row buffer underrun");
    *slice = &slice[N..];
    out
}

fn decode_value(slice: &mut &[u8]) -> Value {
    match take_u8(slice) {
        TAG_NULL => Value::Null,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(i64::from_le_bytes(take_array(slice))),
        TAG_FLOAT => Value::Float(f64::from_le_bytes(take_array(slice))),
        TAG_STR => {
            let len = u32::from_le_bytes(take_array(slice)) as usize;
            let s = String::from_utf8_lossy(&slice[..len]).into_owned();
            *slice = &slice[len..];
            Value::Str(s)
        }
        other => unreachable!("corrupt row tag {other}"),
    }
}

/// Decodes one packed field straight into a scratch column. Strings copy
/// from the row buffer into the column's byte arena without the owned
/// `String` round-trip [`decode_value`] pays — one allocation+copy saved
/// per string value on the vectorized row-store scan.
fn decode_value_into(slice: &mut &[u8], col: &mut crate::batch::ScratchColumn) {
    match take_u8(slice) {
        TAG_NULL => col.push(&Value::Null),
        TAG_FALSE => col.push(&Value::Bool(false)),
        TAG_TRUE => col.push(&Value::Bool(true)),
        TAG_INT => col.push(&Value::Int(i64::from_le_bytes(take_array(slice)))),
        TAG_FLOAT => col.push(&Value::Float(f64::from_le_bytes(take_array(slice)))),
        TAG_STR => {
            let len = u32::from_le_bytes(take_array(slice)) as usize;
            col.push_str_bytes(&slice[..len]);
            *slice = &slice[len..];
        }
        other => unreachable!("corrupt row tag {other}"),
    }
}

fn skip_value(slice: &mut &[u8]) {
    match take_u8(slice) {
        TAG_NULL | TAG_FALSE | TAG_TRUE => {}
        TAG_INT | TAG_FLOAT => *slice = &slice[8..],
        TAG_STR => {
            let len = u32::from_le_bytes(take_array(slice)) as usize;
            *slice = &slice[len..];
        }
        other => unreachable!("corrupt row tag {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::required("s", DataType::Str),
            Field::new("tags", DataType::List(Box::new(DataType::Float))),
        ])
    }

    fn records() -> Vec<Value> {
        vec![
            Value::Struct(vec![
                Value::Int(1),
                Value::Str("one".into()),
                Value::List(vec![Value::Float(0.5), Value::Float(1.5)]),
            ]),
            Value::Struct(vec![Value::Int(2), Value::Str("two".into()), Value::Null]),
        ]
    }

    #[test]
    fn build_and_decode_rows() {
        let rs = records();
        let store = RowStore::build(&schema(), rs.iter());
        assert_eq!(store.row_count(), 3);
        assert_eq!(store.record_count(), 2);
        assert_eq!(
            store.decode_row(0),
            vec![Value::Int(1), Value::Str("one".into()), Value::Float(0.5)]
        );
        assert_eq!(
            store.decode_row(2),
            vec![Value::Int(2), Value::Str("two".into()), Value::Null]
        );
    }

    #[test]
    fn scan_projects_in_order() {
        let rs = records();
        let store = RowStore::build(&schema(), rs.iter());
        let mut rows = Vec::new();
        store.scan(&[2, 0], false, &mut |_, row| rows.push(row.to_vec()));
        assert_eq!(rows[0], vec![Value::Float(0.5), Value::Int(1)]);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn record_level_scan() {
        let rs = records();
        let store = RowStore::build(&schema(), rs.iter());
        let mut rows = Vec::new();
        let cost = store.scan(&[0], true, &mut |_, row| rows.push(row.to_vec()));
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(cost.rows_visited, 3);
    }

    #[test]
    fn scan_agrees_with_columnar() {
        use crate::columnar::ColumnStore;
        let rs = records();
        let row_store = RowStore::build(&schema(), rs.iter());
        let col_store = ColumnStore::build(&schema(), rs.iter());
        let mut a = Vec::new();
        row_store.scan(&[0, 1, 2], false, &mut |id, r| a.push((id, r.to_vec())));
        let mut b = Vec::new();
        col_store.scan(&[0, 1, 2], false, &mut |id, r| b.push((id, r.to_vec())));
        assert_eq!(a, b);
    }

    #[test]
    fn scan_batches_matches_row_scan() {
        let rs = records();
        let mut store = RowStore::build(&schema(), rs.iter());
        store.set_source_record_ids(vec![11, 29]);
        for (projection, record_level) in [
            (vec![0usize, 1, 2], false),
            (vec![2, 0], false),
            (vec![1], true),
        ] {
            let mut expected = Vec::new();
            store.scan(&projection, record_level, &mut |id, row| {
                expected.push((id as u32, row.to_vec()));
            });
            let mut got = Vec::new();
            store.scan_batches(&projection, record_level, true, &mut |batch, sel| {
                for &i in sel.as_slice() {
                    let i = i as usize;
                    let row: Vec<Value> = batch.columns.iter().map(|c| c.value(i)).collect();
                    got.push((batch.record_ids[i], row));
                }
            });
            assert_eq!(
                got, expected,
                "projection {projection:?} record_level {record_level}"
            );
        }
    }

    #[test]
    fn scan_batches_tracks_nulls() {
        let rs = records();
        let store = RowStore::build(&schema(), rs.iter());
        // Leaf 2 (tags) is null for the second record.
        store.scan_batches(&[2], false, false, &mut |batch, sel| {
            assert_eq!(sel.len(), 3);
            assert!(batch.columns[0].is_valid(0));
            assert!(!batch.columns[0].is_valid(2));
        });
    }

    #[test]
    fn range_scan_concatenation_matches_full_scan() {
        let schema = schema();
        let records: Vec<Value> = (0..9000)
            .map(|i| {
                Value::Struct(vec![
                    Value::Int(i),
                    Value::Str(format!("s{i}")),
                    Value::List(vec![Value::Float(i as f64 * 0.5)]),
                ])
            })
            .collect();
        let mut store = RowStore::build(&schema, records.iter());
        store.set_source_record_ids((0..9000u32).collect());
        let chunks = store.batch_chunks(&[0, 1, 2], false);
        assert!(chunks > 1, "need a multi-chunk store, got {chunks}");
        let mut expected = Vec::new();
        store.scan_batches(&[2, 1], false, true, &mut |batch, sel| {
            for &i in sel.as_slice() {
                let i = i as usize;
                let row: Vec<Value> = batch.columns.iter().map(|c| c.value(i)).collect();
                expected.push((batch.record_ids[i], row));
            }
        });
        let mut got = Vec::new();
        for (lo, hi) in [(0, chunks / 2), (chunks / 2, chunks)] {
            store.scan_batches_range(&[2, 1], false, true, lo, hi, &mut |batch, sel| {
                for &i in sel.as_slice() {
                    let i = i as usize;
                    let row: Vec<Value> = batch.columns.iter().map(|c| c.value(i)).collect();
                    got.push((batch.record_ids[i], row));
                }
            });
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn to_records_round_trips() {
        let rs = records();
        let store = RowStore::build(&schema(), rs.iter());
        let rebuilt = store.to_records();
        for (a, b) in rs.iter().zip(&rebuilt) {
            assert_eq!(
                recache_types::flatten_record(&schema(), a),
                recache_types::flatten_record(&schema(), b)
            );
        }
    }

    #[test]
    fn empty_store() {
        let store = RowStore::build(&schema(), std::iter::empty());
        assert_eq!(store.row_count(), 0);
        let mut n = 0;
        store.scan(&[0], false, &mut |_, _| n += 1);
        assert_eq!(n, 0);
    }
}
