//! Typed columns with null masks: the storage unit shared by the
//! relational columnar and Dremel stores.

use crate::batch::{BatchColumn, BatchValues};
use crate::bitmap::Bitmap;
use recache_types::{ScalarType, Value};
use std::collections::BTreeSet;

/// Default dictionary-encoding threshold: a string column is encoded when
/// `distinct / rows` is at most this ratio (the knob stores pass to
/// [`ColumnData::dict_encode`]).
pub const DICT_MAX_RATIO: f64 = 0.125;

/// Rows below which dictionary encoding is never attempted — tiny columns
/// gain nothing and the pool bookkeeping would dominate.
pub const DICT_MIN_ROWS: usize = 64;

/// Typed value storage.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Strings as a shared byte heap with offsets (offsets has `len + 1`
    /// entries).
    Str {
        offsets: Vec<u32>,
        bytes: Vec<u8>,
    },
    /// Dictionary-encoded strings: one `u32` code per row into a pool of
    /// distinct values kept **sorted**, so code order equals string order
    /// and both equality and ordered predicates reduce to integer
    /// compares on the codes (see `recache_engine`'s kernels). Built by
    /// [`ColumnData::dict_encode`] after a store finishes building; a
    /// sealed dictionary column is never pushed into again.
    Dict {
        codes: Vec<u32>,
        /// Pool arena: entry `i` is
        /// `pool_bytes[pool_offsets[i]..pool_offsets[i + 1]]`
        /// (`pool_offsets` has `pool_len + 1` entries).
        pool_offsets: Vec<u32>,
        pool_bytes: Vec<u8>,
    },
}

impl ColumnData {
    pub fn new(ty: ScalarType) -> Self {
        match ty {
            ScalarType::Bool => ColumnData::Bool(Vec::new()),
            ScalarType::Int => ColumnData::Int(Vec::new()),
            ScalarType::Float => ColumnData::Float(Vec::new()),
            ScalarType::Str => ColumnData::Str {
                offsets: vec![0],
                bytes: Vec::new(),
            },
        }
    }

    pub fn scalar_type(&self) -> ScalarType {
        match self {
            ColumnData::Bool(_) => ScalarType::Bool,
            ColumnData::Int(_) => ScalarType::Int,
            ColumnData::Float(_) => ScalarType::Float,
            ColumnData::Str { .. } | ColumnData::Dict { .. } => ScalarType::Str,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { offsets, .. } => offsets.len() - 1,
            ColumnData::Dict { codes, .. } => codes.len(),
        }
    }

    /// True for dictionary-encoded string columns.
    pub fn is_dict(&self) -> bool {
        matches!(self, ColumnData::Dict { .. })
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value; `Null` (or a type mismatch) appends the zero value
    /// — the caller records nullity in the mask.
    pub fn push(&mut self, value: &Value) {
        match self {
            ColumnData::Bool(v) => v.push(value.as_bool().unwrap_or(false)),
            ColumnData::Int(v) => v.push(match value {
                Value::Int(x) => *x,
                other => other.as_i64().unwrap_or(0),
            }),
            ColumnData::Float(v) => v.push(value.as_f64().unwrap_or(0.0)),
            ColumnData::Str { offsets, bytes } => {
                if let Value::Str(s) = value {
                    bytes.extend_from_slice(s.as_bytes());
                }
                offsets.push(bytes.len() as u32);
            }
            // Encoding happens only after a store finishes building.
            ColumnData::Dict { .. } => unreachable!("push into a sealed dictionary column"),
        }
    }

    /// Appends one string value directly from its encoded bytes — no
    /// intermediate `String` allocation; the bytes land straight in the
    /// shared heap (the row store's decode-into-arena path).
    #[inline]
    pub fn push_str_bytes(&mut self, s: &[u8]) {
        match self {
            ColumnData::Str { offsets, bytes } => {
                bytes.extend_from_slice(s);
                offsets.push(bytes.len() as u32);
            }
            // Scalar type of a leaf never changes within a store.
            _ => unreachable!("push_str_bytes on a non-string column"),
        }
    }

    /// Reads a value (non-null slot).
    #[inline]
    pub fn get(&self, index: usize) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[index]),
            ColumnData::Int(v) => Value::Int(v[index]),
            ColumnData::Float(v) => Value::Float(v[index]),
            ColumnData::Str { offsets, bytes } => {
                let start = offsets[index] as usize;
                let end = offsets[index + 1] as usize;
                Value::Str(String::from_utf8_lossy(&bytes[start..end]).into_owned())
            }
            ColumnData::Dict {
                codes,
                pool_offsets,
                pool_bytes,
            } => {
                let code = codes[index] as usize;
                let start = pool_offsets[code] as usize;
                let end = pool_offsets[code + 1] as usize;
                Value::Str(String::from_utf8_lossy(&pool_bytes[start..end]).into_owned())
            }
        }
    }

    /// Heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Str { offsets, bytes } => offsets.len() * 4 + bytes.len(),
            ColumnData::Dict {
                codes,
                pool_offsets,
                pool_bytes,
            } => codes.len() * 4 + pool_offsets.len() * 4 + pool_bytes.len(),
        }
    }

    /// Removes all entries, keeping allocations (reusable buffers).
    pub fn clear(&mut self) {
        match self {
            ColumnData::Bool(v) => v.clear(),
            ColumnData::Int(v) => v.clear(),
            ColumnData::Float(v) => v.clear(),
            ColumnData::Str { offsets, bytes } => {
                offsets.clear();
                offsets.push(0);
                bytes.clear();
            }
            ColumnData::Dict {
                codes,
                pool_offsets,
                pool_bytes,
            } => {
                codes.clear();
                pool_offsets.clear();
                pool_offsets.push(0);
                pool_bytes.clear();
            }
        }
    }

    /// Dictionary-encodes a plain `Str` column in place when the column
    /// has at least `min_rows` rows and `distinct / rows <= max_ratio`.
    /// The pool is the column's distinct byte strings in sorted order, so
    /// code order equals string order. Returns whether encoding happened.
    /// Null slots keep their (empty) byte string; validity lives in the
    /// owning [`Column`]'s bitmap, exactly as for plain string columns.
    pub fn dict_encode(&mut self, max_ratio: f64, min_rows: usize) -> bool {
        let ColumnData::Str { offsets, bytes } = self else {
            return false;
        };
        let rows = offsets.len() - 1;
        if rows < min_rows {
            return false;
        }
        // Scale before truncating so tiny ratios keep a non-zero budget.
        let max_distinct = ((rows as f64) * max_ratio).floor().max(1.0) as usize;
        let mut pool: BTreeSet<&[u8]> = BTreeSet::new();
        for i in 0..rows {
            pool.insert(&bytes[offsets[i] as usize..offsets[i + 1] as usize]);
            if pool.len() > max_distinct {
                return false; // too many distinct values — bail early
            }
        }
        // Sorted pool → arena; codes resolve by binary search (the pool
        // is small by construction, so log2(pool) byte compares per row).
        let sorted: Vec<&[u8]> = pool.into_iter().collect();
        let mut pool_offsets: Vec<u32> = Vec::with_capacity(sorted.len() + 1);
        pool_offsets.push(0);
        let mut pool_bytes: Vec<u8> = Vec::new();
        for s in &sorted {
            pool_bytes.extend_from_slice(s);
            pool_offsets.push(pool_bytes.len() as u32);
        }
        let codes: Vec<u32> = (0..rows)
            .map(|i| {
                let s = &bytes[offsets[i] as usize..offsets[i + 1] as usize];
                sorted.binary_search(&s).expect("value in pool") as u32
            })
            .collect();
        *self = ColumnData::Dict {
            codes,
            pool_offsets,
            pool_bytes,
        };
        true
    }

    /// Copies entry `index` of another column of the same scalar type —
    /// typed, no `Value` boxing. `copy_bytes = false` appends an empty
    /// string slot instead of the source bytes (null entries).
    #[inline]
    pub fn push_from(&mut self, src: &ColumnData, index: usize, copy_bytes: bool) {
        match (self, src) {
            (ColumnData::Bool(out), ColumnData::Bool(v)) => out.push(v[index]),
            (ColumnData::Int(out), ColumnData::Int(v)) => out.push(v[index]),
            (ColumnData::Float(out), ColumnData::Float(v)) => out.push(v[index]),
            (
                ColumnData::Str { offsets, bytes },
                ColumnData::Str {
                    offsets: so,
                    bytes: sb,
                },
            ) => {
                if copy_bytes {
                    let lo = so[index] as usize;
                    let hi = so[index + 1] as usize;
                    bytes.extend_from_slice(&sb[lo..hi]);
                }
                offsets.push(bytes.len() as u32);
            }
            // Gathering out of a dictionary column (Dremel assembled
            // scans, layout conversions) decodes into the plain arena.
            (
                ColumnData::Str { offsets, bytes },
                ColumnData::Dict {
                    codes,
                    pool_offsets,
                    pool_bytes,
                },
            ) => {
                if copy_bytes {
                    let code = codes[index] as usize;
                    let lo = pool_offsets[code] as usize;
                    let hi = pool_offsets[code + 1] as usize;
                    bytes.extend_from_slice(&pool_bytes[lo..hi]);
                }
                offsets.push(bytes.len() as u32);
            }
            // Scalar type of a leaf never changes within a store.
            _ => unreachable!("column type mismatch in push_from"),
        }
    }

    /// Borrowed typed view over entries `[start, end)` — zero-copy; string
    /// offsets stay absolute into the shared byte heap (and dictionary
    /// pools are shared whole, since codes index the full pool).
    pub fn slice(&self, start: usize, end: usize) -> BatchValues<'_> {
        match self {
            ColumnData::Bool(v) => BatchValues::Bool(&v[start..end]),
            ColumnData::Int(v) => BatchValues::Int(&v[start..end]),
            ColumnData::Float(v) => BatchValues::Float(&v[start..end]),
            ColumnData::Str { offsets, bytes } => BatchValues::Str {
                offsets: &offsets[start..=end],
                bytes,
            },
            ColumnData::Dict {
                codes,
                pool_offsets,
                pool_bytes,
            } => BatchValues::Dict {
                codes: &codes[start..end],
                pool_offsets,
                pool_bytes,
            },
        }
    }
}

/// A column: typed data plus a validity mask.
#[derive(Debug, Clone)]
pub struct Column {
    pub data: ColumnData,
    /// Set bit = valid (non-null).
    pub valid: Bitmap,
}

impl Column {
    pub fn new(ty: ScalarType) -> Self {
        Column {
            data: ColumnData::new(ty),
            valid: Bitmap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.valid.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all entries, keeping allocations (reusable buffers).
    pub fn clear(&mut self) {
        self.data.clear();
        self.valid.clear();
    }

    /// Appends a value, tracking nullity.
    pub fn push(&mut self, value: &Value) {
        self.valid.push(!value.is_null());
        self.data.push(value);
    }

    /// Copies entry `index` of another same-typed column (typed append,
    /// no `Value` boxing).
    #[inline]
    pub fn push_entry_from(&mut self, src_data: &ColumnData, src_valid: &Bitmap, index: usize) {
        let is_valid = src_valid.get(index);
        self.valid.push(is_valid);
        self.data.push_from(src_data, index, is_valid);
    }

    /// Reads a value, `Null` for invalid slots.
    #[inline]
    pub fn get(&self, index: usize) -> Value {
        if self.valid.get(index) {
            self.data.get(index)
        } else {
            Value::Null
        }
    }

    pub fn byte_size(&self) -> usize {
        self.data.byte_size() + self.valid.byte_size()
    }

    /// Borrowed batch view over rows `[start, end)`. `start` must be a
    /// multiple of 64 so the validity view begins on a word boundary
    /// (batch row `r` is then bit `r` of the word slice). Pass
    /// `all_valid = true` (precomputed once per scan) to skip validity
    /// tracking for null-free columns.
    pub fn batch_view(&self, start: usize, end: usize, all_valid: bool) -> BatchColumn<'_> {
        crate::batch::borrowed_batch_column(&self.data, &self.valid, start, end, all_valid)
    }

    /// Dictionary-encodes a low-cardinality string column in place (see
    /// [`ColumnData::dict_encode`]); no-op for other types. Returns
    /// whether encoding happened.
    pub fn maybe_dict_encode(&mut self, max_ratio: f64, min_rows: usize) -> bool {
        self.data.dict_encode(max_ratio, min_rows)
    }

    /// True when this column is dictionary-encoded.
    pub fn is_dict(&self) -> bool {
        self.data.is_dict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_round_trips() {
        let mut col = Column::new(ScalarType::Int);
        col.push(&Value::Int(5));
        col.push(&Value::Null);
        col.push(&Value::Int(-9));
        assert_eq!(col.len(), 3);
        assert_eq!(col.get(0), Value::Int(5));
        assert_eq!(col.get(1), Value::Null);
        assert_eq!(col.get(2), Value::Int(-9));
    }

    #[test]
    fn string_heap_round_trips() {
        let mut col = Column::new(ScalarType::Str);
        col.push(&Value::from("alpha"));
        col.push(&Value::from(""));
        col.push(&Value::Null);
        col.push(&Value::from("beta"));
        assert_eq!(col.get(0), Value::from("alpha"));
        assert_eq!(col.get(1), Value::from(""));
        assert_eq!(col.get(2), Value::Null);
        assert_eq!(col.get(3), Value::from("beta"));
    }

    #[test]
    fn float_and_bool_columns() {
        let mut f = Column::new(ScalarType::Float);
        f.push(&Value::Float(2.5));
        assert_eq!(f.get(0), Value::Float(2.5));
        let mut b = Column::new(ScalarType::Bool);
        b.push(&Value::Bool(true));
        b.push(&Value::Bool(false));
        assert_eq!(b.get(0), Value::Bool(true));
        assert_eq!(b.get(1), Value::Bool(false));
    }

    #[test]
    fn mismatched_push_becomes_null_value_slot() {
        let mut col = Column::new(ScalarType::Str);
        // Pushing an Int into a Str column keeps the mask valid but the
        // heap empty; get returns "" — engine never does this (schema-
        // directed), the test documents the degenerate behaviour.
        col.push(&Value::Int(1));
        assert_eq!(col.get(0), Value::from(""));
    }

    #[test]
    fn byte_sizes() {
        let mut col = Column::new(ScalarType::Int);
        for i in 0..64 {
            col.push(&Value::Int(i));
        }
        assert_eq!(col.data.byte_size(), 64 * 8);
        assert_eq!(col.byte_size(), 64 * 8 + 8);
    }

    fn low_card_column(rows: usize) -> Column {
        let mut col = Column::new(ScalarType::Str);
        for i in 0..rows {
            if i % 7 == 3 {
                col.push(&Value::Null);
            } else {
                col.push(&Value::Str(format!("tag{}", i % 5)));
            }
        }
        col
    }

    #[test]
    fn dict_encode_round_trips_values_and_nulls() {
        let mut col = low_card_column(200);
        let expected: Vec<Value> = (0..200).map(|i| col.get(i)).collect();
        assert!(col.maybe_dict_encode(0.125, 64));
        assert!(col.is_dict());
        assert_eq!(col.len(), 200);
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(&col.get(i), want, "row {i}");
        }
    }

    #[test]
    fn dict_pool_is_sorted_so_code_order_is_string_order() {
        let mut col = Column::new(ScalarType::Str);
        let words = ["pear", "apple", "fig", "apple", "banana", "fig"];
        for w in words.iter().cycle().take(128) {
            col.push(&Value::Str((*w).to_owned()));
        }
        assert!(col.maybe_dict_encode(0.5, 64));
        let ColumnData::Dict {
            codes,
            pool_offsets,
            pool_bytes,
        } = &col.data
        else {
            panic!("expected dict");
        };
        let pool: Vec<&[u8]> = (0..pool_offsets.len() - 1)
            .map(|i| &pool_bytes[pool_offsets[i] as usize..pool_offsets[i + 1] as usize])
            .collect();
        assert_eq!(pool, vec![b"apple".as_slice(), b"banana", b"fig", b"pear"]);
        // Codes follow pool order, not first-seen order.
        assert_eq!(codes[0], 3); // pear
        assert_eq!(codes[1], 0); // apple
        assert_eq!(codes[2], 2); // fig
    }

    #[test]
    fn dict_encode_rejects_high_cardinality_and_tiny_columns() {
        let mut high = Column::new(ScalarType::Str);
        for i in 0..500 {
            high.push(&Value::Str(format!("unique-{i}")));
        }
        assert!(!high.maybe_dict_encode(0.125, 64));
        assert!(!high.is_dict());

        let mut tiny = Column::new(ScalarType::Str);
        for _ in 0..10 {
            tiny.push(&Value::Str("same".into()));
        }
        assert!(!tiny.maybe_dict_encode(0.125, 64));
    }

    #[test]
    fn dict_encode_ignores_non_string_columns() {
        let mut col = Column::new(ScalarType::Int);
        for _ in 0..100 {
            col.push(&Value::Int(1));
        }
        assert!(!col.maybe_dict_encode(0.125, 64));
    }

    #[test]
    fn dict_byte_size_shrinks_repetitive_columns() {
        let mut plain = low_card_column(2048);
        let before = plain.byte_size();
        assert!(plain.maybe_dict_encode(0.125, 64));
        let after = plain.byte_size();
        assert!(
            after < before,
            "dict encoding must shrink the footprint ({after} vs {before})"
        );
    }

    #[test]
    fn push_from_decodes_dict_sources() {
        let mut src = low_card_column(100);
        let expected: Vec<Value> = (0..100).map(|i| src.get(i)).collect();
        assert!(src.maybe_dict_encode(0.25, 64));
        let mut dst = Column::new(ScalarType::Str);
        for i in 0..100 {
            dst.push_entry_from(&src.data, &src.valid, i);
        }
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(&dst.get(i), want, "row {i}");
        }
    }
}
