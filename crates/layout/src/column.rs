//! Typed columns with null masks: the storage unit shared by the
//! relational columnar and Dremel stores.

use crate::batch::{BatchColumn, BatchValues};
use crate::bitmap::Bitmap;
use recache_types::{ScalarType, Value};

/// Typed value storage.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Strings as a shared byte heap with offsets (offsets has `len + 1`
    /// entries).
    Str {
        offsets: Vec<u32>,
        bytes: Vec<u8>,
    },
}

impl ColumnData {
    pub fn new(ty: ScalarType) -> Self {
        match ty {
            ScalarType::Bool => ColumnData::Bool(Vec::new()),
            ScalarType::Int => ColumnData::Int(Vec::new()),
            ScalarType::Float => ColumnData::Float(Vec::new()),
            ScalarType::Str => ColumnData::Str {
                offsets: vec![0],
                bytes: Vec::new(),
            },
        }
    }

    pub fn scalar_type(&self) -> ScalarType {
        match self {
            ColumnData::Bool(_) => ScalarType::Bool,
            ColumnData::Int(_) => ScalarType::Int,
            ColumnData::Float(_) => ScalarType::Float,
            ColumnData::Str { .. } => ScalarType::Str,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { offsets, .. } => offsets.len() - 1,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value; `Null` (or a type mismatch) appends the zero value
    /// — the caller records nullity in the mask.
    pub fn push(&mut self, value: &Value) {
        match self {
            ColumnData::Bool(v) => v.push(value.as_bool().unwrap_or(false)),
            ColumnData::Int(v) => v.push(match value {
                Value::Int(x) => *x,
                other => other.as_i64().unwrap_or(0),
            }),
            ColumnData::Float(v) => v.push(value.as_f64().unwrap_or(0.0)),
            ColumnData::Str { offsets, bytes } => {
                if let Value::Str(s) = value {
                    bytes.extend_from_slice(s.as_bytes());
                }
                offsets.push(bytes.len() as u32);
            }
        }
    }

    /// Appends one string value directly from its encoded bytes — no
    /// intermediate `String` allocation; the bytes land straight in the
    /// shared heap (the row store's decode-into-arena path).
    #[inline]
    pub fn push_str_bytes(&mut self, s: &[u8]) {
        match self {
            ColumnData::Str { offsets, bytes } => {
                bytes.extend_from_slice(s);
                offsets.push(bytes.len() as u32);
            }
            // Scalar type of a leaf never changes within a store.
            _ => unreachable!("push_str_bytes on a non-string column"),
        }
    }

    /// Reads a value (non-null slot).
    #[inline]
    pub fn get(&self, index: usize) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[index]),
            ColumnData::Int(v) => Value::Int(v[index]),
            ColumnData::Float(v) => Value::Float(v[index]),
            ColumnData::Str { offsets, bytes } => {
                let start = offsets[index] as usize;
                let end = offsets[index + 1] as usize;
                Value::Str(String::from_utf8_lossy(&bytes[start..end]).into_owned())
            }
        }
    }

    /// Heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Str { offsets, bytes } => offsets.len() * 4 + bytes.len(),
        }
    }

    /// Removes all entries, keeping allocations (reusable buffers).
    pub fn clear(&mut self) {
        match self {
            ColumnData::Bool(v) => v.clear(),
            ColumnData::Int(v) => v.clear(),
            ColumnData::Float(v) => v.clear(),
            ColumnData::Str { offsets, bytes } => {
                offsets.clear();
                offsets.push(0);
                bytes.clear();
            }
        }
    }

    /// Copies entry `index` of another column of the same scalar type —
    /// typed, no `Value` boxing. `copy_bytes = false` appends an empty
    /// string slot instead of the source bytes (null entries).
    #[inline]
    pub fn push_from(&mut self, src: &ColumnData, index: usize, copy_bytes: bool) {
        match (self, src) {
            (ColumnData::Bool(out), ColumnData::Bool(v)) => out.push(v[index]),
            (ColumnData::Int(out), ColumnData::Int(v)) => out.push(v[index]),
            (ColumnData::Float(out), ColumnData::Float(v)) => out.push(v[index]),
            (
                ColumnData::Str { offsets, bytes },
                ColumnData::Str {
                    offsets: so,
                    bytes: sb,
                },
            ) => {
                if copy_bytes {
                    let lo = so[index] as usize;
                    let hi = so[index + 1] as usize;
                    bytes.extend_from_slice(&sb[lo..hi]);
                }
                offsets.push(bytes.len() as u32);
            }
            // Scalar type of a leaf never changes within a store.
            _ => unreachable!("column type mismatch in push_from"),
        }
    }

    /// Borrowed typed view over entries `[start, end)` — zero-copy; string
    /// offsets stay absolute into the shared byte heap.
    pub fn slice(&self, start: usize, end: usize) -> BatchValues<'_> {
        match self {
            ColumnData::Bool(v) => BatchValues::Bool(&v[start..end]),
            ColumnData::Int(v) => BatchValues::Int(&v[start..end]),
            ColumnData::Float(v) => BatchValues::Float(&v[start..end]),
            ColumnData::Str { offsets, bytes } => BatchValues::Str {
                offsets: &offsets[start..=end],
                bytes,
            },
        }
    }
}

/// A column: typed data plus a validity mask.
#[derive(Debug, Clone)]
pub struct Column {
    pub data: ColumnData,
    /// Set bit = valid (non-null).
    pub valid: Bitmap,
}

impl Column {
    pub fn new(ty: ScalarType) -> Self {
        Column {
            data: ColumnData::new(ty),
            valid: Bitmap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.valid.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all entries, keeping allocations (reusable buffers).
    pub fn clear(&mut self) {
        self.data.clear();
        self.valid.clear();
    }

    /// Appends a value, tracking nullity.
    pub fn push(&mut self, value: &Value) {
        self.valid.push(!value.is_null());
        self.data.push(value);
    }

    /// Copies entry `index` of another same-typed column (typed append,
    /// no `Value` boxing).
    #[inline]
    pub fn push_entry_from(&mut self, src_data: &ColumnData, src_valid: &Bitmap, index: usize) {
        let is_valid = src_valid.get(index);
        self.valid.push(is_valid);
        self.data.push_from(src_data, index, is_valid);
    }

    /// Reads a value, `Null` for invalid slots.
    #[inline]
    pub fn get(&self, index: usize) -> Value {
        if self.valid.get(index) {
            self.data.get(index)
        } else {
            Value::Null
        }
    }

    pub fn byte_size(&self) -> usize {
        self.data.byte_size() + self.valid.byte_size()
    }

    /// Borrowed batch view over rows `[start, end)`. `start` must be a
    /// multiple of 64 so the validity view begins on a word boundary
    /// (batch row `r` is then bit `r` of the word slice). Pass
    /// `all_valid = true` (precomputed once per scan) to skip validity
    /// tracking for null-free columns.
    pub fn batch_view(&self, start: usize, end: usize, all_valid: bool) -> BatchColumn<'_> {
        crate::batch::borrowed_batch_column(&self.data, &self.valid, start, end, all_valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_round_trips() {
        let mut col = Column::new(ScalarType::Int);
        col.push(&Value::Int(5));
        col.push(&Value::Null);
        col.push(&Value::Int(-9));
        assert_eq!(col.len(), 3);
        assert_eq!(col.get(0), Value::Int(5));
        assert_eq!(col.get(1), Value::Null);
        assert_eq!(col.get(2), Value::Int(-9));
    }

    #[test]
    fn string_heap_round_trips() {
        let mut col = Column::new(ScalarType::Str);
        col.push(&Value::from("alpha"));
        col.push(&Value::from(""));
        col.push(&Value::Null);
        col.push(&Value::from("beta"));
        assert_eq!(col.get(0), Value::from("alpha"));
        assert_eq!(col.get(1), Value::from(""));
        assert_eq!(col.get(2), Value::Null);
        assert_eq!(col.get(3), Value::from("beta"));
    }

    #[test]
    fn float_and_bool_columns() {
        let mut f = Column::new(ScalarType::Float);
        f.push(&Value::Float(2.5));
        assert_eq!(f.get(0), Value::Float(2.5));
        let mut b = Column::new(ScalarType::Bool);
        b.push(&Value::Bool(true));
        b.push(&Value::Bool(false));
        assert_eq!(b.get(0), Value::Bool(true));
        assert_eq!(b.get(1), Value::Bool(false));
    }

    #[test]
    fn mismatched_push_becomes_null_value_slot() {
        let mut col = Column::new(ScalarType::Str);
        // Pushing an Int into a Str column keeps the mask valid but the
        // heap empty; get returns "" — engine never does this (schema-
        // directed), the test documents the degenerate behaviour.
        col.push(&Value::Int(1));
        assert_eq!(col.get(0), Value::from(""));
    }

    #[test]
    fn byte_sizes() {
        let mut col = Column::new(ScalarType::Int);
        for i in 0..64 {
            col.push(&Value::Int(i));
        }
        assert_eq!(col.data.byte_size(), 64 * 8);
        assert_eq!(col.byte_size(), 64 * 8 + 8);
    }
}
