//! In-memory cache layouts for ReCache.
//!
//! A cached item stores the set of records that satisfied a selection
//! operator, in one of four physical layouts (§4 of the paper):
//!
//! * [`ColumnStore`] — *relational columnar*: records flattened into rows
//!   (lists exploded, parents duplicated), one typed column per leaf, plus
//!   a record-start bitmap and per-record nesting *shapes* that make the
//!   flattening losslessly reversible,
//! * [`DremelStore`] — *nested columnar* (Dremel/Parquet): column striping
//!   with definition/repetition levels; record assembly decodes levels
//!   (the compute cost the paper measures as `C`), while non-repeated
//!   projections read short columns directly (the "4x fewer rows" fast
//!   path),
//! * [`RowStore`] — *relational row-oriented*: packed byte rows; scans
//!   touch full tuples regardless of projection (the H2O tradeoff),
//! * [`OffsetStore`] — *lazy* cache: only the record ids of satisfying
//!   tuples; reuse re-reads the raw file through its positional map.
//!
//! Scans are two-phase per batch — decode/navigate (compute cost `C`) and
//! value gathering (data-access cost `D`) — and report measured
//! [`ScanCost`]s, which feed ReCache's layout-selection cost model.

pub mod batch;
pub mod bitmap;
pub mod column;
pub mod columnar;
pub mod convert;
pub mod dremel;
pub mod offsets;
pub mod row;
pub mod shape;

pub use batch::{
    BatchColumn, BatchScratch, BatchValues, ColumnBatch, ScratchColumn, SelectionVector, BATCH_ROWS,
};
pub use bitmap::Bitmap;
pub use column::{Column, ColumnData, DICT_MAX_RATIO, DICT_MIN_ROWS};
pub use columnar::ColumnStore;
pub use convert::{columnar_to_dremel, columnar_to_row, dremel_to_columnar, row_to_columnar};
pub use dremel::DremelStore;
pub use offsets::OffsetStore;
pub use row::RowStore;
pub use shape::ShapeCursor;

use recache_types::Value;

/// Physical layout of a cached item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Relational row-oriented ([`RowStore`]).
    Row,
    /// Relational column-oriented ([`ColumnStore`]).
    Columnar,
    /// Nested column-oriented, Dremel/Parquet-style ([`DremelStore`]).
    Dremel,
    /// Offsets of satisfying tuples only ([`OffsetStore`]).
    Offsets,
}

impl LayoutKind {
    pub fn name(&self) -> &'static str {
        match self {
            LayoutKind::Row => "row",
            LayoutKind::Columnar => "columnar",
            LayoutKind::Dremel => "dremel",
            LayoutKind::Offsets => "offsets",
        }
    }
}

/// Measured cost of one cache scan, split the way the paper's cost model
/// needs it: `D` (data access) vs `C` (computation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScanCost {
    /// Time spent gathering values out of the store.
    pub data_ns: u64,
    /// Time spent decoding levels, walking bitmaps, reconstructing
    /// records — everything that is not a plain value load.
    pub compute_ns: u64,
    /// Rows emitted.
    pub rows: usize,
    /// Row slots iterated (≥ rows for record-level scans over flattened
    /// stores, where duplicate rows are skipped but still visited).
    pub rows_visited: usize,
}

impl ScanCost {
    /// Total scan time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.data_ns + self.compute_ns
    }

    /// Accumulates another batch's cost.
    pub fn add(&mut self, other: &ScanCost) {
        self.data_ns += other.data_ns;
        self.compute_ns += other.compute_ns;
        self.rows += other.rows;
        self.rows_visited += other.rows_visited;
    }
}

/// The materialized data of a cached item, in whichever layout the
/// layout-selection policy chose. Stores are shared (`Arc`) so a cache
/// hit hands the scan a reference without copying data.
#[derive(Debug, Clone)]
pub enum CacheData {
    Columnar(std::sync::Arc<ColumnStore>),
    Dremel(std::sync::Arc<DremelStore>),
    Row(std::sync::Arc<RowStore>),
    Offsets(std::sync::Arc<OffsetStore>),
}

impl CacheData {
    pub fn layout(&self) -> LayoutKind {
        match self {
            CacheData::Columnar(_) => LayoutKind::Columnar,
            CacheData::Dremel(_) => LayoutKind::Dremel,
            CacheData::Row(_) => LayoutKind::Row,
            CacheData::Offsets(_) => LayoutKind::Offsets,
        }
    }

    /// In-memory footprint in bytes (the `B` of the benefit metric).
    pub fn byte_size(&self) -> usize {
        match self {
            CacheData::Columnar(s) => s.byte_size(),
            CacheData::Dremel(s) => s.byte_size(),
            CacheData::Row(s) => s.byte_size(),
            CacheData::Offsets(s) => s.byte_size(),
        }
    }

    /// Number of cached records.
    pub fn record_count(&self) -> usize {
        match self {
            CacheData::Columnar(s) => s.record_count(),
            CacheData::Dremel(s) => s.record_count(),
            CacheData::Row(s) => s.record_count(),
            CacheData::Offsets(s) => s.record_count(),
        }
    }

    /// Flattened row count `R` (what a relational columnar layout stores
    /// or would store).
    pub fn flattened_rows(&self) -> usize {
        match self {
            CacheData::Columnar(s) => s.row_count(),
            CacheData::Dremel(s) => s.flattened_rows(),
            CacheData::Row(s) => s.row_count(),
            CacheData::Offsets(s) => s.flattened_rows_estimate(),
        }
    }
}

/// Emit callback for row-at-a-time scans: receives the source record id
/// and one flattened row (projected leaves only, in projection order).
pub type RowSink<'a> = dyn FnMut(usize, &[Value]) + 'a;

/// Emit callback for vectorized scans: a typed [`ColumnBatch`] plus the
/// selection the store seeded (mask navigation already applied). The
/// consumer may compact the selection further (predicate kernels) before
/// gathering.
pub type BatchSink<'a> = dyn FnMut(&ColumnBatch<'_>, &mut SelectionVector) + 'a;
