//! Per-record nesting *shapes*: the list lengths of a record in preorder.
//!
//! The relational columnar layout flattens nested records into rows,
//! which loses the list structure (how many `urls` did record 7 have?).
//! ReCache must be able to switch a cached item *back* from the columnar
//! layout to the Dremel layout (§4.2), so [`crate::ColumnStore`] keeps a
//! few bytes of shape metadata per record — every list length, in
//! depth-first preorder — making the flattening losslessly reversible.
//!
//! `capture` + `rebuild` are exact inverses up to the usual flattening
//! equivalences (empty and absent lists coincide; an absent struct equals
//! a struct of nulls), which is all cache-layout switching needs: the
//! flattened views are bit-identical.

use recache_types::{DataType, Field, Value};

/// Captures the shape of one record: appends each list's length (0 for
/// absent/empty) in preorder to `out`.
pub fn capture(fields: &[Field], record: &Value, out: &mut Vec<u32>) {
    let children: &[Value] = match record {
        Value::Struct(c) => c,
        _ => &[],
    };
    for (i, field) in fields.iter().enumerate() {
        capture_value(
            &field.data_type,
            children.get(i).unwrap_or(&Value::Null),
            out,
        );
    }
}

fn capture_value(ty: &DataType, value: &Value, out: &mut Vec<u32>) {
    match ty {
        DataType::Struct(fields) => capture(fields, value, out),
        DataType::List(inner) => match value {
            Value::List(items) if !items.is_empty() => {
                out.push(items.len() as u32);
                for item in items {
                    capture_value(inner, item, out);
                }
            }
            _ => out.push(0),
        },
        _ => {}
    }
}

/// Read cursor over a record's shape.
#[derive(Debug, Clone, Copy)]
pub struct ShapeCursor<'a> {
    lens: &'a [u32],
    pos: usize,
}

impl<'a> ShapeCursor<'a> {
    pub fn new(lens: &'a [u32]) -> Self {
        ShapeCursor { lens, pos: 0 }
    }

    fn next(&mut self) -> u32 {
        let v = self.lens[self.pos];
        self.pos += 1;
        v
    }

    /// Entries consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Number of scalar leaves under a type.
pub fn leaf_count(ty: &DataType) -> usize {
    match ty {
        DataType::Struct(fields) => fields.iter().map(|f| leaf_count(&f.data_type)).sum(),
        DataType::List(inner) => leaf_count(inner),
        _ => 1,
    }
}

/// Flattened row count of one record, consuming its shape.
pub fn row_count(fields: &[Field], cursor: &mut ShapeCursor<'_>) -> usize {
    let mut rows = 1usize;
    for field in fields {
        rows *= value_row_count(&field.data_type, cursor);
    }
    rows
}

fn value_row_count(ty: &DataType, cursor: &mut ShapeCursor<'_>) -> usize {
    match ty {
        DataType::Struct(fields) => row_count(fields, cursor),
        DataType::List(inner) => {
            let len = cursor.next();
            if len == 0 {
                // An empty/absent list still flattens to one (null) row.
                1
            } else {
                (0..len).map(|_| value_row_count(inner, cursor)).sum()
            }
        }
        _ => 1,
    }
}

/// Rebuilds one nested record from its flattened rows and shape.
///
/// `rows` are the record's flattened rows over *all* leaves in canonical
/// order (exactly what [`recache_types::flatten_record`] produced when the
/// store was built).
pub fn rebuild(fields: &[Field], rows: &[Vec<Value>], cursor: &mut ShapeCursor<'_>) -> Value {
    let row_refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
    rebuild_struct(fields, &row_refs, 0, cursor)
}

fn rebuild_struct(
    fields: &[Field],
    rows: &[&[Value]],
    leaf_start: usize,
    cursor: &mut ShapeCursor<'_>,
) -> Value {
    // First pass: row multiplicity of each child (cloned cursors so the
    // real cursor is only consumed by the rebuild pass below).
    let mut counts = Vec::with_capacity(fields.len());
    {
        let mut probe = *cursor;
        for field in fields {
            counts.push(value_row_count(&field.data_type, &mut probe));
        }
    }
    // Cartesian layout: leftmost child varies slowest. stride[j] =
    // product of counts of children to the right.
    let mut strides = vec![1usize; fields.len()];
    for j in (0..fields.len().saturating_sub(1)).rev() {
        strides[j] = strides[j + 1] * counts[j + 1];
    }
    let mut children = Vec::with_capacity(fields.len());
    let mut leaf = leaf_start;
    for (j, field) in fields.iter().enumerate() {
        // Child j's own row set: sample rows at multiples of its stride
        // (all other children held at combination 0).
        let child_rows: Vec<&[Value]> = (0..counts[j]).map(|i| rows[i * strides[j]]).collect();
        children.push(rebuild_value(&field.data_type, &child_rows, leaf, cursor));
        leaf += leaf_count(&field.data_type);
    }
    Value::Struct(children)
}

fn rebuild_value(
    ty: &DataType,
    rows: &[&[Value]],
    leaf_start: usize,
    cursor: &mut ShapeCursor<'_>,
) -> Value {
    match ty {
        DataType::Struct(fields) => rebuild_struct(fields, rows, leaf_start, cursor),
        DataType::List(inner) => {
            let len = cursor.next();
            if len == 0 {
                return Value::Null;
            }
            let mut items = Vec::with_capacity(len as usize);
            let mut start = 0usize;
            for _ in 0..len {
                // Element row count, probed without consuming.
                let n = {
                    let mut probe = *cursor;
                    value_row_count(inner, &mut probe)
                };
                items.push(rebuild_value(
                    inner,
                    &rows[start..start + n],
                    leaf_start,
                    cursor,
                ));
                start += n;
            }
            Value::List(items)
        }
        _ => rows[0][leaf_start].clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recache_types::{flatten_record, Schema};

    fn nested_schema() -> Schema {
        Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![
                    Field::required("q", DataType::Int),
                    Field::new("tags", DataType::List(Box::new(DataType::Str))),
                ]))),
            ),
            Field::new("scores", DataType::List(Box::new(DataType::Float))),
        ])
    }

    fn roundtrip(schema: &Schema, record: &Value) {
        let mut lens = Vec::new();
        capture(schema.fields(), record, &mut lens);
        let rows = flatten_record(schema, record);
        let mut cursor = ShapeCursor::new(&lens);
        assert_eq!(
            row_count(schema.fields(), &mut cursor),
            rows.len(),
            "row_count"
        );
        let mut cursor = ShapeCursor::new(&lens);
        let rebuilt = rebuild(schema.fields(), &rows, &mut cursor);
        // Flattened views must agree exactly.
        assert_eq!(
            flatten_record(schema, &rebuilt),
            rows,
            "flatten(rebuild) == flatten"
        );
    }

    #[test]
    fn flat_record_has_empty_shape() {
        let schema = Schema::new(vec![Field::required("x", DataType::Int)]);
        let record = Value::Struct(vec![Value::Int(5)]);
        let mut lens = Vec::new();
        capture(schema.fields(), &record, &mut lens);
        assert!(lens.is_empty());
        roundtrip(&schema, &record);
    }

    #[test]
    fn single_list_roundtrip() {
        let schema = nested_schema();
        let record = Value::Struct(vec![
            Value::Int(1),
            Value::List(vec![
                Value::Struct(vec![Value::Int(10), Value::List(vec![Value::from("t1")])]),
                Value::Struct(vec![
                    Value::Int(20),
                    Value::List(vec![Value::from("t2"), Value::from("t3")]),
                ]),
            ]),
            Value::Null,
        ]);
        let mut lens = Vec::new();
        capture(schema.fields(), &record, &mut lens);
        // items len 2, tags lens 1 and 2, scores 0.
        assert_eq!(lens, vec![2, 1, 2, 0]);
        roundtrip(&schema, &record);
    }

    #[test]
    fn sibling_lists_cartesian_roundtrip() {
        let schema = nested_schema();
        let record = Value::Struct(vec![
            Value::Int(7),
            Value::List(vec![
                Value::Struct(vec![Value::Int(1), Value::Null]),
                Value::Struct(vec![Value::Int(2), Value::Null]),
            ]),
            Value::List(vec![
                Value::Float(0.5),
                Value::Float(1.5),
                Value::Float(2.5),
            ]),
        ]);
        // 2 items x 3 scores = 6 flattened rows.
        let rows = flatten_record(&schema, &record);
        assert_eq!(rows.len(), 6);
        roundtrip(&schema, &record);
    }

    #[test]
    fn empty_and_absent_lists_coincide() {
        let schema = nested_schema();
        let with_empty = Value::Struct(vec![Value::Int(1), Value::List(vec![]), Value::Null]);
        let with_null = Value::Struct(vec![Value::Int(1), Value::Null, Value::Null]);
        let mut lens_a = Vec::new();
        capture(schema.fields(), &with_empty, &mut lens_a);
        let mut lens_b = Vec::new();
        capture(schema.fields(), &with_null, &mut lens_b);
        assert_eq!(lens_a, lens_b);
        roundtrip(&schema, &with_empty);
        roundtrip(&schema, &with_null);
    }

    #[test]
    fn rebuilt_record_equals_original_when_canonical() {
        // For records with no empty lists and no null structs, rebuild is
        // the exact identity.
        let schema = nested_schema();
        let record = Value::Struct(vec![
            Value::Int(3),
            Value::List(vec![Value::Struct(vec![
                Value::Int(4),
                Value::List(vec![Value::from("x")]),
            ])]),
            Value::List(vec![Value::Float(9.0)]),
        ]);
        let mut lens = Vec::new();
        capture(schema.fields(), &record, &mut lens);
        let rows = flatten_record(&schema, &record);
        let mut cursor = ShapeCursor::new(&lens);
        let rebuilt = rebuild(schema.fields(), &rows, &mut cursor);
        assert_eq!(rebuilt, record);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use recache_types::{flatten_record, Schema};

    /// Random record for the fixed nested test schema below.
    fn random_record(rng: &mut StdRng) -> Value {
        let items: Vec<Value> = (0..rng.random_range(0..4))
            .map(|_| {
                let tags: Vec<Value> = (0..rng.random_range(0..3))
                    .map(|_| Value::Float(rng.random_range(0.0..10.0)))
                    .collect();
                Value::Struct(vec![Value::Int(rng.random::<i64>()), Value::List(tags)])
            })
            .collect();
        let flags: Vec<Value> = (0..rng.random_range(0..3))
            .map(|_| Value::Bool(rng.random::<bool>()))
            .collect();
        Value::Struct(vec![
            Value::Int(rng.random::<i64>()),
            Value::List(items),
            Value::List(flags),
        ])
    }

    fn test_schema() -> Schema {
        Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::new(
                "items",
                DataType::List(Box::new(DataType::Struct(vec![
                    Field::required("q", DataType::Int),
                    Field::new("tags", DataType::List(Box::new(DataType::Float))),
                ]))),
            ),
            Field::new("flags", DataType::List(Box::new(DataType::Bool))),
        ])
    }

    #[test]
    fn capture_rebuild_preserves_flattened_view() {
        let schema = test_schema();
        let mut rng = StdRng::seed_from_u64(0x5A5A);
        for case in 0..300 {
            let record = random_record(&mut rng);
            let mut lens = Vec::new();
            capture(schema.fields(), &record, &mut lens);
            let rows = flatten_record(&schema, &record);
            let mut cursor = ShapeCursor::new(&lens);
            assert_eq!(
                row_count(schema.fields(), &mut cursor),
                rows.len(),
                "case {case}: row_count mismatch for {record:?}"
            );
            let mut cursor = ShapeCursor::new(&lens);
            let rebuilt = rebuild(schema.fields(), &rows, &mut cursor);
            assert_eq!(
                flatten_record(&schema, &rebuilt),
                rows,
                "case {case}: rebuild mismatch for {record:?}"
            );
        }
    }
}
