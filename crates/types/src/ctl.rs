//! Cooperative cancellation and per-scan failure control.
//!
//! Two small primitives shared by the data layer and the executor:
//!
//! * [`CancelToken`] — a query-scoped flag plus optional deadline.
//!   Workers poll [`CancelToken::check`] at chunk granularity and bail
//!   with a typed [`Error::Cancelled`] / [`Error::Timeout`] instead of
//!   running to completion. Cancellation is *cooperative*: nothing is
//!   interrupted mid-chunk, so no partially-written batch or capture
//!   slab is ever observable.
//! * [`ScanCtl`] — a per-scan control block that makes parallel error
//!   handling deterministic. Failing chunks record their error keyed by
//!   chunk index; only the lowest-index error survives, and chunks
//!   *above* a recorded failure short-circuit. Because the executor's
//!   task ranges cover contiguous ascending chunk ranges, a chunk is
//!   only ever skipped when a failure at a lower index has already been
//!   recorded — so the globally-first failing chunk always runs and
//!   records, and the surfaced error is independent of thread
//!   interleaving.

use crate::error::{Error, Result};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Query-scoped cancellation flag with an optional deadline.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: std::sync::atomic::AtomicBool,
    deadline: Option<Instant>,
    /// An outer token this one also honors: a child trips when either
    /// its own flag/deadline trips or the parent's does. Lets a
    /// per-query deadline compose with a caller-held cancel handle
    /// without merging their lifetimes.
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that also trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            cancelled: std::sync::atomic::AtomicBool::new(false),
            deadline: Some(deadline),
            parent: None,
        }
    }

    /// A token that trips `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// A child token that trips `timeout` from now *or* whenever
    /// `parent` trips, whichever comes first. The parent is polled on
    /// every [`check`](Self::check), so cancelling it cancels every
    /// child; the child's own deadline never propagates upward.
    pub fn child_with_timeout(parent: Arc<CancelToken>, timeout: Duration) -> Self {
        CancelToken {
            cancelled: std::sync::atomic::AtomicBool::new(false),
            deadline: Some(Instant::now() + timeout),
            parent: Some(parent),
        }
    }

    /// Requests cancellation; every subsequent [`check`](Self::check)
    /// fails with [`Error::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called (deadline not
    /// consulted).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Polls the token: `Err(Cancelled)` after an explicit cancel,
    /// `Err(Timeout)` past the deadline, `Ok(())` otherwise. A linked
    /// parent token is polled too, and its verdict wins (so an outer
    /// cancel surfaces as `Cancelled` even inside a child deadline).
    pub fn check(&self) -> Result<()> {
        if let Some(parent) = &self.parent {
            parent.check()?;
        }
        if self.is_cancelled() {
            return Err(Error::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Error::Timeout);
            }
        }
        Ok(())
    }
}

/// Sentinel for "no chunk has failed".
const NO_FAILURE: usize = usize::MAX;

/// Per-scan control block: external cancellation plus deterministic
/// first-failure selection across parallel chunk tasks.
#[derive(Debug, Default)]
pub struct ScanCtl {
    cancel: Option<Arc<CancelToken>>,
    /// Lowest chunk index that has recorded a failure ([`NO_FAILURE`]
    /// when none has). Read lock-free on the admit fast path.
    failed_chunk: AtomicUsize,
    /// The error recorded for `failed_chunk`.
    error: Mutex<Option<(usize, Error)>>,
    /// Chunk attempts beyond the first (bounded-retry observability).
    retried_chunks: AtomicU64,
    /// Faults the scan absorbed (retried or surfaced).
    failures: AtomicU64,
}

impl ScanCtl {
    /// A control block, optionally tied to a query cancel token.
    pub fn new(cancel: Option<Arc<CancelToken>>) -> Self {
        ScanCtl {
            cancel,
            failed_chunk: AtomicUsize::new(NO_FAILURE),
            error: Mutex::new(None),
            retried_chunks: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// The query cancel token, if any.
    pub fn cancel_token(&self) -> Option<&Arc<CancelToken>> {
        self.cancel.as_ref()
    }

    /// Gate run before each chunk: `Err` when the query is cancelled or
    /// timed out, `Ok(false)` when a chunk at a lower index has already
    /// failed (this chunk's work would be discarded — skip it),
    /// `Ok(true)` to proceed.
    pub fn admit(&self, chunk: usize) -> Result<bool> {
        if let Some(cancel) = &self.cancel {
            cancel.check()?;
        }
        Ok(chunk <= self.failed_chunk.load(Ordering::Acquire))
    }

    /// Records a chunk failure, keeping only the lowest-index error.
    pub fn record_failure(&self, chunk: usize, err: Error) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        // The mutex serializes the compare-and-keep; the atomic mirrors
        // the winning index for the lock-free admit gate. Recovering
        // from poison is sound: the slot is a plain Option and the
        // atomic is updated after the write, so a panicking holder
        // leaves either the old or the new (index, error) pair — both
        // valid states.
        let mut slot = self.error.lock().unwrap_or_else(|e| e.into_inner());
        match &*slot {
            Some((existing, _)) if *existing <= chunk => {}
            _ => {
                *slot = Some((chunk, err));
                self.failed_chunk.store(chunk, Ordering::Release);
            }
        }
    }

    /// Counts one retry attempt.
    pub fn note_retry(&self) {
        self.retried_chunks.fetch_add(1, Ordering::Relaxed);
    }

    /// Chunk attempts beyond the first.
    pub fn retries(&self) -> u64 {
        self.retried_chunks.load(Ordering::Relaxed)
    }

    /// Faults absorbed by this scan (including ones a retry recovered).
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// The lowest failed chunk index, if any chunk failed.
    pub fn first_failed_chunk(&self) -> Option<usize> {
        match self.failed_chunk.load(Ordering::Acquire) {
            NO_FAILURE => None,
            chunk => Some(chunk),
        }
    }

    /// Takes the recorded first-by-chunk-index error, if any.
    pub fn take_error(&self) -> Option<Error> {
        let mut slot = self.error.lock().unwrap_or_else(|e| e.into_inner());
        slot.take().map(|(_, err)| err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Error as IoError, ErrorKind};

    #[test]
    fn cancel_token_reports_cancellation() {
        let token = CancelToken::new();
        assert!(token.check().is_ok());
        token.cancel();
        assert!(matches!(token.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn expired_deadline_reports_timeout() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(matches!(token.check(), Err(Error::Timeout)));
        // Explicit cancellation wins over the deadline.
        token.cancel();
        assert!(matches!(token.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn future_deadline_passes() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(token.check().is_ok());
        assert!(token.deadline().is_some());
    }

    #[test]
    fn child_token_honors_parent_and_own_deadline() {
        let parent = Arc::new(CancelToken::new());
        let child = CancelToken::child_with_timeout(Arc::clone(&parent), Duration::from_secs(3600));
        assert!(child.check().is_ok());
        parent.cancel();
        assert!(matches!(child.check(), Err(Error::Cancelled)));

        let parent = Arc::new(CancelToken::new());
        let expired = CancelToken::child_with_timeout(Arc::clone(&parent), Duration::ZERO);
        assert!(matches!(expired.check(), Err(Error::Timeout)));
        // The child's deadline never propagates upward.
        assert!(parent.check().is_ok());
    }

    #[test]
    fn lowest_chunk_error_wins_regardless_of_arrival_order() {
        let ctl = ScanCtl::new(None);
        ctl.record_failure(7, Error::exec("late chunk"));
        ctl.record_failure(2, Error::Io(IoError::new(ErrorKind::InvalidData, "early")));
        ctl.record_failure(5, Error::exec("middle chunk"));
        assert_eq!(ctl.first_failed_chunk(), Some(2));
        let err = ctl.take_error().expect("recorded error");
        assert!(err.to_string().contains("early"), "got {err}");
    }

    #[test]
    fn chunks_above_a_failure_are_skipped_but_lower_ones_admitted() {
        let ctl = ScanCtl::new(None);
        assert!(ctl.admit(9).expect("no cancel"));
        ctl.record_failure(4, Error::exec("boom"));
        assert!(!ctl.admit(9).expect("no cancel"), "above failure: skip");
        assert!(ctl.admit(4).expect("no cancel"), "the failed chunk itself");
        assert!(ctl.admit(1).expect("no cancel"), "below failure: admitted");
    }

    #[test]
    fn admit_surfaces_external_cancellation() {
        let token = Arc::new(CancelToken::new());
        let ctl = ScanCtl::new(Some(Arc::clone(&token)));
        assert!(ctl.admit(0).is_ok());
        token.cancel();
        assert!(matches!(ctl.admit(0), Err(Error::Cancelled)));
    }

    #[test]
    fn retry_and_failure_counters_accumulate() {
        let ctl = ScanCtl::new(None);
        ctl.note_retry();
        ctl.note_retry();
        ctl.record_failure(0, Error::exec("x"));
        assert_eq!(ctl.retries(), 2);
        assert_eq!(ctl.failures(), 1);
    }
}
