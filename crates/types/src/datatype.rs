//! Nested type tree: scalars, lists and structs, plus per-leaf Dremel
//! definition/repetition levels used by the nested columnar cache layout.

use crate::path::FieldPath;

/// Scalar leaf types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    Bool,
    Int,
    Float,
    Str,
}

impl ScalarType {
    /// Human-readable name, used in error messages and schema display.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarType::Bool => "bool",
            ScalarType::Int => "int",
            ScalarType::Float => "float",
            ScalarType::Str => "str",
        }
    }
}

/// A (possibly nested) data type.
#[derive(Debug, Clone, PartialEq)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    /// Homogeneous variable-length collection. Traversing a list layer
    /// increments both the repetition and definition level of leaves
    /// beneath it, as in Dremel.
    List(Box<DataType>),
    /// Named product type.
    Struct(Vec<Field>),
}

impl DataType {
    /// Returns the scalar type if this is a leaf type.
    pub fn as_scalar(&self) -> Option<ScalarType> {
        match self {
            DataType::Bool => Some(ScalarType::Bool),
            DataType::Int => Some(ScalarType::Int),
            DataType::Float => Some(ScalarType::Float),
            DataType::Str => Some(ScalarType::Str),
            _ => None,
        }
    }

    /// True for `Int` and `Float`: the types range predicates apply to.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// True if any list occurs anywhere in the type tree.
    pub fn contains_list(&self) -> bool {
        match self {
            DataType::List(_) => true,
            DataType::Struct(fields) => fields.iter().any(|f| f.data_type.contains_list()),
            _ => false,
        }
    }
}

/// A named, nullable field of a struct or schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Field {
    /// A nullable field (the common case for raw JSON, where any key may
    /// be absent).
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// A field that is guaranteed present (e.g. CSV columns).
    pub fn required(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }
}

/// A scalar leaf of a schema, in depth-first order, together with the
/// Dremel levels the nested columnar layout needs.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafField {
    /// Dotted path from the schema root (list layers are implicit).
    pub path: FieldPath,
    pub scalar_type: ScalarType,
    /// Maximum definition level: number of optional/repeated ancestors
    /// (including the leaf itself if nullable).
    pub max_def: u16,
    /// Maximum repetition level: number of list ancestors.
    pub max_rep: u16,
}

impl LeafField {
    /// A leaf under at least one list layer ("nested attribute" in the
    /// paper's terminology).
    pub fn is_nested(&self) -> bool {
        self.max_rep > 0
    }
}

/// A top-level record schema: an implicit struct.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index and field for a top-level name.
    pub fn field(&self, name: &str) -> Option<(usize, &Field)> {
        self.fields.iter().enumerate().find(|(_, f)| f.name == name)
    }

    /// Resolves a dotted path to the data type it denotes, descending
    /// through list layers implicitly.
    pub fn resolve(&self, path: &FieldPath) -> Option<DataType> {
        let mut current = DataType::Struct(self.fields.clone());
        for step in path.steps() {
            // Unwrap any number of list layers before looking up the field.
            let mut ty = current;
            while let DataType::List(inner) = ty {
                ty = *inner;
            }
            match ty {
                DataType::Struct(fields) => {
                    let f = fields.into_iter().find(|f| f.name == *step)?;
                    current = f.data_type;
                }
                _ => return None,
            }
        }
        Some(current)
    }

    /// All scalar leaves in depth-first order with Dremel levels.
    ///
    /// This ordering is the canonical column ordering used by every cache
    /// layout and by flattened rows.
    pub fn leaves(&self) -> Vec<LeafField> {
        let mut out = Vec::new();
        for field in &self.fields {
            collect_leaves(field, &mut Vec::new(), 0, 0, &mut out);
        }
        out
    }

    /// Index into [`Schema::leaves`] for a dotted path, if it names a leaf.
    pub fn leaf_index(&self, path: &FieldPath) -> Option<usize> {
        self.leaves().iter().position(|l| &l.path == path)
    }

    /// True if any field (at any depth) is a list: the heterogeneity signal
    /// the cache layout selector reacts to.
    pub fn has_nested(&self) -> bool {
        self.fields.iter().any(|f| f.data_type.contains_list())
    }
}

fn collect_leaves(
    field: &Field,
    prefix: &mut Vec<String>,
    def: u16,
    rep: u16,
    out: &mut Vec<LeafField>,
) {
    prefix.push(field.name.clone());
    let mut def = def + u16::from(field.nullable);
    let mut rep = rep;
    // Descend through list layers: each increments both levels.
    let mut ty = &field.data_type;
    while let DataType::List(inner) = ty {
        def += 1;
        rep += 1;
        ty = inner;
    }
    match ty {
        DataType::Struct(fields) => {
            for child in fields {
                collect_leaves(child, prefix, def, rep, out);
            }
        }
        scalar => {
            let scalar_type = scalar.as_scalar().expect("non-struct, non-list is scalar");
            out.push(LeafField {
                path: FieldPath::from_steps(prefix.clone()),
                scalar_type,
                max_def: def,
                max_rep: rep,
            });
        }
    }
    prefix.pop();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_lineitems_schema() -> Schema {
        Schema::new(vec![
            Field::required("o_orderkey", DataType::Int),
            Field::required("o_totalprice", DataType::Float),
            Field::new(
                "lineitems",
                DataType::List(Box::new(DataType::Struct(vec![
                    Field::required("l_quantity", DataType::Int),
                    Field::required("l_extendedprice", DataType::Float),
                ]))),
            ),
        ])
    }

    #[test]
    fn leaves_enumerate_depth_first_with_levels() {
        let schema = order_lineitems_schema();
        let leaves = schema.leaves();
        assert_eq!(leaves.len(), 4);
        assert_eq!(leaves[0].path.to_string(), "o_orderkey");
        assert_eq!(leaves[0].max_def, 0);
        assert_eq!(leaves[0].max_rep, 0);
        assert!(!leaves[0].is_nested());

        assert_eq!(leaves[2].path.to_string(), "lineitems.l_quantity");
        // lineitems is nullable (+1) and a list (+1); l_quantity required.
        assert_eq!(leaves[2].max_def, 2);
        assert_eq!(leaves[2].max_rep, 1);
        assert!(leaves[2].is_nested());
    }

    #[test]
    fn resolve_descends_through_lists() {
        let schema = order_lineitems_schema();
        let ty = schema
            .resolve(&FieldPath::parse("lineitems.l_extendedprice"))
            .unwrap();
        assert_eq!(ty, DataType::Float);
        assert!(schema
            .resolve(&FieldPath::parse("lineitems.nope"))
            .is_none());
        assert!(schema.resolve(&FieldPath::parse("nope")).is_none());
    }

    #[test]
    fn resolve_whole_list_field() {
        let schema = order_lineitems_schema();
        let ty = schema.resolve(&FieldPath::parse("lineitems")).unwrap();
        assert!(matches!(ty, DataType::List(_)));
    }

    #[test]
    fn leaf_index_matches_leaves_order() {
        let schema = order_lineitems_schema();
        assert_eq!(
            schema.leaf_index(&FieldPath::parse("o_totalprice")),
            Some(1)
        );
        assert_eq!(
            schema.leaf_index(&FieldPath::parse("lineitems.l_extendedprice")),
            Some(3)
        );
        assert_eq!(schema.leaf_index(&FieldPath::parse("lineitems")), None);
    }

    #[test]
    fn has_nested_detects_lists_at_depth() {
        assert!(order_lineitems_schema().has_nested());
        let flat = Schema::new(vec![Field::required("a", DataType::Int)]);
        assert!(!flat.has_nested());
        let deep = Schema::new(vec![Field::new(
            "outer",
            DataType::Struct(vec![Field::new(
                "inner",
                DataType::List(Box::new(DataType::Int)),
            )]),
        )]);
        assert!(deep.has_nested());
    }

    #[test]
    fn scalar_type_names() {
        assert_eq!(ScalarType::Int.name(), "int");
        assert_eq!(ScalarType::Float.name(), "float");
        assert_eq!(ScalarType::Bool.name(), "bool");
        assert_eq!(ScalarType::Str.name(), "str");
    }

    #[test]
    fn numeric_predicate_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn list_of_scalar_leaf_levels() {
        let schema = Schema::new(vec![Field::new(
            "tags",
            DataType::List(Box::new(DataType::Str)),
        )]);
        let leaves = schema.leaves();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].max_rep, 1);
        assert_eq!(leaves[0].max_def, 2); // nullable + list
        assert_eq!(leaves[0].scalar_type, ScalarType::Str);
    }

    #[test]
    fn nested_list_of_list_levels() {
        let schema = Schema::new(vec![Field::required(
            "matrix",
            DataType::List(Box::new(DataType::List(Box::new(DataType::Int)))),
        )]);
        let leaves = schema.leaves();
        assert_eq!(leaves[0].max_rep, 2);
        assert_eq!(leaves[0].max_def, 2); // two list layers, field required
    }
}
