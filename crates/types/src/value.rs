//! Dynamically typed values with SQL-style comparison semantics.

use crate::datatype::ScalarType;
use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed value. Struct values store children in schema field
/// order (names live in the schema, not the value).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Value>),
    Struct(Vec<Value>),
}

/// A flat row of scalar values, ordered by [`crate::Schema::leaves`].
pub type Row = Vec<Value>;

impl Value {
    /// The scalar type of this value, if it is a scalar.
    pub fn scalar_type(&self) -> Option<ScalarType> {
        match self {
            Value::Bool(_) => Some(ScalarType::Bool),
            Value::Int(_) => Some(ScalarType::Int),
            Value::Float(_) => Some(ScalarType::Float),
            Value::Str(_) => Some(ScalarType::Str),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view; `Float` truncates.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Numeric view used by range predicates and aggregates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total order used by the engine: `Null` sorts first; numerics compare
    /// across `Int`/`Float`; mismatched types compare by type rank so sorts
    /// never panic.
    pub fn cmp_sql(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// SQL equality: `Null` is not equal to anything, numerics compare
    /// across `Int`/`Float`.
    pub fn eq_sql(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.cmp_sql(other) == Ordering::Equal
    }

    /// The default value used when a nullable field is absent.
    pub fn null() -> Value {
        Value::Null
    }

    /// Approximate in-memory footprint in bytes, used by cache size
    /// accounting for row-form data.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 16 + s.len(),
            Value::List(items) => 24 + items.iter().map(Value::byte_size).sum::<usize>(),
            Value::Struct(items) => 24 + items.iter().map(Value::byte_size).sum::<usize>(),
        }
    }

    /// Coerces a scalar to the given type where a lossless or standard
    /// conversion exists; otherwise returns `Null`.
    pub fn coerce(&self, target: ScalarType) -> Value {
        match (self, target) {
            (Value::Null, _) => Value::Null,
            (Value::Int(v), ScalarType::Int) => Value::Int(*v),
            (Value::Int(v), ScalarType::Float) => Value::Float(*v as f64),
            (Value::Float(v), ScalarType::Float) => Value::Float(*v),
            (Value::Float(v), ScalarType::Int) => Value::Int(*v as i64),
            (Value::Bool(b), ScalarType::Bool) => Value::Bool(*b),
            (Value::Str(s), ScalarType::Str) => Value::Str(s.clone()),
            (Value::Int(v), ScalarType::Str) => Value::Str(v.to_string()),
            (Value::Float(v), ScalarType::Str) => Value::Str(v.to_string()),
            _ => Value::Null,
        }
    }

    /// The type rank [`Value::cmp_sql`] falls back to for mismatched
    /// types (numerics share a rank and inter-compare). Exposed so
    /// vectorized comparison kernels reuse the exact same ordering.
    pub fn sql_type_rank(&self) -> u8 {
        type_rank(self)
    }

    /// Default (zero) value for a scalar type, used by typed column
    /// builders for null slots.
    pub fn zero(ty: ScalarType) -> Value {
        match ty {
            ScalarType::Bool => Value::Bool(false),
            ScalarType::Int => Value::Int(0),
            ScalarType::Float => Value::Float(0.0),
            ScalarType::Str => Value::Str(String::new()),
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2, // same rank as Int: numerics inter-compare
        Value::Str(_) => 3,
        Value::List(_) => 4,
        Value::Struct(_) => 5,
    }
}

impl fmt::Display for Value {
    /// JSON-compatible rendering (structs render as arrays because field
    /// names live in the schema).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "\"{}\"", s.escape_default()),
            Value::List(items) | Value::Struct(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(3).cmp_sql(&Value::Float(3.0)), Ordering::Equal);
        assert_eq!(Value::Int(3).cmp_sql(&Value::Float(3.5)), Ordering::Less);
        assert_eq!(Value::Float(4.0).cmp_sql(&Value::Int(3)), Ordering::Greater);
        assert!(Value::Int(3).eq_sql(&Value::Float(3.0)));
    }

    #[test]
    fn null_ordering_and_equality() {
        assert_eq!(Value::Null.cmp_sql(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(0).cmp_sql(&Value::Null), Ordering::Greater);
        assert!(!Value::Null.eq_sql(&Value::Null));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn string_comparison() {
        assert_eq!(
            Value::from("abc").cmp_sql(&Value::from("abd")),
            Ordering::Less
        );
        assert!(Value::from("x").eq_sql(&Value::from("x")));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(7.9).as_i64(), Some(7));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn byte_sizes_are_monotone_in_content() {
        assert!(Value::from("hello").byte_size() > Value::from("").byte_size());
        let list = Value::List(vec![Value::Int(1), Value::Int(2)]);
        assert!(list.byte_size() > Value::Int(1).byte_size());
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).coerce(ScalarType::Float), Value::Float(3.0));
        assert_eq!(Value::Float(3.7).coerce(ScalarType::Int), Value::Int(3));
        assert_eq!(Value::Int(3).coerce(ScalarType::Str), Value::from("3"));
        assert_eq!(Value::from("x").coerce(ScalarType::Int), Value::Null);
        assert_eq!(Value::Null.coerce(ScalarType::Int), Value::Null);
    }

    #[test]
    fn display_is_json_compatible_for_scalars() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::from("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1,2]"
        );
    }

    #[test]
    fn zero_values_match_types() {
        assert_eq!(Value::zero(ScalarType::Int), Value::Int(0));
        assert_eq!(Value::zero(ScalarType::Float), Value::Float(0.0));
        assert_eq!(Value::zero(ScalarType::Bool), Value::Bool(false));
        assert_eq!(Value::zero(ScalarType::Str), Value::Str(String::new()));
    }

    #[test]
    fn mismatched_types_compare_by_rank_without_panic() {
        assert_eq!(Value::Bool(true).cmp_sql(&Value::from("s")), Ordering::Less);
        assert_eq!(Value::from("s").cmp_sql(&Value::Int(1)), Ordering::Greater);
    }
}
