//! Error type shared across the ReCache workspace.

use std::fmt;

/// Unified error for parsing, planning and execution failures.
#[derive(Debug)]
pub enum Error {
    /// Malformed raw data (CSV/JSON) or SQL text. `at` is a byte offset
    /// into the input when known.
    Parse { msg: String, at: Option<usize> },
    /// Schema resolution failure: unknown field, type mismatch, etc.
    Schema(String),
    /// Logical planning failure (unresolvable query shape).
    Plan(String),
    /// Runtime execution failure.
    Exec(String),
    /// Underlying I/O error.
    Io(std::io::Error),
    /// The query's deadline elapsed before execution finished.
    Timeout,
    /// The query was cancelled cooperatively via its cancel token.
    Cancelled,
}

impl Error {
    /// Convenience constructor for parse errors without a position.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse {
            msg: msg.into(),
            at: None,
        }
    }

    /// Convenience constructor for parse errors at a byte offset.
    pub fn parse_at(msg: impl Into<String>, at: usize) -> Self {
        Error::Parse {
            msg: msg.into(),
            at: Some(at),
        }
    }

    /// Convenience constructor for schema errors.
    pub fn schema(msg: impl Into<String>) -> Self {
        Error::Schema(msg.into())
    }

    /// Convenience constructor for planning errors.
    pub fn plan(msg: impl Into<String>) -> Self {
        Error::Plan(msg.into())
    }

    /// Convenience constructor for execution errors.
    pub fn exec(msg: impl Into<String>) -> Self {
        Error::Exec(msg.into())
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Only I/O errors are retryable, and only the kinds the operating
    /// system reports for conditions that clear on their own:
    /// interrupted calls, backpressure, timeouts, and short reads (a
    /// read that returned fewer bytes than expected may complete on a
    /// second attempt). Parse/schema/plan errors are deterministic and
    /// `Timeout`/`Cancelled` are final by definition.
    pub fn is_transient(&self) -> bool {
        use std::io::ErrorKind;
        match self {
            Error::Io(e) => matches!(
                e.kind(),
                ErrorKind::Interrupted
                    | ErrorKind::WouldBlock
                    | ErrorKind::TimedOut
                    | ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, at: Some(at) } => write!(f, "parse error at byte {at}: {msg}"),
            Error::Parse { msg, at: None } => write!(f, "parse error: {msg}"),
            Error::Schema(msg) => write!(f, "schema error: {msg}"),
            Error::Plan(msg) => write!(f, "plan error: {msg}"),
            Error::Exec(msg) => write!(f, "execution error: {msg}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Timeout => write!(f, "query deadline exceeded"),
            Error::Cancelled => write!(f, "query cancelled"),
        }
    }
}

/// `std::io::Error` is not `Clone`, so cloning re-wraps its kind and
/// rendered message (the source chain is not preserved — callers that
/// need the original should move it, not clone).
impl Clone for Error {
    fn clone(&self) -> Self {
        match self {
            Error::Parse { msg, at } => Error::Parse {
                msg: msg.clone(),
                at: *at,
            },
            Error::Schema(msg) => Error::Schema(msg.clone()),
            Error::Plan(msg) => Error::Plan(msg.clone()),
            Error::Exec(msg) => Error::Exec(msg.clone()),
            Error::Io(e) => Error::Io(std::io::Error::new(e.kind(), e.to_string())),
            Error::Timeout => Error::Timeout,
            Error::Cancelled => Error::Cancelled,
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            Error::parse("bad token").to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            Error::parse_at("bad token", 42).to_string(),
            "parse error at byte 42: bad token"
        );
        assert_eq!(
            Error::schema("no field x").to_string(),
            "schema error: no field x"
        );
        assert_eq!(Error::plan("no table").to_string(), "plan error: no table");
        assert_eq!(Error::exec("boom").to_string(), "execution error: boom");
        assert_eq!(Error::Timeout.to_string(), "query deadline exceeded");
        assert_eq!(Error::Cancelled.to_string(), "query cancelled");
    }

    #[test]
    fn transience_follows_io_kind() {
        use std::io::{Error as IoError, ErrorKind};
        assert!(Error::Io(IoError::new(ErrorKind::Interrupted, "eintr")).is_transient());
        assert!(Error::Io(IoError::new(ErrorKind::TimedOut, "slow disk")).is_transient());
        assert!(Error::Io(IoError::new(ErrorKind::WouldBlock, "busy")).is_transient());
        assert!(Error::Io(IoError::new(ErrorKind::UnexpectedEof, "short read")).is_transient());
        assert!(!Error::Io(IoError::new(ErrorKind::InvalidData, "torn page")).is_transient());
        assert!(!Error::parse("bad token").is_transient());
        assert!(!Error::Timeout.is_transient());
        assert!(!Error::Cancelled.is_transient());
    }

    #[test]
    fn io_error_round_trips_through_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: Error = io.into();
        assert!(err.to_string().contains("gone"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
