//! Error type shared across the ReCache workspace.

use std::fmt;

/// Unified error for parsing, planning and execution failures.
#[derive(Debug)]
pub enum Error {
    /// Malformed raw data (CSV/JSON) or SQL text. `at` is a byte offset
    /// into the input when known.
    Parse { msg: String, at: Option<usize> },
    /// Schema resolution failure: unknown field, type mismatch, etc.
    Schema(String),
    /// Logical planning failure (unresolvable query shape).
    Plan(String),
    /// Runtime execution failure.
    Exec(String),
    /// Underlying I/O error.
    Io(std::io::Error),
    /// The query's deadline elapsed before execution finished.
    Timeout,
    /// The query was cancelled cooperatively via its cancel token.
    Cancelled,
    /// The serving layer's bounded admission queue was full and the
    /// request was shed instead of buffered. Retryable by definition:
    /// overload clears as in-flight queries drain.
    Overloaded,
    /// The transport under a request died: the peer reset the
    /// connection, closed it mid-frame, or vanished before the response
    /// arrived. Transient by definition — queries are read-only, so a
    /// client may safely reconnect and resend.
    ConnectionLost(String),
    /// The server failed internally while executing an otherwise valid
    /// request (e.g. a panicking query caught at the connection
    /// boundary). Not transient: the same request panics the same way.
    Internal(String),
}

impl Error {
    /// Convenience constructor for parse errors without a position.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse {
            msg: msg.into(),
            at: None,
        }
    }

    /// Convenience constructor for parse errors at a byte offset.
    pub fn parse_at(msg: impl Into<String>, at: usize) -> Self {
        Error::Parse {
            msg: msg.into(),
            at: Some(at),
        }
    }

    /// Convenience constructor for schema errors.
    pub fn schema(msg: impl Into<String>) -> Self {
        Error::Schema(msg.into())
    }

    /// Convenience constructor for planning errors.
    pub fn plan(msg: impl Into<String>) -> Self {
        Error::Plan(msg.into())
    }

    /// Convenience constructor for execution errors.
    pub fn exec(msg: impl Into<String>) -> Self {
        Error::Exec(msg.into())
    }

    /// Convenience constructor for connection-loss errors.
    pub fn connection_lost(msg: impl Into<String>) -> Self {
        Error::ConnectionLost(msg.into())
    }

    /// Convenience constructor for internal server errors.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// I/O errors are retryable only for the kinds the operating
    /// system reports for conditions that clear on their own:
    /// interrupted calls, backpressure, timeouts, and short reads (a
    /// read that returned fewer bytes than expected may complete on a
    /// second attempt). `Overloaded` is transient by definition — the
    /// admission queue drains as in-flight queries finish.
    /// `ConnectionLost` is transient because queries are read-only: a
    /// client may reconnect and resend without risking double effects.
    /// Parse/schema/plan errors are deterministic,
    /// `Timeout`/`Cancelled` are final by definition, and `Internal`
    /// (a server-side panic) reproduces on retry.
    pub fn is_transient(&self) -> bool {
        use std::io::ErrorKind;
        match self {
            Error::Io(e) => matches!(
                e.kind(),
                ErrorKind::Interrupted
                    | ErrorKind::WouldBlock
                    | ErrorKind::TimedOut
                    | ErrorKind::UnexpectedEof
            ),
            Error::Overloaded | Error::ConnectionLost(_) => true,
            _ => false,
        }
    }

    /// Stable numeric code for this error's variant, for wire protocols
    /// and logs. Codes are append-only: a variant's code never changes
    /// and removed codes are never reused.
    pub fn code(&self) -> u16 {
        match self {
            Error::Parse { .. } => 1,
            Error::Schema(_) => 2,
            Error::Plan(_) => 3,
            Error::Exec(_) => 4,
            Error::Io(_) => 5,
            Error::Timeout => 6,
            Error::Cancelled => 7,
            Error::Overloaded => 8,
            Error::ConnectionLost(_) => 9,
            Error::Internal(_) => 10,
        }
    }

    /// Reconstructs a typed error from its wire form: the stable
    /// [`code`](Self::code), the sender's [`is_transient`](Self::is_transient)
    /// flag, and the rendered message. The byte offset of `Parse` and
    /// the source chain of `Io` are not preserved — only the variant,
    /// the transience class, and the text. An unknown code (from a
    /// newer peer) degrades to `Exec` so clients keep a typed error.
    pub fn from_wire(code: u16, transient: bool, msg: &str) -> Self {
        use std::io::ErrorKind;
        match code {
            1 => Error::parse(msg),
            2 => Error::schema(msg),
            3 => Error::plan(msg),
            4 => Error::exec(msg),
            // The local kind is chosen purely to round-trip the
            // transience class through `is_transient`.
            5 => Error::Io(std::io::Error::new(
                if transient {
                    ErrorKind::Interrupted
                } else {
                    ErrorKind::InvalidData
                },
                msg.to_owned(),
            )),
            6 => Error::Timeout,
            7 => Error::Cancelled,
            8 => Error::Overloaded,
            9 => Error::connection_lost(msg),
            10 => Error::internal(msg),
            other => Error::exec(format!("remote error (unknown code {other}): {msg}")),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, at: Some(at) } => write!(f, "parse error at byte {at}: {msg}"),
            Error::Parse { msg, at: None } => write!(f, "parse error: {msg}"),
            Error::Schema(msg) => write!(f, "schema error: {msg}"),
            Error::Plan(msg) => write!(f, "plan error: {msg}"),
            Error::Exec(msg) => write!(f, "execution error: {msg}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Timeout => write!(f, "query deadline exceeded"),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Overloaded => write!(f, "server overloaded: admission queue full"),
            Error::ConnectionLost(msg) => write!(f, "connection lost: {msg}"),
            Error::Internal(msg) => write!(f, "internal server error: {msg}"),
        }
    }
}

/// `std::io::Error` is not `Clone`, so cloning re-wraps its kind and
/// rendered message (the source chain is not preserved — callers that
/// need the original should move it, not clone).
impl Clone for Error {
    fn clone(&self) -> Self {
        match self {
            Error::Parse { msg, at } => Error::Parse {
                msg: msg.clone(),
                at: *at,
            },
            Error::Schema(msg) => Error::Schema(msg.clone()),
            Error::Plan(msg) => Error::Plan(msg.clone()),
            Error::Exec(msg) => Error::Exec(msg.clone()),
            Error::Io(e) => Error::Io(std::io::Error::new(e.kind(), e.to_string())),
            Error::Timeout => Error::Timeout,
            Error::Cancelled => Error::Cancelled,
            Error::Overloaded => Error::Overloaded,
            Error::ConnectionLost(msg) => Error::ConnectionLost(msg.clone()),
            Error::Internal(msg) => Error::Internal(msg.clone()),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            Error::parse("bad token").to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            Error::parse_at("bad token", 42).to_string(),
            "parse error at byte 42: bad token"
        );
        assert_eq!(
            Error::schema("no field x").to_string(),
            "schema error: no field x"
        );
        assert_eq!(Error::plan("no table").to_string(), "plan error: no table");
        assert_eq!(Error::exec("boom").to_string(), "execution error: boom");
        assert_eq!(Error::Timeout.to_string(), "query deadline exceeded");
        assert_eq!(Error::Cancelled.to_string(), "query cancelled");
        assert_eq!(
            Error::connection_lost("peer reset").to_string(),
            "connection lost: peer reset"
        );
        assert_eq!(
            Error::internal("query panicked").to_string(),
            "internal server error: query panicked"
        );
    }

    #[test]
    fn transience_follows_io_kind() {
        use std::io::{Error as IoError, ErrorKind};
        assert!(Error::Io(IoError::new(ErrorKind::Interrupted, "eintr")).is_transient());
        assert!(Error::Io(IoError::new(ErrorKind::TimedOut, "slow disk")).is_transient());
        assert!(Error::Io(IoError::new(ErrorKind::WouldBlock, "busy")).is_transient());
        assert!(Error::Io(IoError::new(ErrorKind::UnexpectedEof, "short read")).is_transient());
        assert!(!Error::Io(IoError::new(ErrorKind::InvalidData, "torn page")).is_transient());
        assert!(!Error::parse("bad token").is_transient());
        assert!(!Error::Timeout.is_transient());
        assert!(!Error::Cancelled.is_transient());
        assert!(Error::connection_lost("reset").is_transient());
        assert!(!Error::internal("panicked").is_transient());
    }

    #[test]
    fn codes_are_stable_and_cover_every_variant() {
        let variants = [
            (Error::parse("x"), 1),
            (Error::schema("x"), 2),
            (Error::plan("x"), 3),
            (Error::exec("x"), 4),
            (
                Error::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "x")),
                5,
            ),
            (Error::Timeout, 6),
            (Error::Cancelled, 7),
            (Error::Overloaded, 8),
            (Error::connection_lost("x"), 9),
            (Error::internal("x"), 10),
        ];
        for (err, code) in variants {
            assert_eq!(err.code(), code, "{err}");
        }
    }

    #[test]
    fn wire_round_trip_preserves_variant_and_transience() {
        use std::io::{Error as IoError, ErrorKind};
        let cases = [
            Error::parse("bad token"),
            Error::schema("no field"),
            Error::plan("no table"),
            Error::exec("boom"),
            Error::Io(IoError::new(ErrorKind::Interrupted, "eintr")),
            Error::Io(IoError::new(ErrorKind::InvalidData, "torn page")),
            Error::Timeout,
            Error::Cancelled,
            Error::Overloaded,
            Error::connection_lost("mid-request reset"),
            Error::internal("query panicked"),
        ];
        for err in cases {
            let back = Error::from_wire(err.code(), err.is_transient(), &err.to_string());
            assert_eq!(back.code(), err.code(), "{err}");
            assert_eq!(back.is_transient(), err.is_transient(), "{err}");
        }
        assert!(Error::Overloaded.is_transient());
        // Unknown codes from a newer peer degrade to a typed Exec error.
        let unknown = Error::from_wire(999, false, "future variant");
        assert_eq!(unknown.code(), 4);
        assert!(unknown.to_string().contains("999"));
    }

    #[test]
    fn io_error_round_trips_through_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: Error = io.into();
        assert!(err.to_string().contains("gone"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
